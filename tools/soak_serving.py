#!/usr/bin/env python
"""Serving soak: sustained socket load with cancellations and a worker kill.

Run by the nightly workflow (10 minutes) and locally for quick checks::

    python tools/soak_serving.py --seconds 30 --clients 4 --workers 2

The harness starts a :class:`~repro.server.NetServer` over a sharded
TPC-H database, then hammers it from N wire-protocol client threads with a
fixed set of verification queries whose serial answers were computed up
front.  Throughout the run it injects the failures the serving tier must
absorb:

* random mid-flight cancellations (``cancel`` frames racing completion);
* one deliberate SIGKILL of a shard worker process while a scatter query
  is in flight — which must surface as a typed ``shard`` error frame,
  never a hang, and must not poison subsequent queries.

The soak fails (non-zero exit) on any wrong result, any error that is not
one of the expected typed codes, a missing typed error after the worker
kill, or a hang (a watchdog hard-exits if no client makes progress for 90
seconds; every socket read is timeout-bounded).
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends.rows import normalize_rows, rows_equal  # noqa: E402
from repro.errors import (  # noqa: E402
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ShardError,
    WireProtocolError,
)
from repro.server import NetClient, NetServer, make_sharded_tpch_db  # noqa: E402
from repro.sqlengine import EngineConfig  # noqa: E402

# Fixed-parameter statements with precomputed serial answers.  The first
# two scatter (aggregate + Top-K over the sharded lineitem); the rest keep
# the serial path and the plan cache busy.
VERIFY_QUERIES = [
    ("lineitem_agg",
     "SELECT l_returnflag, COUNT(*) AS cnt, SUM(l_extendedprice) AS rev "
     "FROM lineitem WHERE l_quantity < 30 "
     "GROUP BY l_returnflag ORDER BY l_returnflag"),
    ("lineitem_topk",
     "SELECT l_orderkey, l_extendedprice FROM lineitem "
     "ORDER BY l_extendedprice DESC, l_orderkey LIMIT 25"),
    ("order_lookup",
     "SELECT o_orderkey, o_totalprice, o_orderstatus FROM orders "
     "WHERE o_orderkey = 7"),
    ("customer_join",
     "SELECT c.c_name, o.o_totalprice FROM customer c, orders o "
     "WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100000.0 "
     "ORDER BY o.o_totalprice DESC LIMIT 10"),
]
EXPECTED_ERROR_TYPES = (AdmissionError, QueryCancelledError,
                        QueryTimeoutError, ShardError)


class SoakState:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.progress = 0          # bumped on every completed op (watchdog)
        self.queries = 0
        self.cancels = 0
        self.typed_errors = 0
        self.failures: list[str] = []
        self.post_kill_ok = False
        self.kill_done = threading.Event()

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)

    def bump(self, **counts: int) -> None:
        with self.lock:
            self.progress += 1
            for key, value in counts.items():
                setattr(self, key, getattr(self, key) + value)


def client_loop(idx: int, host: str, port: int, expected: dict,
                stop_at: float, state: SoakState, seed: int) -> None:
    rng = random.Random(seed * 7919 + idx)
    try:
        with NetClient(host, port, timeout=60.0) as nc:
            while time.monotonic() < stop_at and not state.failures:
                name, sql = VERIFY_QUERIES[rng.randrange(len(VERIFY_QUERIES))]
                try:
                    if rng.random() < 0.1:
                        # Cancellation race: cancel may land before, during,
                        # or after completion — all are legal outcomes, but
                        # a completed query must still verify.
                        rid = nc.submit(sql, timeout=20.0)
                        time.sleep(rng.random() * 0.005)
                        nc.cancel(rid)
                        result = nc.collect(rid)
                        state.bump(queries=1, cancels=1)
                    else:
                        result = nc.execute(sql, timeout=20.0)
                        state.bump(queries=1)
                    if not rows_equal(normalize_rows(result.rows),
                                      expected[name]):
                        state.fail(
                            f"client {idx}: WRONG RESULT for {name}: "
                            f"{result.rows[:3]!r}..."
                        )
                except EXPECTED_ERROR_TYPES as exc:
                    state.bump(typed_errors=1)
                    if isinstance(exc, AdmissionError):
                        time.sleep(0.002)
                    if (isinstance(exc, ShardError)
                            and state.kill_done.is_set()):
                        pass  # expected fallout of the deliberate kill
                except ReproError as exc:
                    state.fail(
                        f"client {idx}: unexpected {type(exc).__name__}: {exc}"
                    )
                if state.kill_done.is_set() and not state.post_kill_ok:
                    with state.lock:
                        state.post_kill_ok = True
    except WireProtocolError as exc:
        state.fail(f"client {idx}: connection-level failure: {exc}")


def kill_worker(db, host: str, port: int, state: SoakState) -> None:
    """Kill one shard worker while scatter queries are mid-flight.

    Some in-flight query — the probe issued here, or any concurrent
    client's (they share the pool, so whoever's future breaks first wins
    the race) — must surface the death as a typed ``shard`` error; the
    invariant checked is the ``shard_errors`` counter, not which victim
    got the frame.  A silent success across the board means the error was
    swallowed.
    """
    errors_before = db.shard_stats["shard_errors"]
    try:
        pids = db.pool(db.config.shard_workers).worker_pids()
        db._test_worker_delay = 1.5
        killer = threading.Timer(0.4, os.kill, (pids[0], signal.SIGKILL))
        killer.start()
        with NetClient(host, port, timeout=60.0) as nc:
            try:
                nc.execute(VERIFY_QUERIES[0][1], timeout=30.0)
            except ShardError:
                state.bump(typed_errors=1)
            except ReproError as exc:
                state.fail(f"worker kill: wrong error type "
                           f"{type(exc).__name__}: {exc}")
        killer.join()
        if db.shard_stats["shard_errors"] <= errors_before:
            state.fail("worker kill: no typed shard error surfaced on any "
                       "in-flight query (the death was swallowed)")
    finally:
        db._test_worker_delay = 0.0
        state.kill_done.set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=600.0)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--sf", type=float, default=0.002)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    # Hard wall-clock backstop: whatever goes wrong, the process dies.
    def too_long(signum, frame):
        print("SOAK FAIL: wall-clock backstop fired — harness hung",
              flush=True)
        os._exit(2)

    signal.signal(signal.SIGALRM, too_long)
    signal.alarm(int(args.seconds) + 300)

    config = EngineConfig(shard_workers=args.workers)
    db = make_sharded_tpch_db(scale_factor=args.sf, config=config,
                              workers=args.workers)
    serial_cfg = EngineConfig(threads=1)
    expected = {}
    for name, sql in VERIFY_QUERIES:
        chunk = db.execute_chunk(sql, serial_cfg)
        from repro.backends.rows import chunk_rows

        expected[name] = normalize_rows(chunk_rows(chunk))

    server = NetServer(db, max_concurrent=max(2, args.clients // 2),
                       queue_limit=256, default_timeout=30.0)
    server.run_in_thread()
    state = SoakState()
    stop_at = time.monotonic() + args.seconds
    threads = [
        threading.Thread(target=client_loop,
                         args=(i, server.host, server.port, expected,
                               stop_at, state, args.seed),
                         daemon=True)
        for i in range(args.clients)
    ]
    for t in threads:
        t.start()

    # The deliberate worker kill lands a third of the way in.
    kill_at = time.monotonic() + max(2.0, args.seconds / 3.0)
    killer = threading.Thread(
        target=lambda: (time.sleep(max(0.0, kill_at - time.monotonic())),
                        kill_worker(db, server.host, server.port, state)),
        daemon=True)
    killer.start()

    # Watchdog: no progress for 90s means a hang — diagnose and hard-exit.
    last_progress, last_change = -1, time.monotonic()
    next_report = time.monotonic() + 30.0
    while any(t.is_alive() for t in threads):
        time.sleep(1.0)
        now = time.monotonic()
        with state.lock:
            progress = state.progress
        if progress != last_progress:
            last_progress, last_change = progress, now
        elif now - last_change > 90.0:
            print(f"SOAK FAIL: no client progress for 90s "
                  f"(queries={state.queries})", flush=True)
            os._exit(2)
        if now >= next_report:
            next_report = now + 30.0
            remaining = max(0.0, stop_at - now)
            print(f"soak: {state.queries} queries, {state.cancels} cancels, "
                  f"{state.typed_errors} typed errors, "
                  f"{len(state.failures)} failures, {remaining:.0f}s left",
                  flush=True)
    killer.join(timeout=60.0)
    server.close()
    db.close_pools()

    shard = db.shard_stats
    print(f"\nsoak finished: {state.queries} queries, {state.cancels} "
          f"cancels, {state.typed_errors} typed errors")
    print(f"shard stats: {shard}")
    if not state.kill_done.is_set():
        state.fail("the deliberate worker kill never ran")
    if not state.post_kill_ok:
        state.fail("no successful query observed after the worker kill")
    if shard["scattered"] == 0:
        state.fail("no query ever scattered — the soak exercised nothing")
    if state.failures:
        for message in state.failures:
            print("FAIL:", message)
        return 1
    print("SOAK PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
