#!/usr/bin/env python
"""Long-running SQL fuzz CLI: grammar-driven queries differentially tested
against oracle backends (see ``repro.bench.sqlfuzz`` for the grammar and
shrinker, ``repro.backends`` for the registry).

Usage (from the repo root, PYTHONPATH=src):

    python tools/fuzz.py                      # 500 seeds, threads 1 and 4
    python tools/fuzz.py --count 20000        # longer local sweep
    python tools/fuzz.py --backend sqlite,duckdb_real  # oracle matrix
    python tools/fuzz.py --seed 3000 --count 500 --threads 1,4 \
        --artifact fuzz-repro.txt             # CI mode: repro file on fail

Exit status is the number of diverging seeds (0 = clean).  Each divergence
prints the generated SQL, the mismatch detail, and the shrunk minimal
repro; ``--artifact`` additionally writes the reports to a file (uploaded
by the CI fuzz job on failure).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import available_backends, get_backend  # noqa: E402
from repro.bench.sqlfuzz import (  # noqa: E402
    build_fuzz_db, run_seeds, run_seeds_adaptive, run_seeds_spill,
    run_seeds_verify,
)
from repro.errors import BackendError  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=500,
                        help="number of seeds to test (default 500)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--threads", default="1,4",
                        help="comma-separated thread counts (default 1,4)")
    parser.add_argument("--backend", default="sqlite",
                        help="comma-separated oracle backends to test "
                             "against (default sqlite)")
    parser.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="spill mode: compare spilled execution under "
                             "this memory budget against the in-memory "
                             "engine instead of an oracle backend")
    parser.add_argument("--adaptive", action="store_true",
                        help="adaptive mode: compare adaptive execution "
                             "(estimate-feedback re-planning at an "
                             "aggressive ratio) against the static engine "
                             "instead of an oracle backend")
    parser.add_argument("--adaptive-ratio", type=float, default=2.0,
                        metavar="R",
                        help="est-vs-actual divergence ratio for --adaptive "
                             "(default 2.0; lower fires more re-plans)")
    parser.add_argument("--verify-plans", action="store_true",
                        help="additionally run every seed's query through "
                             "the static plan verifier (explain path); a "
                             "PlanInvariantError on a plannable query is "
                             "reported as a divergence")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failures without shrinking")
    parser.add_argument("--artifact", default=None,
                        help="write divergence reports to this file")
    parser.add_argument("--progress-every", type=int, default=2000,
                        help="print progress every N seeds (0 = quiet)")
    args = parser.parse_args(argv)
    threads = tuple(int(t) for t in args.threads.split(","))

    verify_failures: list = []
    if args.verify_plans:
        db = build_fuzz_db()
        started = time.perf_counter()
        step = max(args.progress_every, 1) if args.progress_every else args.count
        for lo in range(args.seed, args.seed + args.count, step):
            hi = min(lo + step, args.seed + args.count)
            verify_failures.extend(run_seeds_verify(
                db, range(lo, hi), threads=threads,
                shrink_failures=not args.no_shrink))
            if args.progress_every:
                print(f"[fuzz:verify-plans] {hi - args.seed}/{args.count} "
                      f"seeds, {len(verify_failures)} violation(s), "
                      f"{time.perf_counter() - started:.1f}s", flush=True)
        if verify_failures:
            reports = "\n\n".join(f.report() for f in verify_failures)
            print(f"\n{len(verify_failures)} plan-verifier violation(s):"
                  f"\n\n{reports}")
            if args.artifact:
                Path(args.artifact).write_text(
                    f"plan-verifier fuzz seeds {args.seed}.."
                    f"{args.seed + args.count - 1} threads={threads}\n\n"
                    f"{reports}\n"
                )
                print(f"\nrepro report written to {args.artifact}")
        else:
            print(f"[fuzz] verify-plans clean: {args.count} seeds x "
                  f"threads {threads} in "
                  f"{time.perf_counter() - started:.1f}s")

    if args.adaptive:
        # Adaptive mode: the "oracle" is our own engine with static plans.
        db = build_fuzz_db()
        started = time.perf_counter()
        failures = []
        step = max(args.progress_every, 1) if args.progress_every else args.count
        for lo in range(args.seed, args.seed + args.count, step):
            hi = min(lo + step, args.seed + args.count)
            failures.extend(run_seeds_adaptive(
                db, range(lo, hi), threads=threads,
                ratio=args.adaptive_ratio,
                shrink_failures=not args.no_shrink))
            if args.progress_every:
                print(f"[fuzz:adaptive@{args.adaptive_ratio}] "
                      f"{hi - args.seed}/{args.count} seeds, "
                      f"{len(failures)} divergence(s), "
                      f"{time.perf_counter() - started:.1f}s", flush=True)
        if failures:
            reports = "\n\n".join(f.report() for f in failures)
            print(f"\n{len(failures)} divergence(s):\n\n{reports}")
            if args.artifact:
                Path(args.artifact).write_text(
                    f"adaptive fuzz seeds {args.seed}.."
                    f"{args.seed + args.count - 1} threads={threads} "
                    f"ratio={args.adaptive_ratio}\n\n{reports}\n"
                )
                print(f"\nrepro report written to {args.artifact}")
        else:
            print(f"[fuzz] clean: {args.count} seeds x threads {threads} "
                  f"adaptive-vs-static at ratio={args.adaptive_ratio} in "
                  f"{time.perf_counter() - started:.1f}s")
        return min(len(failures) + len(verify_failures), 125)

    if args.memory_budget is not None:
        # Spill mode: the "oracle" is our own engine without a budget.
        db = build_fuzz_db()
        started = time.perf_counter()
        failures = []
        step = max(args.progress_every, 1) if args.progress_every else args.count
        for lo in range(args.seed, args.seed + args.count, step):
            hi = min(lo + step, args.seed + args.count)
            failures.extend(run_seeds_spill(
                db, range(lo, hi), budget=args.memory_budget,
                threads=threads, shrink_failures=not args.no_shrink))
            if args.progress_every:
                print(f"[fuzz:spill@{args.memory_budget}] "
                      f"{hi - args.seed}/{args.count} seeds, "
                      f"{len(failures)} divergence(s), "
                      f"{time.perf_counter() - started:.1f}s", flush=True)
        if failures:
            reports = "\n\n".join(f.report() for f in failures)
            print(f"\n{len(failures)} divergence(s):\n\n{reports}")
            if args.artifact:
                Path(args.artifact).write_text(
                    f"spill fuzz seeds {args.seed}.."
                    f"{args.seed + args.count - 1} threads={threads} "
                    f"budget={args.memory_budget}\n\n{reports}\n"
                )
                print(f"\nrepro report written to {args.artifact}")
        else:
            print(f"[fuzz] clean: {args.count} seeds x threads {threads} "
                  f"spilled-vs-in-memory at budget={args.memory_budget} in "
                  f"{time.perf_counter() - started:.1f}s")
        return min(len(failures) + len(verify_failures), 125)

    oracle_names = [b.strip() for b in args.backend.split(",") if b.strip()]
    try:
        oracles = [get_backend(name) for name in oracle_names]
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"registered backends: {', '.join(available_backends())}",
              file=sys.stderr)
        return 2
    for oracle in oracles:
        if not oracle.introspect().available:
            print(f"error: backend {oracle.name!r} is not available in this "
                  f"environment", file=sys.stderr)
            return 2

    db = build_fuzz_db()
    started = time.perf_counter()
    failures = []
    step = max(args.progress_every, 1) if args.progress_every else args.count
    for oracle in oracles:
        for lo in range(args.seed, args.seed + args.count, step):
            hi = min(lo + step, args.seed + args.count)
            failures.extend(run_seeds(db, range(lo, hi), threads=threads,
                                      oracle=oracle,
                                      shrink_failures=not args.no_shrink))
            if args.progress_every:
                done = hi - args.seed
                print(f"[fuzz:{oracle.name}] {done}/{args.count} seeds, "
                      f"{len(failures)} divergence(s), "
                      f"{time.perf_counter() - started:.1f}s", flush=True)

    if failures:
        reports = "\n\n".join(f.report() for f in failures)
        print(f"\n{len(failures)} divergence(s):\n\n{reports}")
        if args.artifact:
            Path(args.artifact).write_text(
                f"fuzz seeds {args.seed}..{args.seed + args.count - 1} "
                f"threads={threads} oracles={','.join(oracle_names)}\n\n"
                f"{reports}\n"
            )
            print(f"\nrepro report written to {args.artifact}")
    else:
        print(f"[fuzz] clean: {args.count} seeds x threads {threads} x "
              f"oracles {','.join(oracle_names)} in "
              f"{time.perf_counter() - started:.1f}s")
    return min(len(failures) + len(verify_failures), 125)


if __name__ == "__main__":
    raise SystemExit(main())
