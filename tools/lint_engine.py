#!/usr/bin/env python
"""Engine-invariant linter: AST checks for rules the engine relies on but
that no type checker or generic linter enforces.

Rules
-----
ENG001 operator-checkpoint
    Every ``Operator`` subclass in ``sqlengine/plan.py`` that defines
    ``execute`` must call ``ctx.checkpoint()`` so cooperative
    cancellation/timeout fires at operator boundaries.  Operators doing
    O(1) work (``DualScan``, ``Limit``) are allowlisted.

ENG002 typed-errors
    Engine code must raise ``repro.errors`` types, never bare builtins —
    callers (the fuzz differential harness, the server admission layer)
    dispatch on the typed hierarchy.  ``NotImplementedError`` is exempt
    (abstract methods); deliberate internal control-flow raises are
    allowlisted.

ENG003 silent-broad-except
    A bare ``except:`` / ``except Exception:`` whose body is only ``pass``
    hides real engine bugs.  Broad excepts with an explicit conservative
    fallback (zone-map pruning, selectivity sampling) are fine and not
    flagged.

ENG004 lock-order
    ``PreparedStatement._refresh_lock`` is acquired *before*
    ``Database._cache_lock`` (refresh → plan-entry rebuild).  Acquiring
    ``_refresh_lock`` while holding ``_cache_lock`` inverts that order and
    can deadlock under concurrent DDL.

ENG005 duration-clock
    Durations and deadlines must use ``time.perf_counter()`` /
    ``time.monotonic()``; ``time.time()`` jumps with wall-clock
    adjustments.  Genuine wall-clock timestamps are allowlisted.

ENG006 mutable-default
    List/dict/set literals as parameter defaults are shared across calls.

ENG007 eager-analysis-import
    ``repro.analysis`` imports the SQL engine and the IR, so engine and
    core modules must import it lazily (inside the function that needs
    it).  A module-level import reintroduces the cycle
    ``analysis → core → backends → …``.

Findings are identified as ``path:RULE:symbol`` (symbol = nearest
enclosing ``Class.function``, or ``<module>``); adding that line to
``tools/lint_engine_allow.txt`` suppresses the finding.  Run:

    python tools/lint_engine.py          # lint src/repro
    python tools/lint_engine.py --list   # show every finding id, even allowed
"""
from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
ALLOWLIST = REPO / "tools" / "lint_engine_allow.txt"

# Packages whose raises must come from the repro.errors hierarchy.
TYPED_ERROR_PACKAGES = ("sqlengine", "backends", "storage", "analysis", "server")
BUILTIN_EXCEPTIONS = {
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "RuntimeError", "OSError", "IOError", "ArithmeticError",
    "ZeroDivisionError", "AttributeError", "LookupError", "StopIteration",
}
# Operators whose execute does O(1) work; a checkpoint would be pure noise.
CHECKPOINT_EXEMPT = {"DualScan", "Limit"}
BROAD_EXCEPTS = {"Exception", "BaseException"}


class Finding:
    def __init__(self, rule: str, path: Path, line: int, symbol: str, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.symbol = symbol
        self.message = message

    @property
    def ident(self) -> str:
        rel = self.path.relative_to(REPO).as_posix()
        return f"{rel}:{self.rule}:{self.symbol}"

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO).as_posix()
        return f"{rel}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


def _symbol_of(stack: list[str]) -> str:
    return ".".join(stack) if stack else "<module>"


def _is_name(node: ast.expr, name: str) -> bool:
    return (isinstance(node, ast.Name) and node.id == name) or (
        isinstance(node, ast.Attribute) and node.attr == name
    )


def _calls_in(node: ast.AST):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, findings: list[Finding]):
        self.path = path
        self.findings = findings
        self.stack: list[str] = []
        self.rel = path.relative_to(REPO).as_posix()
        self.in_engine = any(f"repro/{pkg}/" in self.rel
                             for pkg in TYPED_ERROR_PACKAGES)

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(rule, self.path, node.lineno,
                                     _symbol_of(self.stack), message))

    # -- scope tracking ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_operator_checkpoint(node)
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def _visit_func(self, node) -> None:
        self._check_mutable_defaults(node)
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- ENG001 -----------------------------------------------------------
    def _check_operator_checkpoint(self, node: ast.ClassDef) -> None:
        if self.rel != "src/repro/sqlengine/plan.py":
            return
        if not any(_is_name(b, "Operator") for b in node.bases):
            return
        if node.name in CHECKPOINT_EXEMPT:
            return
        execute = next((s for s in node.body
                        if isinstance(s, ast.FunctionDef)
                        and s.name == "execute"), None)
        if execute is None:
            return
        for call in _calls_in(execute):
            if isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "checkpoint":
                return
        self.findings.append(Finding(
            "ENG001", self.path, execute.lineno, node.name,
            "Operator.execute without a ctx.checkpoint() call — "
            "cancellation/timeout cannot interrupt this operator"))

    # -- ENG002 -----------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        if self.in_engine and node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            if name in BUILTIN_EXCEPTIONS:
                self.emit("ENG002", node,
                          f"raises builtin {name} — engine errors must "
                          f"subclass repro.errors.ReproError")
        self.generic_visit(node)

    # -- ENG003 -----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id in BROAD_EXCEPTS
        )
        silent = all(isinstance(s, ast.Pass) for s in node.body)
        if broad and silent:
            self.emit("ENG003", node,
                      "broad except with a pass-only body swallows "
                      "engine bugs silently")
        self.generic_visit(node)

    # -- ENG004 -----------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        holds_cache = any(_is_name(item.context_expr, "_cache_lock")
                          for item in node.items)
        if holds_cache:
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, ast.With) and any(
                    _is_name(item.context_expr, "_refresh_lock")
                    for item in sub.items
                ):
                    self.emit("ENG004", sub,
                              "_refresh_lock acquired while holding "
                              "_cache_lock — inverts the documented "
                              "refresh-before-cache order (deadlock risk)")
        self.generic_visit(node)

    # -- ENG005 -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "time" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "time":
            self.emit("ENG005", node,
                      "time.time() — use time.perf_counter() (or "
                      "time.monotonic()) for durations/deadlines")
        self.generic_visit(node)

    # -- ENG006 -----------------------------------------------------------
    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for d in defaults:
            if isinstance(d, (ast.List, ast.Dict, ast.Set)):
                self.findings.append(Finding(
                    "ENG006", self.path, d.lineno,
                    _symbol_of(self.stack + [node.name]),
                    "mutable literal as parameter default is shared "
                    "across calls"))

    # -- ENG007 -----------------------------------------------------------
    def _resolved_module(self, module: str, level: int) -> str:
        """Absolute dotted path of an import as seen from this file."""
        if level == 0:
            return module
        # src/repro/sqlengine/planner.py → package repro.sqlengine
        parts = self.rel.removeprefix("src/").removesuffix(".py").split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        else:
            parts = parts[:-1]
        base = parts[: len(parts) - (level - 1)] if level > 1 else parts
        return ".".join(base + ([module] if module else []))

    def _check_import(self, node, resolved: str) -> None:
        if self.stack:
            return  # lazy (function-level) import: exactly what we want
        if resolved == "repro.analysis" \
                or resolved.startswith("repro.analysis."):
            if not self.rel.startswith("src/repro/analysis/"):
                self.emit("ENG007", node,
                          f"module-level import of {resolved!r} from engine "
                          f"code — import repro.analysis lazily to avoid "
                          f"the analysis → core → backends import cycle")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # "from ..analysis import x" / "from repro.analysis import x"
        self._check_import(
            node, self._resolved_module(node.module or "", node.level))


def lint_file(path: Path, findings: list[Finding]) -> None:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        findings.append(Finding("ENG000", path, exc.lineno or 0, "<module>",
                                f"syntax error: {exc.msg}"))
        return
    _Linter(path, findings).visit(tree)


def load_allowlist() -> set[str]:
    if not ALLOWLIST.exists():
        return set()
    entries = set()
    for line in ALLOWLIST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line.split("#")[0].strip())
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--list", action="store_true",
                        help="print every finding id including allowlisted ones")
    args = parser.parse_args(argv)

    roots = args.paths or [SRC]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)

    findings: list[Finding] = []
    for path in files:
        lint_file(path.resolve(), findings)

    allow = load_allowlist()
    active = [f for f in findings if f.ident not in allow]
    stale = allow - {f.ident for f in findings}

    if args.list:
        for f in findings:
            mark = "allowed " if f.ident in allow else ""
            print(f"{mark}{f}")
    else:
        for f in active:
            print(f)
    for ident in sorted(stale):
        print(f"stale allowlist entry (no matching finding): {ident}")

    if active or stale:
        print(f"\n{len(active)} violation(s), {len(stale)} stale "
              f"allowlist entr(ies)", file=sys.stderr)
        return 1
    print(f"lint_engine: clean ({len(files)} files, "
          f"{len(findings)} finding(s) allowlisted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
