#!/usr/bin/env python
"""Validate committed benchmark result JSONs against their CI gates.

Every ``benchmarks/results/*.json`` is a machine-readable claim ("adaptive
re-optimization gives ≥1.5x", "the network serving tier sustains ≥N QPS
with zero errors"); this checker re-asserts each claim so a regenerated
result that quietly regressed — or a new results file nobody wrote a gate
for — fails CI instead of rotting in the tree.

Run from anywhere::

    python tools/check_bench_results.py          # check the committed tree
    python tools/check_bench_results.py FILE...  # check specific files

Exit status is non-zero when any gate fails; each failure prints a
``file: problem`` line.  Plain-text results (``*.txt``) are display
artifacts and are not gated here.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO / "benchmarks" / "results"

# Serving-tier floors/ceilings, calibrated for a single-core CI runner at
# the committed scale factor (local runs see ~5x the floor).
SERVING_MIN_QPS = 25.0
SERVING_MAX_P99_MS = 1500.0


def _require(data: dict, keys, problems: list[str], name: str) -> bool:
    missing = [k for k in keys if k not in data]
    if missing:
        problems.append(f"{name}: missing required keys {missing}")
        return False
    return True


def check_adaptive_execution(data: dict, problems: list[str], name: str) -> None:
    if not _require(data, ("workload", "static_ms", "adaptive_ms",
                           "speedup", "replans"), problems, name):
        return
    if data["speedup"] < 1.5:
        problems.append(
            f"{name}: adaptive speedup {data['speedup']:.3f} below the 1.5x gate"
        )
    if data["replans"] < 1:
        problems.append(
            f"{name}: {data['replans']} replans — the adaptive path never fired"
        )


def check_serving_net(data: dict, problems: list[str], name: str) -> None:
    if not _require(data, ("workload", "runs", "identical_results"),
                    problems, name):
        return
    runs = data["runs"]
    if not isinstance(runs, list) or not runs:
        problems.append(f"{name}: 'runs' must be a non-empty list")
        return
    if data["identical_results"] is not True:
        problems.append(
            f"{name}: identical_results is {data['identical_results']!r} — "
            "sharded and serial serving answers were not verified equal"
        )
    for run in runs:
        label = f"{name} (shard_workers={run.get('shard_workers', '?')})"
        if not _require(run, ("qps", "p99_ms", "queries", "errors",
                              "timeouts"), problems, label):
            continue
        if run["errors"] != 0:
            problems.append(f"{label}: {run['errors']} query errors under load")
        if run["timeouts"] != 0:
            problems.append(f"{label}: {run['timeouts']} query timeouts under load")
        if run["queries"] <= 0:
            problems.append(f"{label}: no queries completed")
        if run["qps"] < SERVING_MIN_QPS:
            problems.append(
                f"{label}: {run['qps']:.1f} QPS below the {SERVING_MIN_QPS} floor"
            )
        if run["p99_ms"] > SERVING_MAX_P99_MS:
            problems.append(
                f"{label}: p99 {run['p99_ms']:.1f} ms above the "
                f"{SERVING_MAX_P99_MS} ms ceiling"
            )


# file name -> gate function.  A committed JSON without a gate is itself a
# failure: results must make checkable claims.
GATES = {
    "adaptive_execution.json": check_adaptive_execution,
    "serving_net.json": check_serving_net,
}


def check_file(path: Path, problems: list[str]) -> None:
    name = path.name
    gate = GATES.get(name)
    if gate is None:
        problems.append(
            f"{name}: no gate registered in tools/check_bench_results.py — "
            "add one (a committed result must be a checkable claim)"
        )
        return
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{name}: unreadable JSON ({exc})")
        return
    if not isinstance(data, dict):
        problems.append(f"{name}: top level must be an object")
        return
    gate(data, problems, name)


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(a) for a in argv]
    else:
        paths = sorted(RESULTS_DIR.glob("*.json"))
    problems: list[str] = []
    for path in paths:
        if not path.exists():
            problems.append(f"{path}: does not exist")
            continue
        check_file(path, problems)
    if problems:
        for p in problems:
            print(p)
        print(f"\n{len(problems)} benchmark-result problem(s)")
        return 1
    print(f"checked {len(paths)} result file(s): all gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
