#!/usr/bin/env python
"""Documentation hygiene checker (run by CI and tests/test_docs.py).

Two checks, both repo-relative and dependency-free:

1. **Intra-repo markdown links.**  Every ``[text](target)`` in a tracked
   markdown file whose target is not an external URL or a pure anchor must
   resolve to an existing file or directory (anchors are stripped before
   resolution).
2. **Module docstrings.**  Every module under ``src/repro/sqlengine/`` must
   open with a docstring — the engine is the layer outside contributors
   touch first, so its modules must be self-describing.

Exit status is non-zero when any check fails; each failure prints a
``file: problem`` line.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_GLOBS = ["*.md", "docs/**/*.md"]
# Paper-retrieval artifacts (verbatim exports, not repo documentation).
EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}
DOCSTRING_TREES = ["src/repro/sqlengine"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, https:, mailto:, ...


def iter_markdown_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(REPO.glob(pattern))
    return sorted(p for p in set(files) if p.name not in EXCLUDED)


def check_links() -> list[str]:
    """Broken intra-repo link targets across all tracked markdown files."""
    problems: list[str] = []
    for md in iter_markdown_files():
        text = md.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _EXTERNAL.match(target) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO)
                problems.append(f"{rel}: broken link -> {target}")
    return problems


def check_module_docstrings() -> list[str]:
    """Modules in the enforced trees that lack a module docstring."""
    problems: list[str] = []
    for tree in DOCSTRING_TREES:
        for py in sorted((REPO / tree).rglob("*.py")):
            module = ast.parse(py.read_text())
            if ast.get_docstring(module) is None:
                problems.append(
                    f"{py.relative_to(REPO)}: missing module docstring"
                )
    return problems


def main() -> int:
    problems = check_links() + check_module_docstrings()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs ok: links resolve, sqlengine modules documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
