"""Hybrid matrix-calculation workloads (Section V-A, "Hybrid Matrix
Calculation Experiments").

Both pipelines join two large feature tables with Pandas, convert the
result to a NumPy array, and run an einsum over it — a covariance matrix
(``'ij,ik->jk'``) or a matrix-vector product (``'ij,j->i'``).  The
*Filtered* variants additionally apply a join-dependent filter between the
join and the einsum.
"""

from __future__ import annotations

import numpy as np

from ..core import pytond
from .registry import Workload, register_workload

__all__ = [
    "hybrid_covar_nf", "hybrid_covar_f", "hybrid_mv_nf", "hybrid_mv_f",
    "make_data",
]

MV_WEIGHTS = [0.5, -1.0, 2.0, 0.25, 1.5, -0.75, 1.0, -2.0]


@pytond()
def hybrid_covar_nf(feat_a, feat_b):
    j = feat_a.merge(feat_b, on='id')
    a = j.drop('id', axis=1).to_numpy()
    cov = np.einsum('ij,ik->jk', a, a)
    return cov


@pytond()
def hybrid_covar_f(feat_a, feat_b):
    j = feat_a.merge(feat_b, on='id')
    j = j[j.x0 + j.y0 > 1.0]
    a = j.drop('id', axis=1).to_numpy()
    cov = np.einsum('ij,ik->jk', a, a)
    return cov


@pytond()
def hybrid_mv_nf(feat_a, feat_b):
    j = feat_a.merge(feat_b, on='id')
    a = j.drop('id', axis=1).to_numpy()
    w = np.array([0.5, -1.0, 2.0, 0.25, 1.5, -0.75, 1.0, -2.0])
    v = np.einsum('ij,j->i', a, w)
    return v


@pytond()
def hybrid_mv_f(feat_a, feat_b):
    j = feat_a.merge(feat_b, on='id')
    j = j[j.x0 + j.y0 > 1.0]
    a = j.drop('id', axis=1).to_numpy()
    w = np.array([0.5, -1.0, 2.0, 0.25, 1.5, -0.75, 1.0, -2.0])
    v = np.einsum('ij,j->i', a, w)
    return v


def make_data(scale: float = 1.0, seed: int = 23) -> dict:
    """Two feature tables sharing ids; scale=1 is 200k rows x 4+4 columns."""
    rng = np.random.default_rng(seed)
    n = max(int(200_000 * scale), 100)
    ids = np.arange(1, n + 1, dtype=np.int64)
    data_a = {"id": ids}
    for k in range(4):
        data_a[f"x{k}"] = rng.normal(0.0, 1.0, size=n)
    data_b = {"id": ids}
    for k in range(4):
        data_b[f"y{k}"] = rng.normal(0.5, 1.0, size=n)
    return {"feat_a": data_a, "feat_b": data_b}


for _name, _fn in [
    ("hybrid_covar_nf", hybrid_covar_nf),
    ("hybrid_covar_f", hybrid_covar_f),
    ("hybrid_mv_nf", hybrid_mv_nf),
    ("hybrid_mv_f", hybrid_mv_f),
]:
    register_workload(Workload(
        name=_name,
        fn=_fn,
        tables=["feat_a", "feat_b"],
        make_data=make_data,
        primary_keys={"feat_a": "id", "feat_b": "id"},
    ))
