"""Crime Index workload (Weld [11], scaled) — a hybrid Pandas/NumPy pipeline.

Filters a city-statistics DataFrame, converts it to a dense array, computes
a weighted crime score with einsum, filters the resulting vector, and
reduces it — exactly the Pandas -> NumPy -> Pandas shape described in
Section V-A of the paper.
"""

from __future__ import annotations

import numpy as np

from ..core import pytond
from .registry import Workload, register_workload

__all__ = ["crime_index", "make_data", "WORKLOAD"]

CRIME_WEIGHTS = [2e-7, 5e-7, -1e-4]


@pytond()
def crime_index(crime_data):
    d = crime_data[(crime_data.total_population > 500000)
                   & (crime_data.adult_population > 200000)]
    d = d[['city_id', 'total_population', 'adult_population', 'num_robberies']]
    a = d.drop('city_id', axis=1).to_numpy()
    weights = np.array([2e-07, 5e-07, -0.0001])
    scores = np.einsum('ij,j->i', a, weights)
    high = scores[scores > 0.35]
    return high.sum()


def make_data(scale: float = 1.0, seed: int = 13) -> dict:
    """Synthetic city statistics; scale=1 is ~100k rows (paper uses SF 100)."""
    rng = np.random.default_rng(seed)
    n = max(int(100_000 * scale), 100)
    total = rng.integers(10_000, 5_000_000, size=n).astype(np.float64)
    adult = np.round(total * rng.uniform(0.5, 0.9, size=n))
    robberies = np.round(total * rng.uniform(0.0001, 0.005, size=n))
    return {
        "crime_data": {
            "city_id": np.arange(1, n + 1, dtype=np.int64),
            "city_name": np.array([f"city_{i}" for i in range(n)], dtype=object),
            "total_population": total,
            "adult_population": adult,
            "num_robberies": robberies,
        }
    }


WORKLOAD = register_workload(Workload(
    name="crime_index",
    fn=crime_index,
    tables=["crime_data"],
    make_data=make_data,
    primary_keys={"crime_data": "city_id"},
))
