"""Deterministic dbgen-style TPC-H data generator (NumPy, seeded).

Follows the TPC-H specification's table cardinalities and value domains
closely enough that all 22 queries exercise their intended operator mixes
and selectivities: dates span 1992–1998, discounts 0–0.10, p_type triples,
Brand#NM names, comment text that satisfies every LIKE predicate, etc.
Scale factor 1.0 corresponds to the paper's dataset; tests and laptop
benches use smaller factors (row counts scale linearly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate", "REGIONS", "NATIONS", "SEGMENTS", "PRIORITIES", "SHIPMODES"]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# (name, region index) — the 25 standard TPC-H nations.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIPINSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLL1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLL2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
]

_COMMENT_WORDS = [
    "carefully", "furiously", "quickly", "slyly", "blithely", "even",
    "final", "ironic", "regular", "express", "bold", "pending", "silent",
    "daring", "unusual", "packages", "deposits", "accounts", "theodolites",
    "instructions", "platelets", "foxes", "ideas", "dependencies", "pinto",
    "beans", "requests", "asymptotes", "courts", "dolphins", "multipliers",
]

_EPOCH_START = np.datetime64("1992-01-01", "D")
_ORDER_SPAN_DAYS = 2405  # 1992-01-01 .. 1998-08-02


def _comments(rng: np.random.Generator, n: int, special_frac: float = 0.0,
               special_words: tuple[str, str] | None = None) -> np.ndarray:
    """Random comment strings; a fraction embed '<w1> ... <w2>' in order."""
    w = rng.integers(0, len(_COMMENT_WORDS), size=(n, 4))
    out = np.empty(n, dtype=object)
    words = _COMMENT_WORDS
    for i in range(n):
        out[i] = f"{words[w[i, 0]]} {words[w[i, 1]]} {words[w[i, 2]]} {words[w[i, 3]]}"
    if special_frac > 0 and special_words is not None:
        count = max(int(n * special_frac), 1)
        idx = rng.choice(n, size=count, replace=False)
        w1, w2 = special_words
        for i in idx:
            out[i] = f"{words[w[i, 0]]} {w1} {words[w[i, 1]]} {w2} {words[w[i, 2]]}"
    return out


def _phones(rng: np.random.Generator, nation_keys: np.ndarray) -> np.ndarray:
    local = rng.integers(100, 999, size=(len(nation_keys), 3))
    out = np.empty(len(nation_keys), dtype=object)
    for i, nk in enumerate(nation_keys):
        out[i] = f"{nk + 10}-{local[i, 0]}-{local[i, 1]}-{local[i, 2]}"
    return out


def _dates(base: np.ndarray) -> np.ndarray:
    return _EPOCH_START + base.astype("timedelta64[D]")


def generate(scale_factor: float = 0.01, seed: int = 42) -> dict[str, dict[str, np.ndarray]]:
    """Generate the full eight-table TPC-H dataset at *scale_factor*."""
    rng = np.random.default_rng(seed)
    sf = float(scale_factor)

    n_supplier = max(int(10_000 * sf), 20)
    n_part = max(int(200_000 * sf), 50)
    n_customer = max(int(150_000 * sf), 40)
    n_orders = max(int(1_500_000 * sf), 100)

    dataset: dict[str, dict[str, np.ndarray]] = {}

    # -- region / nation ------------------------------------------------------
    dataset["region"] = {
        "r_regionkey": np.arange(len(REGIONS), dtype=np.int64),
        "r_name": np.array(REGIONS, dtype=object),
        "r_comment": _comments(rng, len(REGIONS)),
    }
    dataset["nation"] = {
        "n_nationkey": np.arange(len(NATIONS), dtype=np.int64),
        "n_name": np.array([n for n, _ in NATIONS], dtype=object),
        "n_regionkey": np.array([r for _, r in NATIONS], dtype=np.int64),
        "n_comment": _comments(rng, len(NATIONS)),
    }

    # -- supplier ----------------------------------------------------------------
    s_nation = rng.integers(0, len(NATIONS), size=n_supplier)
    dataset["supplier"] = {
        "s_suppkey": np.arange(1, n_supplier + 1, dtype=np.int64),
        "s_name": np.array([f"Supplier#{i:09d}" for i in range(1, n_supplier + 1)], dtype=object),
        "s_address": _comments(rng, n_supplier),
        "s_nationkey": s_nation,
        "s_phone": _phones(rng, s_nation),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n_supplier), 2),
        # ~5 per mille of suppliers have "Customer ... Complaints" (Q16).
        "s_comment": _comments(rng, n_supplier, special_frac=0.01,
                               special_words=("Customer", "Complaints")),
    }

    # -- part -----------------------------------------------------------------
    name_idx = rng.integers(0, len(COLORS), size=(n_part, 5))
    p_name = np.empty(n_part, dtype=object)
    for i in range(n_part):
        p_name[i] = " ".join(COLORS[j] for j in name_idx[i])
    mfgr = rng.integers(1, 6, size=n_part)
    brand = mfgr * 10 + rng.integers(1, 6, size=n_part)
    t1 = rng.integers(0, len(TYPE_SYLL1), size=n_part)
    t2 = rng.integers(0, len(TYPE_SYLL2), size=n_part)
    t3 = rng.integers(0, len(TYPE_SYLL3), size=n_part)
    p_type = np.empty(n_part, dtype=object)
    for i in range(n_part):
        p_type[i] = f"{TYPE_SYLL1[t1[i]]} {TYPE_SYLL2[t2[i]]} {TYPE_SYLL3[t3[i]]}"
    c1 = rng.integers(0, len(CONTAINER_SYLL1), size=n_part)
    c2 = rng.integers(0, len(CONTAINER_SYLL2), size=n_part)
    p_container = np.empty(n_part, dtype=object)
    for i in range(n_part):
        p_container[i] = f"{CONTAINER_SYLL1[c1[i]]} {CONTAINER_SYLL2[c2[i]]}"
    partkeys = np.arange(1, n_part + 1, dtype=np.int64)
    dataset["part"] = {
        "p_partkey": partkeys,
        "p_name": p_name,
        "p_mfgr": np.array([f"Manufacturer#{m}" for m in mfgr], dtype=object),
        "p_brand": np.array([f"Brand#{b}" for b in brand], dtype=object),
        "p_type": p_type,
        "p_size": rng.integers(1, 51, size=n_part),
        "p_container": p_container,
        "p_retailprice": np.round(900.0 + (partkeys % 1000) / 10.0 + 100.0 * (partkeys % 10), 2),
        "p_comment": _comments(rng, n_part),
    }

    # -- partsupp (4 suppliers per part) ---------------------------------------
    ps_part = np.repeat(partkeys, 4)
    ps_supp = np.empty(len(ps_part), dtype=np.int64)
    for k in range(4):
        ps_supp[k::4] = (partkeys + k * (n_supplier // 4 + 1)) % n_supplier + 1
    dataset["partsupp"] = {
        "ps_partkey": ps_part,
        "ps_suppkey": ps_supp,
        "ps_availqty": rng.integers(1, 10_000, size=len(ps_part)),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, size=len(ps_part)), 2),
        "ps_comment": _comments(rng, len(ps_part)),
    }

    # -- customer ----------------------------------------------------------------
    c_nation = rng.integers(0, len(NATIONS), size=n_customer)
    custkeys = np.arange(1, n_customer + 1, dtype=np.int64)
    dataset["customer"] = {
        "c_custkey": custkeys,
        "c_name": np.array([f"Customer#{i:09d}" for i in custkeys], dtype=object),
        "c_address": _comments(rng, n_customer),
        "c_nationkey": c_nation,
        "c_phone": _phones(rng, c_nation),
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n_customer), 2),
        "c_mktsegment": np.array(SEGMENTS, dtype=object)[rng.integers(0, len(SEGMENTS), size=n_customer)],
        "c_comment": _comments(rng, n_customer),
    }

    # -- orders (1/3 of customers have no orders, per spec) ---------------------------
    orderkeys = np.arange(1, n_orders + 1, dtype=np.int64)
    eligible = custkeys[custkeys % 3 != 0]
    o_cust = eligible[rng.integers(0, len(eligible), size=n_orders)]
    o_date_off = rng.integers(0, _ORDER_SPAN_DAYS - 151, size=n_orders)
    o_orderdate = _dates(o_date_off)
    dataset["orders"] = {
        "o_orderkey": orderkeys,
        "o_custkey": o_cust,
        "o_orderstatus": np.array(["F", "O", "P"], dtype=object)[
            rng.choice(3, size=n_orders, p=[0.49, 0.49, 0.02])
        ],
        "o_totalprice": np.round(rng.uniform(1000.0, 500_000.0, size=n_orders), 2),
        "o_orderdate": o_orderdate,
        "o_orderpriority": np.array(PRIORITIES, dtype=object)[
            rng.integers(0, len(PRIORITIES), size=n_orders)
        ],
        "o_clerk": np.array([f"Clerk#{i:09d}" for i in rng.integers(1, max(int(n_orders / 1000), 2), size=n_orders)], dtype=object),
        "o_shippriority": np.zeros(n_orders, dtype=np.int64),
        "o_comment": _comments(rng, n_orders, special_frac=0.01,
                               special_words=("special", "requests")),
    }

    # -- lineitem (1..7 lines per order) ------------------------------------------
    lines_per_order = rng.integers(1, 8, size=n_orders)
    l_order = np.repeat(orderkeys, lines_per_order)
    n_lineitem = len(l_order)
    l_linenumber = np.concatenate([np.arange(1, k + 1) for k in lines_per_order]).astype(np.int64)
    l_part = rng.integers(1, n_part + 1, size=n_lineitem)
    # The supplier must be one of the part's 4 partsupp suppliers.
    which = rng.integers(0, 4, size=n_lineitem)
    l_supp = (l_part + which * (n_supplier // 4 + 1)) % n_supplier + 1
    l_qty = rng.integers(1, 51, size=n_lineitem).astype(np.float64)
    l_price = np.round(l_qty * (90_000.0 + (l_part % 20_000) + 100.0 * (l_part % 10)) / 100.0, 2)
    l_discount = np.round(rng.integers(0, 11, size=n_lineitem) / 100.0, 2)
    l_tax = np.round(rng.integers(0, 9, size=n_lineitem) / 100.0, 2)

    order_date_off = np.repeat(o_date_off, lines_per_order)
    ship_off = order_date_off + rng.integers(1, 122, size=n_lineitem)
    commit_off = order_date_off + rng.integers(30, 91, size=n_lineitem)
    receipt_off = ship_off + rng.integers(1, 31, size=n_lineitem)

    ship_date = _dates(ship_off)
    receipt_date = _dates(receipt_off)
    today = _EPOCH_START + np.timedelta64(_ORDER_SPAN_DAYS - 151 + 121, "D")
    returnflag = np.where(
        receipt_date <= _EPOCH_START + np.timedelta64(1460, "D"),
        np.array(["R", "A"], dtype=object)[rng.integers(0, 2, size=n_lineitem)],
        np.array("N", dtype=object),
    ).astype(object)
    linestatus = np.where(ship_date > _EPOCH_START + np.timedelta64(1710, "D"), "O", "F").astype(object)

    dataset["lineitem"] = {
        "l_orderkey": l_order,
        "l_partkey": l_part,
        "l_suppkey": l_supp,
        "l_linenumber": l_linenumber,
        "l_quantity": l_qty,
        "l_extendedprice": l_price,
        "l_discount": l_discount,
        "l_tax": l_tax,
        "l_returnflag": returnflag,
        "l_linestatus": linestatus,
        "l_shipdate": ship_date,
        "l_commitdate": _dates(commit_off),
        "l_receiptdate": receipt_date,
        "l_shipinstruct": np.array(SHIPINSTRUCT, dtype=object)[
            rng.integers(0, len(SHIPINSTRUCT), size=n_lineitem)
        ],
        "l_shipmode": np.array(SHIPMODES, dtype=object)[
            rng.integers(0, len(SHIPMODES), size=n_lineitem)
        ],
        "l_comment": _comments(rng, n_lineitem),
    }
    return dataset
