"""TPC-H schema metadata: columns, keys, and loading helpers."""

from __future__ import annotations

__all__ = ["TABLES", "PRIMARY_KEYS", "register_tpch", "TABLE_ORDER"]

TABLE_ORDER = [
    "region", "nation", "supplier", "part", "partsupp",
    "customer", "orders", "lineitem",
]

TABLES: dict[str, list[str]] = {
    "region": ["r_regionkey", "r_name", "r_comment"],
    "nation": ["n_nationkey", "n_name", "n_regionkey", "n_comment"],
    "supplier": ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
                 "s_acctbal", "s_comment"],
    "part": ["p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
             "p_container", "p_retailprice", "p_comment"],
    "partsupp": ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
                 "ps_comment"],
    "customer": ["c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
                 "c_acctbal", "c_mktsegment", "c_comment"],
    "orders": ["o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
               "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
               "o_comment"],
    "lineitem": ["l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
                 "l_quantity", "l_extendedprice", "l_discount", "l_tax",
                 "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
                 "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"],
}

PRIMARY_KEYS: dict[str, str | None] = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "part": "p_partkey",
    "partsupp": None,  # composite (ps_partkey, ps_suppkey)
    "customer": "c_custkey",
    "orders": "o_orderkey",
    "lineitem": None,  # composite (l_orderkey, l_linenumber)
}


def register_tpch(db, dataset: dict) -> None:
    """Register a generated TPC-H dataset (dict of table -> columns dict)."""
    for name in TABLE_ORDER:
        pk = PRIMARY_KEYS[name]
        db.register(name, dataset[name], primary_key=pk)
