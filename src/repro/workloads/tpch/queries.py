"""All 22 TPC-H queries written against the Pandas-substitute API.

Each query is a plain Pandas/NumPy-style function decorated with
``@pytond()`` — calling it runs the eager Python baseline, while
``.sql(backend, db=db)`` / ``.run(db, backend)`` go through the full
translation pipeline.  Formulations follow the DataFrame TPC-H of the
paper's reference [34] (merge/filter/groupby style, no SQL-isms).
"""

from __future__ import annotations

import numpy as np

from ...core import pytond

__all__ = ["QUERIES", "QUERY_TABLES"]


@pytond()
def q1(lineitem):
    l = lineitem[lineitem.l_shipdate <= '1998-09-02']
    l['disc_price'] = l.l_extendedprice * (1 - l.l_discount)
    l['charge'] = l.l_extendedprice * (1 - l.l_discount) * (1 + l.l_tax)
    g = l.groupby(['l_returnflag', 'l_linestatus']).agg(
        sum_qty=('l_quantity', 'sum'),
        sum_base_price=('l_extendedprice', 'sum'),
        sum_disc_price=('disc_price', 'sum'),
        sum_charge=('charge', 'sum'),
        avg_qty=('l_quantity', 'mean'),
        avg_price=('l_extendedprice', 'mean'),
        avg_disc=('l_discount', 'mean'),
        count_order=('l_quantity', 'count'),
    ).reset_index()
    return g.sort_values(['l_returnflag', 'l_linestatus'])


@pytond()
def q2(part, supplier, partsupp, nation, region):
    p = part[(part.p_size == 15) & (part.p_type.str.endswith('BRASS'))]
    r = region[region.r_name == 'EUROPE']
    j = partsupp.merge(p, left_on='ps_partkey', right_on='p_partkey')
    j = j.merge(supplier, left_on='ps_suppkey', right_on='s_suppkey')
    j = j.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    j = j.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    mins = j.groupby('p_partkey').agg(min_cost=('ps_supplycost', 'min')).reset_index()
    j2 = j.merge(mins, on='p_partkey')
    j2 = j2[j2.ps_supplycost == j2.min_cost]
    out = j2[['s_acctbal', 's_name', 'n_name', 'p_partkey', 'p_mfgr',
              's_address', 's_phone', 's_comment']]
    out = out.sort_values(['s_acctbal', 'n_name', 's_name', 'p_partkey'],
                          ascending=[False, True, True, True])
    return out.head(100)


@pytond()
def q3(customer, orders, lineitem):
    c = customer[customer.c_mktsegment == 'BUILDING']
    o = orders[orders.o_orderdate < '1995-03-15']
    l = lineitem[lineitem.l_shipdate > '1995-03-15']
    j = c.merge(o, left_on='c_custkey', right_on='o_custkey')
    j = j.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby(['o_orderkey', 'o_orderdate', 'o_shippriority']).agg(
        revenue=('volume', 'sum')).reset_index()
    g = g.sort_values(['revenue', 'o_orderdate'], ascending=[False, True])
    return g.head(10)


@pytond()
def q4(orders, lineitem):
    l = lineitem[lineitem.l_commitdate < lineitem.l_receiptdate]
    o = orders[(orders.o_orderdate >= '1993-07-01') & (orders.o_orderdate < '1993-10-01')]
    o = o[o.o_orderkey.isin(l.l_orderkey)]
    g = o.groupby('o_orderpriority').agg(order_count=('o_orderkey', 'count')).reset_index()
    return g.sort_values('o_orderpriority')


@pytond()
def q5(customer, orders, lineitem, supplier, nation, region):
    o = orders[(orders.o_orderdate >= '1994-01-01') & (orders.o_orderdate < '1995-01-01')]
    r = region[region.r_name == 'ASIA']
    j = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    j = j.merge(lineitem, left_on='o_orderkey', right_on='l_orderkey')
    j = j.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j = j[j.c_nationkey == j.s_nationkey]
    j = j.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    j = j.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby('n_name').agg(revenue=('volume', 'sum')).reset_index()
    return g.sort_values('revenue', ascending=False)


@pytond()
def q6(lineitem):
    l = lineitem[(lineitem.l_shipdate >= '1994-01-01')
                 & (lineitem.l_shipdate < '1995-01-01')
                 & (lineitem.l_discount >= 0.05)
                 & (lineitem.l_discount <= 0.07)
                 & (lineitem.l_quantity < 24)]
    rev = l.l_extendedprice * l.l_discount
    return rev.sum()


@pytond()
def q7(supplier, lineitem, orders, customer, nation):
    l = lineitem[(lineitem.l_shipdate >= '1995-01-01') & (lineitem.l_shipdate <= '1996-12-31')]
    j = supplier.merge(l, left_on='s_suppkey', right_on='l_suppkey')
    j = j.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    j = j.merge(customer, left_on='o_custkey', right_on='c_custkey')
    n1 = nation.rename(columns={'n_nationkey': 'n1_key', 'n_name': 'supp_nation',
                                'n_regionkey': 'n1_rk', 'n_comment': 'n1_cm'})
    n2 = nation.rename(columns={'n_nationkey': 'n2_key', 'n_name': 'cust_nation',
                                'n_regionkey': 'n2_rk', 'n_comment': 'n2_cm'})
    j = j.merge(n1, left_on='s_nationkey', right_on='n1_key')
    j = j.merge(n2, left_on='c_nationkey', right_on='n2_key')
    j = j[((j.supp_nation == 'FRANCE') & (j.cust_nation == 'GERMANY'))
          | ((j.supp_nation == 'GERMANY') & (j.cust_nation == 'FRANCE'))]
    j['l_year'] = j.l_shipdate.dt.year
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby(['supp_nation', 'cust_nation', 'l_year']).agg(
        revenue=('volume', 'sum')).reset_index()
    return g.sort_values(['supp_nation', 'cust_nation', 'l_year'])


@pytond()
def q8(part, supplier, lineitem, orders, customer, nation, region):
    p = part[part.p_type == 'ECONOMY ANODIZED STEEL']
    o = orders[(orders.o_orderdate >= '1995-01-01') & (orders.o_orderdate <= '1996-12-31')]
    r = region[region.r_name == 'AMERICA']
    j = p.merge(lineitem, left_on='p_partkey', right_on='l_partkey')
    j = j.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j = j.merge(o, left_on='l_orderkey', right_on='o_orderkey')
    j = j.merge(customer, left_on='o_custkey', right_on='c_custkey')
    n1 = nation.rename(columns={'n_nationkey': 'n1_key', 'n_name': 'n1_name',
                                'n_regionkey': 'n1_rk', 'n_comment': 'n1_cm'})
    n2 = nation.rename(columns={'n_nationkey': 'n2_key', 'n_name': 'supp_nation',
                                'n_regionkey': 'n2_rk', 'n_comment': 'n2_cm'})
    j = j.merge(n1, left_on='c_nationkey', right_on='n1_key')
    j = j.merge(r, left_on='n1_rk', right_on='r_regionkey')
    j = j.merge(n2, left_on='s_nationkey', right_on='n2_key')
    j['o_year'] = j.o_orderdate.dt.year
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    j['brazil_volume'] = np.where(j.supp_nation == 'BRAZIL', j.volume, 0.0)
    g = j.groupby('o_year').agg(brazil=('brazil_volume', 'sum'),
                                total=('volume', 'sum')).reset_index()
    g['mkt_share'] = g.brazil / g.total
    out = g[['o_year', 'mkt_share']]
    return out.sort_values('o_year')


@pytond()
def q9(part, supplier, lineitem, partsupp, orders, nation):
    p = part[part.p_name.str.contains('green')]
    j = p.merge(lineitem, left_on='p_partkey', right_on='l_partkey')
    j = j.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j = j.merge(partsupp, left_on=['l_suppkey', 'l_partkey'],
                right_on=['ps_suppkey', 'ps_partkey'])
    j = j.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    j = j.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    j['o_year'] = j.o_orderdate.dt.year
    j['amount'] = j.l_extendedprice * (1 - j.l_discount) - j.ps_supplycost * j.l_quantity
    g = j.groupby(['n_name', 'o_year']).agg(sum_profit=('amount', 'sum')).reset_index()
    return g.sort_values(['n_name', 'o_year'], ascending=[True, False])


@pytond()
def q10(customer, orders, lineitem, nation):
    o = orders[(orders.o_orderdate >= '1993-10-01') & (orders.o_orderdate < '1994-01-01')]
    l = lineitem[lineitem.l_returnflag == 'R']
    j = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    j = j.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j = j.merge(nation, left_on='c_nationkey', right_on='n_nationkey')
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby(['c_custkey', 'c_name', 'c_acctbal', 'c_phone', 'n_name',
                   'c_address', 'c_comment']).agg(revenue=('volume', 'sum')).reset_index()
    g = g.sort_values('revenue', ascending=False)
    return g.head(20)


@pytond()
def q11(partsupp, supplier, nation):
    n = nation[nation.n_name == 'GERMANY']
    j = partsupp.merge(supplier, left_on='ps_suppkey', right_on='s_suppkey')
    j = j.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    j['value'] = j.ps_supplycost * j.ps_availqty
    total = j.value.sum()
    threshold = total * 0.0001
    g = j.groupby('ps_partkey').agg(value=('value', 'sum')).reset_index()
    g = g[g.value > threshold]
    return g.sort_values('value', ascending=False)


@pytond()
def q12(orders, lineitem):
    l = lineitem[lineitem.l_shipmode.isin(['MAIL', 'SHIP'])]
    l = l[(l.l_commitdate < l.l_receiptdate) & (l.l_shipdate < l.l_commitdate)]
    l = l[(l.l_receiptdate >= '1994-01-01') & (l.l_receiptdate < '1995-01-01')]
    j = orders.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j['high'] = np.where((j.o_orderpriority == '1-URGENT') | (j.o_orderpriority == '2-HIGH'), 1, 0)
    j['low'] = np.where((j.o_orderpriority != '1-URGENT') & (j.o_orderpriority != '2-HIGH'), 1, 0)
    g = j.groupby('l_shipmode').agg(high_line_count=('high', 'sum'),
                                    low_line_count=('low', 'sum')).reset_index()
    return g.sort_values('l_shipmode')


@pytond()
def q13(customer, orders):
    o = orders[~orders.o_comment.str.like('%special%requests%')]
    j = customer.merge(o, left_on='c_custkey', right_on='o_custkey', how='left')
    g = j.groupby('c_custkey').agg(c_count=('o_orderkey', 'count')).reset_index()
    d = g.groupby('c_count').agg(custdist=('c_custkey', 'count')).reset_index()
    return d.sort_values(['custdist', 'c_count'], ascending=[False, False])


@pytond()
def q14(lineitem, part):
    l = lineitem[(lineitem.l_shipdate >= '1995-09-01') & (lineitem.l_shipdate < '1995-10-01')]
    j = l.merge(part, left_on='l_partkey', right_on='p_partkey')
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    j['promo'] = np.where(j.p_type.str.startswith('PROMO'), j.volume, 0.0)
    promo = j.promo.sum()
    total = j.volume.sum()
    ratio = promo / total
    return ratio * 100.0


@pytond()
def q15(lineitem, supplier):
    l = lineitem[(lineitem.l_shipdate >= '1996-01-01') & (lineitem.l_shipdate < '1996-04-01')]
    l['volume'] = l.l_extendedprice * (1 - l.l_discount)
    rev = l.groupby('l_suppkey').agg(total_revenue=('volume', 'sum')).reset_index()
    top = rev.total_revenue.max()
    best = rev[rev.total_revenue == top]
    j = supplier.merge(best, left_on='s_suppkey', right_on='l_suppkey')
    out = j[['s_suppkey', 's_name', 's_address', 's_phone', 'total_revenue']]
    return out.sort_values('s_suppkey')


@pytond()
def q16(partsupp, part, supplier):
    p = part[(part.p_brand != 'Brand#45')
             & (~part.p_type.str.startswith('MEDIUM POLISHED'))
             & (part.p_size.isin([49, 14, 23, 45, 19, 3, 36, 9]))]
    bad = supplier[supplier.s_comment.str.like('%Customer%Complaints%')]
    ps = partsupp[~partsupp.ps_suppkey.isin(bad.s_suppkey)]
    j = ps.merge(p, left_on='ps_partkey', right_on='p_partkey')
    g = j.groupby(['p_brand', 'p_type', 'p_size']).agg(
        supplier_cnt=('ps_suppkey', 'nunique')).reset_index()
    return g.sort_values(['supplier_cnt', 'p_brand', 'p_type', 'p_size'],
                         ascending=[False, True, True, True])


@pytond()
def q17(lineitem, part):
    p = part[(part.p_brand == 'Brand#23') & (part.p_container == 'MED BOX')]
    j = lineitem.merge(p, left_on='l_partkey', right_on='p_partkey')
    avgs = j.groupby('p_partkey').agg(avg_qty=('l_quantity', 'mean')).reset_index()
    j2 = j.merge(avgs, on='p_partkey')
    j2 = j2[j2.l_quantity < 0.2 * j2.avg_qty]
    total = j2.l_extendedprice.sum()
    return total / 7.0


@pytond()
def q18(customer, orders, lineitem):
    g = lineitem.groupby('l_orderkey').agg(sum_qty=('l_quantity', 'sum')).reset_index()
    big = g[g.sum_qty > 300]
    j = orders.merge(big, left_on='o_orderkey', right_on='l_orderkey')
    j = j.merge(customer, left_on='o_custkey', right_on='c_custkey')
    out = j[['c_name', 'c_custkey', 'o_orderkey', 'o_orderdate', 'o_totalprice', 'sum_qty']]
    out = out.sort_values(['o_totalprice', 'o_orderdate'], ascending=[False, True])
    return out.head(100)


@pytond()
def q19(lineitem, part):
    j = lineitem.merge(part, left_on='l_partkey', right_on='p_partkey')
    j = j[j.l_shipmode.isin(['AIR', 'REG AIR']) & (j.l_shipinstruct == 'DELIVER IN PERSON')]
    m1 = ((j.p_brand == 'Brand#12')
          & (j.p_container.isin(['SM CASE', 'SM BOX', 'SM PACK', 'SM PKG']))
          & (j.l_quantity >= 1) & (j.l_quantity <= 11)
          & (j.p_size >= 1) & (j.p_size <= 5))
    m2 = ((j.p_brand == 'Brand#23')
          & (j.p_container.isin(['MED BAG', 'MED BOX', 'MED PKG', 'MED PACK']))
          & (j.l_quantity >= 10) & (j.l_quantity <= 20)
          & (j.p_size >= 1) & (j.p_size <= 10))
    m3 = ((j.p_brand == 'Brand#34')
          & (j.p_container.isin(['LG CASE', 'LG BOX', 'LG PACK', 'LG PKG']))
          & (j.l_quantity >= 20) & (j.l_quantity <= 30)
          & (j.p_size >= 1) & (j.p_size <= 15))
    j2 = j[m1 | m2 | m3]
    rev = j2.l_extendedprice * (1 - j2.l_discount)
    return rev.sum()


@pytond()
def q20(supplier, nation, partsupp, part, lineitem):
    p = part[part.p_name.str.startswith('forest')]
    l = lineitem[(lineitem.l_shipdate >= '1994-01-01') & (lineitem.l_shipdate < '1995-01-01')]
    lg = l.groupby(['l_partkey', 'l_suppkey']).agg(sum_qty=('l_quantity', 'sum')).reset_index()
    ps = partsupp[partsupp.ps_partkey.isin(p.p_partkey)]
    j = ps.merge(lg, left_on=['ps_partkey', 'ps_suppkey'], right_on=['l_partkey', 'l_suppkey'])
    j = j[j.ps_availqty > 0.5 * j.sum_qty]
    n = nation[nation.n_name == 'CANADA']
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    s = s[s.s_suppkey.isin(j.ps_suppkey)]
    out = s[['s_name', 's_address']]
    return out.sort_values('s_name')


@pytond()
def q21(supplier, lineitem, orders, nation):
    n = nation[nation.n_name == 'SAUDI ARABIA']
    late = lineitem[lineitem.l_receiptdate > lineitem.l_commitdate]
    nsupp = lineitem.groupby('l_orderkey').agg(nsupp=('l_suppkey', 'nunique')).reset_index()
    nlate = late.groupby('l_orderkey').agg(nlate=('l_suppkey', 'nunique')).reset_index()
    j = late.merge(nsupp, on='l_orderkey')
    j = j.merge(nlate, on='l_orderkey')
    j = j[(j.nsupp > 1) & (j.nlate == 1)]
    j = j.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    j = j[j.o_orderstatus == 'F']
    j = j.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j = j.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    g = j.groupby('s_name').agg(numwait=('l_orderkey', 'count')).reset_index()
    g = g.sort_values(['numwait', 's_name'], ascending=[False, True])
    return g.head(100)


@pytond()
def q22(customer, orders):
    c = customer.copy()
    c['cntrycode'] = c.c_phone.str.slice(0, 2)
    c = c[c.cntrycode.isin(['13', '31', '23', '29', '30', '18', '17'])]
    pos = c[c.c_acctbal > 0.0]
    avg_bal = pos.c_acctbal.mean()
    c = c[c.c_acctbal > avg_bal]
    c = c[~c.c_custkey.isin(orders.o_custkey)]
    g = c.groupby('cntrycode').agg(numcust=('c_custkey', 'count'),
                                   totacctbal=('c_acctbal', 'sum')).reset_index()
    return g.sort_values('cntrycode')


QUERIES = {i: fn for i, fn in enumerate(
    [q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
     q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22], start=1)}

# Tables each query reads (parameter order).
QUERY_TABLES = {
    1: ["lineitem"],
    2: ["part", "supplier", "partsupp", "nation", "region"],
    3: ["customer", "orders", "lineitem"],
    4: ["orders", "lineitem"],
    5: ["customer", "orders", "lineitem", "supplier", "nation", "region"],
    6: ["lineitem"],
    7: ["supplier", "lineitem", "orders", "customer", "nation"],
    8: ["part", "supplier", "lineitem", "orders", "customer", "nation", "region"],
    9: ["part", "supplier", "lineitem", "partsupp", "orders", "nation"],
    10: ["customer", "orders", "lineitem", "nation"],
    11: ["partsupp", "supplier", "nation"],
    12: ["orders", "lineitem"],
    13: ["customer", "orders"],
    14: ["lineitem", "part"],
    15: ["lineitem", "supplier"],
    16: ["partsupp", "part", "supplier"],
    17: ["lineitem", "part"],
    18: ["customer", "orders", "lineitem"],
    19: ["lineitem", "part"],
    20: ["supplier", "nation", "partsupp", "part", "lineitem"],
    21: ["supplier", "lineitem", "orders", "nation"],
    22: ["customer", "orders"],
}
