"""TPC-H benchmark: generator, schema, and the 22 queries."""

from .datagen import generate
from .queries import QUERIES, QUERY_TABLES
from .schema import PRIMARY_KEYS, TABLES, register_tpch

__all__ = ["generate", "QUERIES", "QUERY_TABLES", "TABLES", "PRIMARY_KEYS", "register_tpch"]
