"""Common workload descriptor used by the benchmark harness and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Workload", "WORKLOADS", "register_workload"]


@dataclass
class Workload:
    """One benchmarkable pipeline.

    * ``fn`` — the ``@pytond``-decorated function;
    * ``tables`` — parameter order: table names the function reads;
    * ``make_data(scale, seed)`` — synthetic dataset builder returning
      ``{table: {column: array}}``;
    * ``primary_keys`` — per-table PK for catalog registration;
    * ``python_runnable`` — False when the Python baseline cannot execute
      the function directly (e.g. the sparse-layout variants).
    """

    name: str
    fn: Callable
    tables: list[str]
    make_data: Callable
    primary_keys: dict[str, str | None] = field(default_factory=dict)
    python_runnable: bool = True

    def register(self, db, dataset: dict) -> None:
        for table in self.tables:
            db.register(table, dataset[table], primary_key=self.primary_keys.get(table))


WORKLOADS: dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    WORKLOADS[workload.name] = workload
    return workload
