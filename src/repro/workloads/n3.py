"""Kaggle notebook N3 (airline delays, per PyFroid [8]) — synthetic stand-in.

A relational-algebra-heavy pipeline over airline on-time data: filter out
cancelled flights, derive speed, aggregate per carrier, join carrier names
and rank — the paper reports two orders of magnitude speedup for PyTond
here thanks to whole-pipeline fusion.
"""

from __future__ import annotations

import numpy as np

from ..core import pytond
from .registry import Workload, register_workload

__all__ = ["n3", "make_data", "WORKLOAD"]

_CARRIERS = ["AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9", "HA", "G4"]


@pytond()
def n3(flights, carriers):
    f = flights[(flights.cancelled == 0) & (flights.diverted == 0)]
    f = f[f.dep_delay > -30.0]
    f['speed'] = f.distance / (f.air_time / 60.0)
    f['delayed'] = np.where(f.arr_delay > 15.0, 1, 0)
    g = f.groupby('carrier').agg(
        num_flights=('arr_delay', 'count'),
        avg_dep_delay=('dep_delay', 'mean'),
        avg_arr_delay=('arr_delay', 'mean'),
        max_arr_delay=('arr_delay', 'max'),
        delayed_flights=('delayed', 'sum'),
        avg_speed=('speed', 'mean'),
    ).reset_index()
    g['delayed_share'] = g.delayed_flights / g.num_flights
    j = g.merge(carriers, on='carrier')
    j = j[j.num_flights > 50]
    out = j[['carrier', 'carrier_name', 'num_flights', 'avg_dep_delay',
             'avg_arr_delay', 'max_arr_delay', 'delayed_share', 'avg_speed']]
    return out.sort_values('avg_arr_delay', ascending=False)


def make_data(scale: float = 1.0, seed: int = 29) -> dict:
    """Synthetic on-time performance data; scale=1 is ~1M rows."""
    rng = np.random.default_rng(seed)
    n = max(int(1_000_000 * scale), 1000)
    distance = rng.integers(100, 3000, size=n).astype(np.float64)
    air_time = distance / rng.uniform(6.0, 9.0, size=n) * 60.0 / 60.0 + rng.uniform(20, 60, size=n)
    return {
        "flights": {
            "flight_id": np.arange(1, n + 1, dtype=np.int64),
            "carrier": np.array(_CARRIERS, dtype=object)[rng.integers(0, len(_CARRIERS), size=n)],
            "origin": np.array([f"AP{k}" for k in rng.integers(0, 300, size=n)], dtype=object),
            "dep_delay": np.round(rng.normal(8.0, 25.0, size=n), 1),
            "arr_delay": np.round(rng.normal(5.0, 30.0, size=n), 1),
            "distance": distance,
            "air_time": np.round(air_time, 1),
            "cancelled": (rng.random(n) < 0.02).astype(np.int64),
            "diverted": (rng.random(n) < 0.01).astype(np.int64),
        },
        "carriers": {
            "carrier": np.array(_CARRIERS, dtype=object),
            "carrier_name": np.array([f"{c} Airlines Inc." for c in _CARRIERS], dtype=object),
        },
    }


WORKLOAD = register_workload(Workload(
    name="n3",
    fn=n3,
    tables=["flights", "carriers"],
    make_data=make_data,
    primary_keys={"flights": "flight_id", "carriers": "carrier"},
))
