"""Covariance micro-benchmark (Figure 9): NumPy vs PyTond dense vs sparse.

Generates matrices with controlled (rows, cols, density) and exposes the
three computation paths the figure compares:

* pure NumPy ``einsum('ij,ik->jk')`` on the dense ndarray;
* PyTond dense layout (``(ID, c0..cn)`` relation);
* PyTond sparse COO layout (``(row, col, val)`` relation).
"""

from __future__ import annotations

import numpy as np

from ..core import pytond

__all__ = [
    "covariance_dense", "covariance_sparse", "make_matrix",
    "dense_table", "sparse_table", "numpy_covariance",
]


@pytond()
def covariance_dense(matrix):
    a = matrix.to_numpy()
    return np.einsum('ij,ik->jk', a, a)


@pytond(layout="sparse")
def covariance_sparse(matrix_coo):
    return np.einsum('ij,ik->jk', matrix_coo, matrix_coo)


def make_matrix(rows: int, cols: int, density: float, seed: int = 37) -> np.ndarray:
    """A rows x cols matrix where *density* of the entries are non-zero."""
    rng = np.random.default_rng(seed)
    m = rng.normal(0.0, 1.0, size=(rows, cols))
    if density < 1.0:
        mask = rng.random((rows, cols)) < density
        m = np.where(mask, m, 0.0)
    return m


def numpy_covariance(m: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ik->jk", m, m)


def dense_table(m: np.ndarray) -> dict[str, np.ndarray]:
    """Dense relational layout: (ID, c0..c{n-1})."""
    out: dict[str, np.ndarray] = {"ID": np.arange(1, len(m) + 1, dtype=np.int64)}
    for j in range(m.shape[1]):
        out[f"c{j}"] = m[:, j].copy()
    return out


def sparse_table(m: np.ndarray) -> dict[str, np.ndarray]:
    """COO layout: (row, col, val) for non-zero entries (Section II-B)."""
    rows, cols = np.nonzero(m)
    return {
        "row": rows.astype(np.int64),
        "col": cols.astype(np.int64),
        "val": m[rows, cols],
    }
