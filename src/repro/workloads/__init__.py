"""Benchmark workloads: TPC-H plus the paper's seven data-science pipelines."""

from . import birth_analysis, crime_index, hybrid, n3, n9  # noqa: F401 (registry side effects)
from .registry import WORKLOADS, Workload

__all__ = ["WORKLOADS", "Workload"]
