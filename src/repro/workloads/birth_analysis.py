"""Birth Analysis workload — pivot_table + conditional (fancy-index-style)
classification over a names-by-year dataset (Section V-A of the paper)."""

from __future__ import annotations

import numpy as np

from ..core import pytond
from .registry import Workload, register_workload

__all__ = ["birth_analysis", "make_data", "WORKLOAD"]

_NAMES = [
    "Leslie", "Leslee", "Lesley", "Lesli", "Mary", "John", "Linda", "James",
    "Patricia", "Robert", "Jennifer", "Michael", "Barbara", "William",
    "Elizabeth", "David", "Susan", "Richard", "Jessica", "Joseph", "Sarah",
    "Thomas", "Karen", "Charles",
]


@pytond(pivot_values={"sex": ["F", "M"]})
def birth_analysis(names):
    lesl = names[names.name.str.startswith('Lesl')]
    table = lesl.pivot_table(index='year', columns='sex', values='births', aggfunc='sum')
    t = table.reset_index()
    t['total'] = t.F + t.M
    t['ratio'] = t.F / (t.F + t.M)
    t['lean'] = np.where(t.ratio > 0.5, 1, 0)
    out = t[['year', 'total', 'ratio', 'lean']]
    return out.sort_values('year')


def make_data(scale: float = 1.0, seed: int = 17) -> dict:
    """Names-by-year rows; scale=1 is ~500k rows."""
    rng = np.random.default_rng(seed)
    n = max(int(500_000 * scale), 500)
    years = rng.integers(1880, 2011, size=n)
    name_idx = rng.integers(0, len(_NAMES), size=n)
    names = np.array(_NAMES, dtype=object)[name_idx]
    sexes = np.where(rng.random(n) < 0.5, "F", "M").astype(object)
    births = rng.integers(5, 5000, size=n)
    return {
        "names": {
            "year": years.astype(np.int64),
            "name": names,
            "sex": sexes,
            "births": births.astype(np.int64),
        }
    }


WORKLOAD = register_workload(Workload(
    name="birth_analysis",
    fn=birth_analysis,
    tables=["names"],
    make_data=make_data,
))
