"""Kaggle notebook N9 (e-commerce analysis, per PyFroid [8]) — synthetic
stand-in: per-category revenue analysis over an order-items fact table."""

from __future__ import annotations

import numpy as np

from ..core import pytond
from .registry import Workload, register_workload

__all__ = ["n9", "make_data", "WORKLOAD"]

_CATEGORIES = [
    "electronics", "furniture", "clothing", "books", "toys", "garden",
    "sports", "beauty", "grocery", "automotive",
]


@pytond()
def n9(order_items, products):
    o = order_items[order_items.status == 'delivered']
    o['revenue'] = o.price * o.quantity
    o['freight_share'] = o.freight / (o.price * o.quantity)
    j = o.merge(products, on='product_id')
    g = j.groupby('category').agg(
        orders=('order_id', 'nunique'),
        items=('quantity', 'sum'),
        revenue=('revenue', 'sum'),
        avg_price=('price', 'mean'),
        avg_freight_share=('freight_share', 'mean'),
    ).reset_index()
    total = g.revenue.sum()
    g['revenue_share'] = g.revenue / total
    g = g[g.items > 10]
    return g.sort_values('revenue', ascending=False)


def make_data(scale: float = 1.0, seed: int = 31) -> dict:
    """Synthetic order items; scale=1 is ~500k rows over 20k products."""
    rng = np.random.default_rng(seed)
    n = max(int(500_000 * scale), 1000)
    n_products = max(int(20_000 * scale), 50)
    product_ids = np.arange(1, n_products + 1, dtype=np.int64)
    return {
        "order_items": {
            "item_id": np.arange(1, n + 1, dtype=np.int64),
            "order_id": rng.integers(1, max(n // 3, 2), size=n).astype(np.int64),
            "product_id": rng.integers(1, n_products + 1, size=n).astype(np.int64),
            "price": np.round(rng.lognormal(3.0, 1.0, size=n), 2),
            "freight": np.round(rng.uniform(1.0, 40.0, size=n), 2),
            "quantity": rng.integers(1, 5, size=n).astype(np.int64),
            "status": np.where(rng.random(n) < 0.95, "delivered", "cancelled").astype(object),
        },
        "products": {
            "product_id": product_ids,
            "category": np.array(_CATEGORIES, dtype=object)[
                rng.integers(0, len(_CATEGORIES), size=n_products)
            ],
            "weight_g": rng.integers(50, 30_000, size=n_products).astype(np.int64),
        },
    }


WORKLOAD = register_workload(Workload(
    name="n9",
    fn=n9,
    tables=["order_items", "products"],
    make_data=make_data,
    primary_keys={"order_items": "item_id", "products": "product_id"},
))
