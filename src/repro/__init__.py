"""repro: reproduction of "PyTond: Efficient Python Data Science on the
Shoulders of Databases" (ICDE 2024).

Public API::

    from repro import pytond, connect, DataFrame

    db = connect()
    db.register("sales", {...}, primary_key="id")

    @pytond(db=db)
    def top_products(sales):
        big = sales[sales.amount > 100]
        return big.groupby("product").agg({"amount": "sum"}).reset_index()

    top_products.sql("duckdb")     # generated SQL
    top_products.run(db, "hyper")  # in-database execution
"""

from .backends import DuckDBSim, HyperSim, LingoDBSim, available_backends, get_backend
from .core import PytondFunction, TableInfo, pytond
from .dataframe import DataFrame, Series
from .server import QueryScheduler, Session
from .sqlengine import Database, EngineConfig, PreparedStatement, connect
from .storage import ColumnStore, create_store, open_store, register_materializer

__version__ = "0.1.0"

__all__ = [
    "pytond", "PytondFunction", "TableInfo",
    "connect", "Database", "EngineConfig", "PreparedStatement",
    "QueryScheduler", "Session",
    "DataFrame", "Series",
    "DuckDBSim", "HyperSim", "LingoDBSim", "get_backend", "available_backends",
    "ColumnStore", "create_store", "open_store", "register_materializer",
    "__version__",
]
