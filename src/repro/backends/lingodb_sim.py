"""LingoDB-profile backend: compiled execution, research-prototype limits.

Mirrors the paper's stated restrictions (Section V): no SQL window
functions (so UID generation — and therefore the Grizzly-simulated
baseline — cannot run on it) and a join-processing limitation that rejects
the plan generated for TPC-H Q12.
"""

from __future__ import annotations

from ..sqlengine.executor import EngineConfig
from .base import Backend, Dialect, register_backend

__all__ = ["LingoDBSim"]

LingoDBSim = register_backend(
    Backend(
        name="lingodb",
        engine_config=EngineConfig(
            name="lingodb",
            mode="compiled",
            threads=1,
            join_reorder=True,
            supports_window=False,
            parallel_join=True,
            parallel_agg=True,
            plan_cache=True,
        ),
        dialect=Dialect(
            name="lingodb",
            year_function="EXTRACT(YEAR FROM {arg})",
            substring_function="SUBSTR({arg}, {start}, {length})",
            strftime_function="STRFTIME({arg}, {fmt})",
            supports_window=False,
        ),
        rejects=frozenset({"tpch_q12"}),
        kind="simulated-profile",
        description="LingoDB research prototype simulated on the native engine",
    )
)
