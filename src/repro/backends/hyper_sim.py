"""Hyper-profile backend: compiled (fused whole-column) execution.

Represents the "compiled query engine" class in the paper's experiments:
lower per-tuple interpretation overhead and a stronger planner
(cardinality-based join re-ordering on top of pushdown/pruning).
"""

from __future__ import annotations

from ..sqlengine.executor import EngineConfig
from .base import Backend, Dialect, register_backend

__all__ = ["HyperSim"]

HyperSim = register_backend(
    Backend(
        name="hyper",
        engine_config=EngineConfig(
            name="hyper",
            mode="compiled",
            threads=1,
            join_reorder=True,
            supports_window=True,
            parallel_join=True,
            parallel_agg=True,
            plan_cache=True,
        ),
        dialect=Dialect(
            name="hyper",
            year_function="EXTRACT(YEAR FROM {arg})",
            substring_function="SUBSTRING({arg}, {start}, {length})",
            strftime_function="TO_CHAR({arg}, {fmt})",
            supports_window=True,
        ),
        kind="simulated-profile",
        description="Hyper execution paradigm simulated on the native engine",
    )
)
