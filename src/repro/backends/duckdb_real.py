"""Optional real-DuckDB oracle backend (``duckdb_real``).

Unlike the ``duckdb`` *simulated profile* (our engine mimicking DuckDB's
execution paradigm for the paper's figures), this backend executes on the
actual ``duckdb`` Python package when it is installed: tables are mirrored
from the source catalog into an in-memory DuckDB database (cached per
catalog version) and queries run there.  It registers itself only when the
module is importable — capability gating via ``supports``/``introspect``
keeps the default test legs green without the optional dependency, while
the CI optional-deps leg runs the cross-backend differential suite and the
fuzz corpus against it (``tools/fuzz.py --backend duckdb_real``).
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING
import decimal
import importlib.util

import numpy as np

from ..errors import BackendError
from .base import BackendInfo, CompiledQuery, Dialect, ResultTable, register_backend
from .rows import to_python_cell
from .sqlite import _OracleMirrorCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Iterable

    from ..sqlengine.database import Database

__all__ = ["DuckDBBackend", "duckdb_available"]


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` package is importable."""
    return importlib.util.find_spec("duckdb") is not None


def _duckdb_type(dtype: np.dtype) -> str:
    kind = dtype.kind
    if kind in ("i", "u", "b"):
        return "BIGINT"
    if kind == "f":
        return "DOUBLE"
    if kind == "M":
        return "DATE"
    return "VARCHAR"


def _load_duckdb(db: "Database") -> object:
    import duckdb

    conn = duckdb.connect(":memory:")
    for name in db.tables():
        table = db.catalog.get(name)
        decls = ", ".join(
            f'"{col}" {_duckdb_type(arr.dtype)}'
            for col, arr in zip(table.columns, table.arrays)
        )
        conn.execute(f'CREATE TABLE "{name}" ({decls})')
        placeholders = ", ".join("?" for _ in table.columns)
        rows = list(zip(*[[to_python_cell(v) for v in arr.tolist()]
                          if arr.dtype.kind != "M"
                          else [to_python_cell(v) for v in arr]
                          for arr in table.arrays]))
        if rows:
            conn.executemany(f'INSERT INTO "{name}" VALUES ({placeholders})',
                             rows)
    return conn


def _plain_cell(value: object) -> object:
    """DuckDB result cell -> the comparison vocabulary every backend uses
    (ISO date strings, floats instead of Decimals)."""
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.strftime("%Y-%m-%d")
    if isinstance(value, decimal.Decimal):
        return float(value)
    return value


class DuckDBBackend:
    """``ExecutionBackend`` over the real ``duckdb`` package."""

    name = "duckdb_real"
    kind = "oracle"
    # Real DuckDB shares the engine-standard spellings (STRFTIME(arg, fmt),
    # DATE literals, SUBSTR), so compile is a pass-through.
    dialect = Dialect(name="duckdb")
    capabilities = frozenset({
        "select", "join", "aggregate", "setops", "subqueries", "window",
        "params", "oracle", "parallel",
    })

    def __init__(self):
        self._cache = _OracleMirrorCache(_load_duckdb)

    def supports(self, caps: "Iterable[str]") -> bool:
        return duckdb_available() and set(caps) <= self.capabilities

    def compile(self, sql: str, dialect: str = "standard") -> CompiledQuery:
        return CompiledQuery(backend=self.name, sql=sql)

    def execute(self, db: "Database", artifact: CompiledQuery,
                params: object = None) -> ResultTable:
        if not duckdb_available():
            raise BackendError(
                "backend 'duckdb_real' requires the optional duckdb package"
            )
        import duckdb

        conn = self._cache.get(db)
        bind = [to_python_cell(v) for v in params] if params else []
        try:
            cursor = conn.execute(artifact.sql, bind)
        except duckdb.Error as exc:
            raise BackendError(f"duckdb: {exc}\nsql: {artifact.sql}") from exc
        columns = [d[0] for d in cursor.description or []]
        rows = [tuple(_plain_cell(c) for c in row) for row in cursor.fetchall()]
        return ResultTable(columns=columns, rows=rows)

    def introspect(self) -> BackendInfo:
        version = "not installed"
        if duckdb_available():
            import duckdb

            version = duckdb.__version__
        return BackendInfo(
            name=self.name, kind=self.kind, version=version,
            available=duckdb_available(),
            capabilities=tuple(sorted(self.capabilities)),
            description="real DuckDB engine (optional dependency)",
        )


if duckdb_available():  # capability-gated registration
    DuckDBReal = register_backend(DuckDBBackend())
