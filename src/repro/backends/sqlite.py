"""The sqlite3 oracle backend: a genuinely independent execution engine.

Promoted from ``bench/differential.py`` into a first-class registered
backend: ``compile`` rewrites engine-standard SQL into sqlite's dialect
(templates in :data:`SQLITE_DIALECT` — the single source of truth for
sqlite's ``STRFTIME(fmt, arg)`` argument order and bare date literals),
``execute`` mirrors the source :class:`~repro.sqlengine.Database` into an
in-memory sqlite3 database (cached per catalog version, so fuzz-scale
differential sweeps load the data once) and returns plain rows.

Because the stdlib ships sqlite3, this backend is always available — it is
the baseline oracle for the differential harness and the fuzzer.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING
import threading
import weakref

import numpy as np

from ..errors import BackendError
from .base import (
    BackendInfo, CompiledQuery, Dialect, ResultTable, register_backend,
    rewrite_sql,
)
from .rows import to_python_cell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable, Iterable

    from ..sqlengine.database import Database

__all__ = ["SQLITE_DIALECT", "SqliteBackend", "load_sqlite", "to_sqlite_sql"]


# sqlite3's spelling of the portable function vocabulary.  The differential
# harness derives every rewrite from these templates; there is no second
# copy of the argument-order rules anywhere.
SQLITE_DIALECT = Dialect(
    name="sqlite",
    year_function="CAST(STRFTIME('%Y', {arg}) AS INTEGER)",
    substring_function="SUBSTR({arg}, {start}, {length})",
    strftime_function="STRFTIME({fmt}, {arg})",  # format FIRST in sqlite
    date_literal="{lit}",                        # bare ISO strings compare fine
    supports_window=True,
)


def to_sqlite_sql(sql: str) -> str:
    """Rewrite engine-standard SQL into sqlite's dialect (template-driven)."""
    return rewrite_sql(sql, SQLITE_DIALECT)


def _sqlite_type(dtype: np.dtype) -> str:
    kind = dtype.kind
    if kind in ("i", "u", "b"):
        return "INTEGER"
    if kind == "f":
        return "REAL"
    return "TEXT"  # strings and dates (ISO text compares/sorts correctly)


def load_sqlite(db: "Database") -> sqlite3.Connection:
    """Mirror every table of *db* into a fresh in-memory sqlite database."""
    conn = sqlite3.connect(":memory:", check_same_thread=False)
    for name in db.tables():
        table = db.catalog.get(name)
        decls = ", ".join(
            f'"{col}" {_sqlite_type(arr.dtype)}'
            for col, arr in zip(table.columns, table.arrays)
        )
        conn.execute(f'CREATE TABLE "{name}" ({decls})')
        placeholders = ", ".join("?" for _ in table.columns)
        rows = zip(*[[to_python_cell(v) for v in arr.tolist()]
                     if arr.dtype.kind != "M"
                     else [to_python_cell(v) for v in arr]
                     for arr in table.arrays])
        conn.executemany(f'INSERT INTO "{name}" VALUES ({placeholders})', rows)
    conn.commit()
    return conn


class _OracleMirrorCache:
    """Per-Database mirrored connections, invalidated on catalog changes.

    Keyed weakly on the Database so dropping a database releases its
    mirror; a catalog version bump (DDL) rebuilds it on next use.
    """

    def __init__(self, loader: "Callable[[Database], object]"):
        self._loader = loader
        self._mirrors = weakref.WeakKeyDictionary()
        self._lock = threading.Lock()

    def get(self, db: "Database") -> object:
        version = db.catalog.version
        with self._lock:
            cached = self._mirrors.get(db)
            if cached is not None and cached[0] == version:
                return cached[1]
        conn = self._loader(db)
        with self._lock:
            self._mirrors[db] = (version, conn)
        return conn


class SqliteBackend:
    """``ExecutionBackend`` over the stdlib ``sqlite3`` module."""

    name = "sqlite"
    kind = "oracle"
    dialect = SQLITE_DIALECT
    capabilities = frozenset({
        "select", "join", "aggregate", "setops", "subqueries", "window",
        "params", "oracle", "explain",
    })

    def __init__(self):
        self._cache = _OracleMirrorCache(load_sqlite)

    def supports(self, caps: "Iterable[str]") -> bool:
        return set(caps) <= self.capabilities

    def compile(self, sql: str, dialect: str = "standard") -> CompiledQuery:
        if dialect != self.dialect.name:
            sql = rewrite_sql(sql, self.dialect)
        return CompiledQuery(backend=self.name, sql=sql)

    def _bind_values(self, params: object) -> object:
        if params is None:
            return []
        if isinstance(params, dict):
            return {k: to_python_cell(v) for k, v in params.items()}
        return [to_python_cell(v) for v in params]

    def execute(self, db: "Database", artifact: CompiledQuery,
                params: object = None) -> ResultTable:
        conn = self._cache.get(db)
        try:
            cursor = conn.execute(artifact.sql, self._bind_values(params))
        except sqlite3.Error as exc:
            raise BackendError(f"sqlite: {exc}\nsql: {artifact.sql}") from exc
        columns = [d[0] for d in cursor.description or []]
        return ResultTable(columns=columns, rows=cursor.fetchall())

    def explain(self, db: "Database", artifact: CompiledQuery) -> str:
        conn = self._cache.get(db)
        rows = conn.execute("EXPLAIN QUERY PLAN " + artifact.sql).fetchall()
        return "\n".join(str(row[-1]) for row in rows)

    def introspect(self) -> BackendInfo:
        return BackendInfo(
            name=self.name, kind=self.kind, version=sqlite3.sqlite_version,
            available=True, capabilities=tuple(sorted(self.capabilities)),
            description="stdlib sqlite3 oracle (independent engine)",
        )


SqliteOracle = register_backend(SqliteBackend())
