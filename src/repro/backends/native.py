"""The default backend: the in-process NumPy engine, plain profile.

``native`` is the engine as itself — compiled mode, join re-ordering,
morsel-parallel operators, plan caching — with the standard SQL dialect.
The simulated paper profiles (``duckdb``/``hyper``/``lingodb``) restrict or
re-shape this engine to mimic other systems; ``native`` is what you want
when you just want the fastest local execution.
"""

from __future__ import annotations

from ..sqlengine.executor import EngineConfig
from .base import Backend, Dialect, register_backend

__all__ = ["NativeBackend"]

NativeBackend = register_backend(
    Backend(
        name="native",
        engine_config=EngineConfig(name="native"),
        dialect=Dialect(),
        kind="native",
        description="in-process NumPy engine (default execution backend)",
    )
)
