"""Pluggable execution backends behind the :class:`~.base.ExecutionBackend`
Protocol (``supports``/``compile``/``execute``/``introspect``).

Registered unconditionally:

* ``native`` — the in-process NumPy engine, plain profile;
* ``duckdb``/``hyper``/``lingodb`` — *simulated* system profiles over the
  native engine (PyTond's "Backend Adaptation", Section III-E), used by
  the paper-figure harness;
* ``sqlite`` — the stdlib sqlite3 engine as an independent oracle.

Registered when the optional dependency is importable:

* ``duckdb_real`` — the actual DuckDB engine.

See ``docs/ARCHITECTURE.md`` ("Backends") for the Protocol, capability
gating, and how to add a backend.
"""

from ..errors import BackendError
from .base import (
    Backend,
    BackendInfo,
    CompiledQuery,
    Dialect,
    ExecutionBackend,
    ResultTable,
    available_backends,
    backend_infos,
    get_backend,
    register_backend,
    rewrite_sql,
)
from .duckdb_real import DuckDBBackend, duckdb_available
from .duckdb_sim import DuckDBSim
from .hyper_sim import HyperSim
from .lingodb_sim import LingoDBSim
from .native import NativeBackend
from .sqlite import SQLITE_DIALECT, SqliteBackend, load_sqlite, to_sqlite_sql

__all__ = [
    "Backend",
    "BackendError",
    "BackendInfo",
    "CompiledQuery",
    "Dialect",
    "ExecutionBackend",
    "ResultTable",
    "NativeBackend",
    "SqliteBackend",
    "DuckDBBackend",
    "DuckDBSim",
    "HyperSim",
    "LingoDBSim",
    "SQLITE_DIALECT",
    "available_backends",
    "backend_infos",
    "duckdb_available",
    "get_backend",
    "register_backend",
    "rewrite_sql",
    "load_sqlite",
    "to_sqlite_sql",
]
