"""Simulated database backends (DuckDB / Hyper / LingoDB substitutes).

Each backend pairs an :class:`~repro.sqlengine.EngineConfig` (execution
profile) with a SQL dialect descriptor used by PyTond's code generator
(Section III-E "Backend Adaptation").
"""

from .base import Backend, get_backend, available_backends
from .duckdb_sim import DuckDBSim
from .hyper_sim import HyperSim
from .lingodb_sim import LingoDBSim

__all__ = [
    "Backend",
    "DuckDBSim",
    "HyperSim",
    "LingoDBSim",
    "get_backend",
    "available_backends",
]
