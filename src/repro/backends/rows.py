"""Row normalization shared by every execution backend.

Backends return results as plain Python row tuples (:class:`~.base.
ResultTable`); cross-backend comparison needs those rows in a canonical
form — NaN/NaT folded to SQL NULL, numpy scalars unwrapped, bools widened
to ints, rows sorted under a total order that tolerates float noise.  This
module is the single home of that logic (``bench.differential`` re-exports
it for its callers), so the differential harness, the fuzzer, and the
backend registry all agree on what "the same result" means.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Iterable

    from ..sqlengine.table import Chunk

__all__ = ["to_python_cell", "norm_cell", "normalize_rows", "rows_equal",
           "chunk_rows"]


def to_python_cell(value: object) -> object:
    """Convert a numpy cell into a plain Python value a DB-API driver can
    bind: NaN/NaT become None (our engine treats both as SQL NULL), dates
    become ISO day strings, numpy scalars unwrap to their Python types."""
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            return None
        return str(np.datetime64(value, "D"))
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def norm_cell(value: object) -> object:
    """Canonical comparison form of one cell (see module docstring)."""
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        return None if np.isnat(value) else str(np.datetime64(value, "D"))
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        if math.isnan(value):
            return None
        return value
    if isinstance(value, bool):
        return int(value)
    return value


def _sort_key(row: tuple) -> tuple:
    key = []
    for cell in row:
        if cell is None:
            key.append((0, ""))
        elif isinstance(cell, float):
            # Coarse rounding so float-association noise can't reorder rows.
            key.append((1, f"{cell:.3f}"))
        elif isinstance(cell, (int,)):
            key.append((1, f"{float(cell):.3f}"))
        else:
            key.append((2, str(cell)))
    return tuple(key)


def normalize_rows(rows: "Iterable[tuple]") -> list[tuple]:
    return sorted((tuple(norm_cell(c) for c in row) for row in rows),
                  key=_sort_key)


def _cells_equal(a: object, b: object, rel_tol: float, abs_tol: float) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)
    return a == b


def rows_equal(ours: list[tuple], theirs: list[tuple],
               rel_tol: float = 1e-6, abs_tol: float = 1e-6) -> tuple[bool, str]:
    if len(ours) != len(theirs):
        return False, f"row count {len(ours)} != {len(theirs)}"
    for i, (ra, rb) in enumerate(zip(ours, theirs)):
        if len(ra) != len(rb):
            return False, f"row {i}: arity {len(ra)} != {len(rb)}"
        for j, (a, b) in enumerate(zip(ra, rb)):
            if not _cells_equal(a, b, rel_tol, abs_tol):
                return False, f"row {i} col {j}: {a!r} != {b!r}"
    return True, ""


def chunk_rows(chunk: "Chunk") -> list[tuple]:
    """Raw row tuples of an engine :class:`~repro.sqlengine.table.Chunk`.

    ``tolist()`` would degrade datetime64 columns to integers, so date
    columns are iterated as numpy scalars (``normalize_rows`` / callers
    handle the NaT -> None folding).
    """
    if not chunk.ncols:
        return []
    return list(zip(*[arr.tolist() if arr.dtype.kind != "M" else list(arr)
                      for arr in chunk.arrays]))
