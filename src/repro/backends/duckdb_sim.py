"""DuckDB-profile backend: vectorized (morsel-at-a-time) interpreter.

Matches the execution paradigm the paper attributes to DuckDB: a
column-store, batch-vectorized interpreted engine with intra-query
parallelism and a planner that performs filter pushdown and projection
pruning but keeps the syntactic join order (the weaker planning is why the
TondIR-level optimizations help DuckDB more than Hyper — Section V-B).
"""

from __future__ import annotations

from ..sqlengine.executor import EngineConfig
from .base import Backend, Dialect, register_backend

__all__ = ["DuckDBSim"]

DuckDBSim = register_backend(
    Backend(
        name="duckdb",
        engine_config=EngineConfig(
            name="duckdb",
            mode="vectorized",
            threads=1,
            join_reorder=False,
            supports_window=True,
            morsel_size=2048,
            parallel_join=True,
            parallel_agg=True,
            plan_cache=True,
        ),
        dialect=Dialect(
            name="duckdb",
            year_function="EXTRACT(YEAR FROM {arg})",
            substring_function="SUBSTR({arg}, {start}, {length})",
            strftime_function="STRFTIME({arg}, {fmt})",
            supports_window=True,
        ),
        kind="simulated-profile",
        description="DuckDB execution paradigm simulated on the native engine",
    )
)
