"""Backend abstraction: engine profile + SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sqlengine.executor import EngineConfig

__all__ = ["Dialect", "Backend", "get_backend", "available_backends"]


@dataclass(frozen=True)
class Dialect:
    """Surface-syntax knobs consumed by the SQL code generator."""

    name: str = "standard"
    # How to spell "extract the year of a date column".
    year_function: str = "EXTRACT(YEAR FROM {arg})"
    # How to spell substring extraction (1-based start, length).
    substring_function: str = "SUBSTR({arg}, {start}, {length})"
    # strftime-style date formatting.
    strftime_function: str = "STRFTIME({arg}, {fmt})"
    # Whether the dialect supports the ROW_NUMBER window function.
    supports_window: bool = True


@dataclass(frozen=True)
class Backend:
    """A named backend: engine execution profile + dialect."""

    name: str
    engine_config: EngineConfig
    dialect: Dialect
    # Feature restrictions mirroring the paper's exclusions.
    rejects: frozenset = frozenset()

    def config(self, threads: int = 1) -> EngineConfig:
        return replace(self.engine_config, threads=threads)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; available: {sorted(_REGISTRY)}") from None


def available_backends() -> list[str]:
    return sorted(_REGISTRY)
