"""Execution-backend abstraction: Protocol, registry, dialects, artifacts.

A backend is anything that can take SQL and produce rows:

* **native profiles** (:class:`Backend`) run on the in-process NumPy engine
  under a particular :class:`~repro.sqlengine.EngineConfig` + SQL dialect —
  ``native`` is the plain engine, while ``duckdb``/``hyper``/``lingodb``
  are the *simulated* system profiles used for the paper's figures;
* **oracle backends** (``sqlite``, optional ``duckdb_real``) are genuinely
  independent engines used for cross-backend differential testing and
  honest comparisons.

Every registered backend implements the :class:`ExecutionBackend` Protocol
(the shape of Kontra's ``ValidationBackend``):

* ``supports(caps) -> bool`` — capability gating ("window", "oracle", ...);
* ``compile(sql) -> CompiledQuery`` — dialect adaptation / preparation;
* ``execute(db, artifact, params) -> ResultTable`` — run against the data
  registered in a :class:`~repro.sqlengine.Database` catalog;
* ``introspect() -> BackendInfo`` — observability (version, availability).

The registry (:func:`register_backend` / :func:`get_backend` /
:func:`available_backends`) is how the decorator, the bench harness, and
the fuzzer select backends; lookups of unknown names raise a typed
:class:`~repro.errors.BackendError` naming the available backends.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..errors import BackendError
from ..sqlengine.executor import EngineConfig
from .rows import chunk_rows, normalize_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable, Iterable

    from ..dataframe import DataFrame

__all__ = [
    "Dialect", "BackendInfo", "CompiledQuery", "ResultTable",
    "ExecutionBackend", "Backend", "register_backend", "get_backend",
    "available_backends", "backend_infos", "rewrite_sql",
]


@dataclass(frozen=True)
class Dialect:
    """Surface-syntax templates consumed by the SQL code generator and by
    :func:`rewrite_sql`.

    These templates are the *single source of truth* for how each backend
    spells the portable function vocabulary — the differential harness
    derives its dialect rewriting from them instead of keeping a duplicate
    set of hand-written rules that could drift (sqlite's ``STRFTIME(fmt,
    arg)`` argument order lives only in :data:`~.sqlite.SQLITE_DIALECT`).
    """

    name: str = "standard"
    # How to spell "extract the year of a date column".
    year_function: str = "EXTRACT(YEAR FROM {arg})"
    # How to spell substring extraction (1-based start, length).
    substring_function: str = "SUBSTR({arg}, {start}, {length})"
    # strftime-style date formatting.
    strftime_function: str = "STRFTIME({arg}, {fmt})"
    # How to spell a date literal ({lit} is the quoted ISO string).
    date_literal: str = "DATE {lit}"
    # Whether the dialect supports the ROW_NUMBER window function.
    supports_window: bool = True


# ---------------------------------------------------------------------------
# Dialect rewriting (engine-standard SQL -> a target dialect)
# ---------------------------------------------------------------------------

def _split_call(sql: str, start: int) -> tuple[list[str], int]:
    """Split the argument list of a call whose ``(`` is at ``start - 1``:
    returns (top-level comma-separated args, index just past the ``)``)."""
    depth = 1
    args: list[str] = []
    piece_start = start
    j = start
    while j < len(sql) and depth:
        ch = sql[j]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append(sql[piece_start:j].strip())
        elif ch == "," and depth == 1:
            args.append(sql[piece_start:j].strip())
            piece_start = j + 1
        j += 1
    return args, j


def _rewrite_calls(sql: str, pattern: re.Pattern,
                   render: "Callable[[list[str]], str | None]") -> str:
    """Replace every call matched by *pattern* (which must end at the
    opening paren) with ``render(args)``; ``render`` returning None keeps
    the original text.  Replacements are never re-scanned, so a target
    template may legitimately spell the same function with different
    argument order."""
    out = []
    i = 0
    while True:
        m = pattern.search(sql, i)
        if m is None:
            out.append(sql[i:])
            break
        args, end = _split_call(sql, m.end())
        rendered = render(args)
        out.append(sql[i:m.start()])
        out.append(sql[m.start():end] if rendered is None else rendered)
        i = end
    return "".join(out)


_DATE_LITERAL = re.compile(r"\bDATE\s+('(?:[^'])*')")
_STRFTIME_CALL = re.compile(r"\b(?:STRFTIME|TO_CHAR)\s*\(", re.IGNORECASE)
_SUBSTRING_CALL = re.compile(r"\bSUBSTR(?:ING)?\s*\(", re.IGNORECASE)
_EXTRACT_YEAR = re.compile(r"\bEXTRACT\s*\(\s*YEAR\s+FROM\s+", re.IGNORECASE)


def rewrite_sql(sql: str, target: Dialect) -> str:
    """Rewrite engine-standard SQL into *target*'s dialect.

    The input must use the engine's generation conventions — ``DATE 'x'``
    literals and ``{arg}``-first argument order for ``STRFTIME``/``TO_CHAR``
    (every native dialect generates that shape).  Each construct is
    re-rendered through the target dialect's template, so argument-order
    differences (e.g. sqlite's format-first ``STRFTIME``) are expressed
    exactly once, in the :class:`Dialect`.
    """
    out = _DATE_LITERAL.sub(lambda m: target.date_literal.format(lit=m.group(1)),
                            sql)
    # Date-format calls BEFORE EXTRACT(YEAR...): a year template may expand
    # to an already-target-ordered STRFTIME call, which must not be
    # re-rewritten (replacements are skipped within a pass, not across).
    out = _rewrite_calls(
        out, _STRFTIME_CALL,
        lambda args: target.strftime_function.format(arg=args[0], fmt=args[1])
        if len(args) == 2 else None,
    )
    out = _rewrite_calls(
        out, _EXTRACT_YEAR,
        # EXTRACT(YEAR FROM x) splits as a single pseudo-argument.
        lambda args: target.year_function.format(arg=args[0])
        if len(args) == 1 else None,
    )
    out = _rewrite_calls(
        out, _SUBSTRING_CALL,
        lambda args: target.substring_function.format(
            arg=args[0], start=args[1], length=args[2])
        if len(args) == 3 else None,
    )
    return out


# ---------------------------------------------------------------------------
# Artifacts and results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledQuery:
    """A backend-specific compile artifact: the SQL text the backend will
    actually execute (already in its dialect), plus the owning backend's
    name for error reporting."""

    backend: str
    sql: str


@dataclass(frozen=True)
class BackendInfo:
    """Introspection snapshot of one registered backend."""

    name: str
    kind: str                    # "native" | "simulated-profile" | "oracle"
    version: str
    available: bool
    capabilities: tuple[str, ...]
    description: str = ""


_ISO_DATE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


@dataclass
class ResultTable:
    """Backend-independent query result: named columns over row tuples."""

    columns: list[str]
    rows: list[tuple]

    @property
    def nrows(self) -> int:
        return len(self.rows)

    def normalized(self) -> list[tuple]:
        """Rows in the canonical cross-backend comparison form."""
        return normalize_rows(self.rows)

    def to_dataframe(self) -> "DataFrame":
        """Materialize as a :class:`~repro.dataframe.DataFrame`, recovering
        int64/float64/datetime64 dtypes where the column values allow."""
        from ..dataframe import DataFrame

        data = {}
        for idx, col in enumerate(self.columns):
            values = [row[idx] for row in self.rows]
            out_name, n = col, 1
            while out_name in data:
                out_name = f"{col}_{n}"
                n += 1
            data[out_name] = _column_array(values)
        return DataFrame(data)


def _column_array(values: list) -> np.ndarray:
    present = [v for v in values if v is not None]
    if present and all(isinstance(v, bool) for v in present):
        pass  # fall through to the object path: NULLs have no bool dtype
    elif present and all(isinstance(v, int) and not isinstance(v, bool)
                         for v in present):
        if len(present) == len(values):
            return np.array(values, dtype=np.int64)
        return np.array([np.nan if v is None else float(v) for v in values])
    elif present and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                         for v in present):
        return np.array([np.nan if v is None else float(v) for v in values])
    elif present and all(isinstance(v, str) and _ISO_DATE.match(v)
                         for v in present):
        return np.array([np.datetime64("NaT") if v is None else np.datetime64(v)
                         for v in values], dtype="datetime64[D]")
    return np.array(values, dtype=object)


# ---------------------------------------------------------------------------
# The Protocol
# ---------------------------------------------------------------------------

@runtime_checkable
class ExecutionBackend(Protocol):
    """Minimal interface every registered backend implements.

    ``db`` in :meth:`execute` is the :class:`~repro.sqlengine.Database`
    whose catalog holds the source tables — native backends run against it
    directly, oracle backends mirror its tables into their own engine
    (cached per catalog version).
    """

    name: str
    dialect: Dialect

    def supports(self, caps: "Iterable[str]") -> bool:
        """True when every capability string in *caps* is provided."""
        ...

    def compile(self, sql: str, dialect: str = "standard") -> CompiledQuery:
        """Prepare an execution artifact from *sql*.  ``dialect`` names the
        dialect the text is already written in; backends rewrite only when
        it differs from their own."""
        ...

    def execute(self, db: object, artifact: CompiledQuery,
                params: object = None) -> ResultTable:
        """Run a compiled artifact against *db*'s data."""
        ...

    def introspect(self) -> BackendInfo:
        """Best-effort observability snapshot (version, availability)."""
        ...


# ---------------------------------------------------------------------------
# Native-engine backends (the default profile and the simulated systems)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Backend:
    """A named native-engine backend: execution profile + dialect.

    Implements :class:`ExecutionBackend` by compiling/executing on the
    in-process NumPy engine under its own :class:`EngineConfig`; the
    simulated paper profiles (``duckdb``/``hyper``/``lingodb``) are
    instances with ``kind="simulated-profile"``.
    """

    name: str
    engine_config: EngineConfig
    dialect: Dialect
    # Feature restrictions mirroring the paper's exclusions.
    rejects: frozenset = frozenset()
    kind: str = "native"
    description: str = ""

    def config(self, threads: int = 1) -> EngineConfig:
        return replace(self.engine_config, threads=threads)

    # -- ExecutionBackend ---------------------------------------------------
    @property
    def capabilities(self) -> frozenset:
        caps = {"select", "join", "aggregate", "setops", "subqueries",
                "params", "parallel", "explain", "plan-cache",
                # Storage features: every native profile runs on the engine,
                # which can attach column-store tables, prune scans with
                # zone maps, and spill joins/aggregates under memory_budget.
                "storage", "zone-map-pruning", "spill-to-disk"}
        if self.engine_config.supports_window:
            caps.add("window")
        return frozenset(caps)

    def supports(self, caps: "Iterable[str]") -> bool:
        return set(caps) <= self.capabilities

    def compile(self, sql: str, dialect: str = "standard") -> CompiledQuery:
        # The engine parses every native dialect's spellings directly.
        return CompiledQuery(backend=self.name, sql=sql)

    def execute(self, db: object, artifact: CompiledQuery,
                params: object = None, threads: int = 1) -> ResultTable:
        chunk = db.execute_chunk(artifact.sql, self.config(threads=threads),
                                 params)
        return ResultTable(columns=list(chunk.columns),
                           rows=chunk_rows(chunk))

    def introspect(self) -> BackendInfo:
        from .. import __version__

        return BackendInfo(
            name=self.name, kind=self.kind, version=__version__,
            available=True, capabilities=tuple(sorted(self.capabilities)),
            description=self.description,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def backend_infos() -> list[BackendInfo]:
    """Introspection for every registered backend, sorted by name."""
    return [_REGISTRY[name].introspect() for name in available_backends()]
