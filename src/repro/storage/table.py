"""StoredTable: a catalog table whose columns live on disk.

Behaves exactly like an in-memory :class:`~repro.sqlengine.table.Table`
behind the same interface — ``columns``/``dtypes``/``nrows``/``column``/
``scan``/``chunk`` — but materializes data from the column store's chunk
files on demand.  Numeric/datetime/bool chunks are memory-mapped, so a
scan's residency is whatever the OS page cache keeps warm; ``column()``
promotes a whole column to a RAM-cached array (dual residency) for hot
paths like oracle mirrors and planner sampling.

Zone-map metadata (``has_zone_maps`` / ``chunk_stats`` / ``chunk_length``)
is what the planner's partition pruning consumes; ``io_stats`` counts the
chunk files actually opened so tests and benchmarks can assert a pruned
scan read fewer chunks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import SQLBindError
from ..sqlengine.table import Chunk, Table
from .format import ZoneStats, _chunk_file, _decode_zone, load_chunk_array

__all__ = ["StoredTable"]


class StoredTable(Table):
    """A table backed by a :class:`~repro.storage.format.ColumnStore`."""

    def __init__(self, root: Path, name: str, meta: dict):
        # Deliberately no super().__init__: the base constructor coerces an
        # in-memory mapping; here everything comes from the manifest.
        self.name = name
        self._root = Path(root)
        self._meta = meta
        self.columns = [c["name"] for c in meta["columns"]]
        self._dtypes = [np.dtype(c["dtype"]) for c in meta["columns"]]
        self.nrows = int(meta["nrows"])
        self.primary_key = list(meta.get("primary_key") or [])
        self.unique_columns = set(meta.get("unique") or [])
        if len(self.primary_key) == 1:
            self.unique_columns.add(self.primary_key[0])
        self._chunks = meta["chunks"]
        self._column_cache: dict[str, np.ndarray] = {}
        self.io_stats = {"chunks_read": 0, "rows_read": 0, "bytes_read": 0}

    # -- storage metadata (planner-facing) ---------------------------------
    @property
    def dtypes(self) -> list[np.dtype]:
        return list(self._dtypes)

    @property
    def nchunks(self) -> int:
        return len(self._chunks)

    @property
    def has_zone_maps(self) -> bool:
        return any(ch.get("zones") for ch in self._chunks)

    def chunk_length(self, chunk_id: int) -> int:
        return int(self._chunks[chunk_id]["rows"])

    def chunk_stats(self, column: str, chunk_id: int) -> ZoneStats | None:
        ch = self._chunks[chunk_id]
        zone = (ch.get("zones") or {}).get(column)
        if zone is None:
            return None
        dtype = self._dtypes[self.columns.index(column)]
        return _decode_zone(zone, dtype, int(ch["rows"]))

    def reset_io_stats(self) -> None:
        self.io_stats = {"chunks_read": 0, "rows_read": 0, "bytes_read": 0}

    # -- chunk IO ----------------------------------------------------------
    def _load(self, col_idx: int, chunk_id: int) -> np.ndarray:
        dtype = self._dtypes[col_idx]
        rows = self.chunk_length(chunk_id)
        path = _chunk_file(self._root, self.name, col_idx, chunk_id)
        arr = load_chunk_array(path, dtype, rows)
        self.io_stats["chunks_read"] += 1
        self.io_stats["rows_read"] += rows
        self.io_stats["bytes_read"] += int(arr.nbytes)
        return arr

    def _read_column(self, col_idx: int, chunk_ids: list[int]) -> np.ndarray:
        dtype = self._dtypes[col_idx]
        if not chunk_ids:
            return np.empty(0, dtype=dtype)
        parts = [self._load(col_idx, cid) for cid in chunk_ids]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    # -- Table interface ---------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Full column, materialized once and cached in RAM thereafter."""
        cached = self._column_cache.get(name)
        if cached is None:
            try:
                idx = self.columns.index(name)
            except ValueError:
                raise SQLBindError(
                    f"column {name!r} not found in table {self.name!r}"
                ) from None
            cached = np.asarray(self._read_column(idx, list(range(self.nchunks))))
            self._column_cache[name] = cached
        return cached

    @property
    def arrays(self) -> list[np.ndarray]:
        """All columns materialized — used by oracle mirror loaders that
        iterate ``zip(table.columns, table.arrays)``."""
        return [self.column(c) for c in self.columns]

    def sample(self, name: str, step: int) -> np.ndarray:
        return self.column(name)[:: max(1, step)]

    def chunk(self) -> Chunk:
        return self.scan()

    def scan(self, keep_columns: list[str] | None = None,
             chunk_ids: list[int] | None = None) -> Chunk:
        """Read (pruned) chunk files from disk into a runtime Chunk.

        Always hits the chunk files — never the RAM column cache — so
        ``io_stats`` faithfully reflects what a pruned scan avoided.
        """
        if keep_columns is None:
            keep = list(range(len(self.columns)))
        else:
            names = set(keep_columns)
            keep = [i for i, c in enumerate(self.columns) if c in names]
            if not keep:
                keep = [0] if self.columns else []
        ids = list(range(self.nchunks)) if chunk_ids is None else list(chunk_ids)
        return Chunk(
            [self.columns[i] for i in keep],
            [self._read_column(i, ids) for i in keep],
        )

    def __repr__(self) -> str:
        return (f"StoredTable({self.name!r}, cols={self.columns}, "
                f"n={self.nrows}, chunks={self.nchunks})")
