"""Out-of-core fallbacks: grace-partitioned hash join and aggregation.

When ``EngineConfig.memory_budget`` says an operator's working set will not
fit, the operator grace-partitions its input by a hash of the key columns,
spills each partition to temporary ``.npy`` files, and processes partitions
one at a time — each small enough that the existing in-memory kernels
(:func:`~repro.sqlengine.joins.join_positions`,
``Executor._project_grouped``) apply unchanged.  Equal keys always hash to
the same partition, so per-partition results compose exactly:

* **join**: local match positions are mapped back through the partition's
  global row indices, then the concatenated output is re-sorted into the
  same canonical order the in-memory integer join path produces
  (lexicographic by probe-side position, pads last) — inner joins are
  bit-identical to the non-spilling plan, outer joins row-set-identical.
* **aggregate**: partitioning by group-key hash keeps every group wholly
  inside one partition, and row order *within* a partition preserves input
  order, so each group's reduction consumes its rows in the same sequence
  as the in-memory path — float sums agree bitwise at ``threads=1``.

Key hashing normalizes all numeric dtypes through ``float64`` (int 2 and
float 2.0 compare equal in joins, so they must co-partition); ``-0.0``
folds onto ``0.0`` and NaN bits are canonicalized.  Object (string)
columns hash elementwise with Python's ``hash``.  A join between an object
column and a numeric one has no consistent cross-dtype hash —
:func:`spillable_keys` rejects it and the operator falls back to the
in-memory path rather than risk splitting equal keys across partitions.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

import numpy as np

from ..errors import SQLBindError
from ..sqlengine.expressions import Evaluator, expr_key
from ..sqlengine.joins import join_positions
from ..sqlengine.table import Chunk

__all__ = ["chunk_nbytes", "spillable_keys", "grace_join_positions",
           "grace_aggregate", "partition_ids", "SpillStats"]

# Crude per-element estimate for object columns (PyObject header + str
# payload); only feeds the should-we-spill heuristic, never correctness.
_OBJECT_ELEM_BYTES = 56


@dataclass(frozen=True)
class SpillStats:
    """What a grace-partitioned operator actually did."""

    partitions: int
    bytes_spilled: int


def chunk_nbytes(chunk: Chunk) -> int:
    """Estimated resident size of a runtime chunk in bytes."""
    total = 0
    for arr in chunk.arrays:
        total += int(arr.nbytes)
        if arr.dtype == object:
            total += len(arr) * _OBJECT_ELEM_BYTES
    return total


# ---------------------------------------------------------------------------
# Key hashing / partitioning
# ---------------------------------------------------------------------------

def _key_class(arr: np.ndarray) -> str | None:
    kind = arr.dtype.kind
    if kind in ("i", "u", "b", "f", "M"):
        return "num"
    if kind == "O":
        return "obj"
    return None


def spillable_keys(lkeys: list[np.ndarray], rkeys: list[np.ndarray]) -> bool:
    """True when every key pair can be consistently co-partitioned."""
    if len(lkeys) != len(rkeys) or not lkeys:
        return False
    for la, ra in zip(lkeys, rkeys):
        lc, rc = _key_class(la), _key_class(ra)
        if lc is None or lc != rc:
            return False
    return True


def _hash_column(arr: np.ndarray) -> np.ndarray:
    """A uint64 hash per element, equal for join-equal values across the
    numeric dtype family (int/float/bool/datetime)."""
    kind = arr.dtype.kind
    if kind == "M":
        arr = arr.astype("datetime64[D]").astype(np.int64).astype(np.float64)
        kind = "f"
    if kind in ("i", "u", "b"):
        arr = arr.astype(np.float64)
        kind = "f"
    if kind == "f":
        vals = arr.astype(np.float64, copy=True)
        vals[vals == 0.0] = 0.0  # fold -0.0 onto +0.0
        bits = vals.view(np.int64).copy()
        bits[np.isnan(vals)] = -1  # one canonical NaN bit pattern
        return bits.view(np.uint64)
    if kind == "O":
        out = np.empty(len(arr), dtype=np.int64)
        for i, v in enumerate(arr):
            if v is None or (isinstance(v, float) and v != v):
                out[i] = 0
            else:
                out[i] = hash(v)
        return out.view(np.uint64)
    raise SQLBindError(f"cannot partition key of dtype {arr.dtype}")


def partition_ids(keys: list[np.ndarray], nparts: int) -> np.ndarray:
    """Partition id in ``[0, nparts)`` per row from the combined key hash."""
    h = np.zeros(len(keys[0]), dtype=np.uint64)
    for col in keys:
        h = h * np.uint64(1000003) + _hash_column(np.asarray(col))
    return (h % np.uint64(nparts)).astype(np.int64)


# ---------------------------------------------------------------------------
# Temporary spill files
# ---------------------------------------------------------------------------

class _SpillSet:
    """A temp directory of named ``.npy`` arrays, tracking bytes written."""

    def __init__(self):
        self._dir = tempfile.mkdtemp(prefix="repro-spill-")
        self.bytes_written = 0

    def save(self, tag: str, arr: np.ndarray) -> None:
        path = os.path.join(self._dir, tag + ".npy")
        np.save(path, arr, allow_pickle=arr.dtype == object)
        self.bytes_written += os.path.getsize(path)

    def load(self, tag: str) -> np.ndarray:
        return np.load(os.path.join(self._dir, tag + ".npy"),
                       allow_pickle=True)

    def close(self) -> None:
        shutil.rmtree(self._dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Grace hash join
# ---------------------------------------------------------------------------

def grace_join_positions(
    lkeys: list[np.ndarray],
    rkeys: list[np.ndarray],
    how: str = "inner",
    threads: int = 1,
    nparts: int = 8,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, SpillStats]:
    """Spill-to-disk equi-join with :func:`join_positions` semantics.

    Returns the same ``(left_pos, right_pos, left_missing, right_missing)``
    quadruple plus a :class:`SpillStats`.  Output rows are canonically
    ordered to match the in-memory integer fast path: matched pairs
    lexicographic by (probe, build) position, then left-padded rows, then
    right-padded rows.
    """
    nl = len(lkeys[0]) if lkeys else 0
    nr = len(rkeys[0]) if rkeys else 0
    if nr > 4 * nl and nr >= 4096:
        # Mirror the in-memory side swap so the canonical output order (and
        # hence downstream float reduction order) matches it exactly.
        swapped_how = {"inner": "inner", "left": "right", "right": "left",
                       "full": "full"}[how]
        rp, lp, rmiss, lmiss, stats = grace_join_positions(
            rkeys, lkeys, swapped_how, threads=threads, nparts=nparts)
        return lp, rp, lmiss, rmiss, stats

    lpids = partition_ids(lkeys, nparts)
    rpids = partition_ids(rkeys, nparts)
    ncols = len(lkeys)
    lp_parts: list[np.ndarray] = []
    rp_parts: list[np.ndarray] = []
    lmiss_parts: list[np.ndarray] = []
    rmiss_parts: list[np.ndarray] = []
    spill = _SpillSet()
    try:
        # Partitioning pass: both inputs go to disk, key column by key
        # column, before any partition is joined — the defining property of
        # a grace join (peak residency is one partition, not the input).
        for p in range(nparts):
            lidx = np.nonzero(lpids == p)[0]
            ridx = np.nonzero(rpids == p)[0]
            spill.save(f"l{p}.idx", lidx)
            spill.save(f"r{p}.idx", ridx)
            for ci in range(ncols):
                spill.save(f"l{p}.k{ci}", np.asarray(lkeys[ci])[lidx])
                spill.save(f"r{p}.k{ci}", np.asarray(rkeys[ci])[ridx])
        for p in range(nparts):
            lidx = spill.load(f"l{p}.idx")
            ridx = spill.load(f"r{p}.idx")
            if not len(lidx) and not len(ridx):
                continue
            lk = [spill.load(f"l{p}.k{ci}") for ci in range(ncols)]
            rk = [spill.load(f"r{p}.k{ci}") for ci in range(ncols)]
            lp_, rp_, lmiss_, rmiss_ = join_positions(lk, rk, how,
                                                      threads=threads)
            if not len(lp_):
                continue
            # Map partition-local positions back to global row positions.
            # Padded rows carry position 0 and are masked out downstream, so
            # an empty side just yields zeros.
            glp = lidx[lp_] if len(lidx) else np.zeros(len(lp_), np.int64)
            grp = ridx[rp_] if len(ridx) else np.zeros(len(rp_), np.int64)
            glp = np.where(lmiss_, 0, glp)
            grp = np.where(rmiss_, 0, grp)
            lp_parts.append(glp.astype(np.int64))
            rp_parts.append(grp.astype(np.int64))
            lmiss_parts.append(lmiss_)
            rmiss_parts.append(rmiss_)
    finally:
        spill.close()

    stats = SpillStats(partitions=nparts, bytes_spilled=spill.bytes_written)
    if not lp_parts:
        empty = np.empty(0, dtype=np.int64)
        nomiss = np.empty(0, dtype=bool)
        return empty, empty, nomiss, nomiss, stats
    lp = np.concatenate(lp_parts)
    rp = np.concatenate(rp_parts)
    lmiss = np.concatenate(lmiss_parts)
    rmiss = np.concatenate(rmiss_parts)

    # Canonical reorder: matched pairs lexicographic (lp, rp), then rows
    # whose right side is padded (ascending lp), then rows whose left side
    # is padded (ascending rp) — the in-memory integer path's order.
    matched = ~(lmiss | rmiss)
    m_idx = np.nonzero(matched)[0]
    m_idx = m_idx[np.lexsort((rp[m_idx], lp[m_idx]))]
    lpad_idx = np.nonzero(rmiss)[0]
    lpad_idx = lpad_idx[np.argsort(lp[lpad_idx], kind="stable")]
    rpad_idx = np.nonzero(lmiss)[0]
    rpad_idx = rpad_idx[np.argsort(rp[rpad_idx], kind="stable")]
    order = np.concatenate([m_idx, lpad_idx, rpad_idx])
    return lp[order], rp[order], lmiss[order], rmiss[order], stats


# ---------------------------------------------------------------------------
# Grace hash aggregation
# ---------------------------------------------------------------------------

class _SpilledOrderEval:
    """Stand-in for the post-aggregate Evaluator handed to Sort/TopK.

    A spilled aggregate has no single evaluator covering all output rows,
    so ORDER BY expressions that were evaluable per partition are
    pre-computed and concatenated here, keyed by :func:`expr_key`.  HAVING
    filtering is already applied, so no ``_having_mask`` is exposed.
    """

    def __init__(self, values: dict[str, np.ndarray]):
        self._values = values

    def eval_array(self, expr) -> np.ndarray:
        key = expr_key(expr)
        if key not in self._values:
            raise SQLBindError(
                f"ORDER BY expression not available after spilled "
                f"aggregation: {expr!r}"
            )
        return self._values[key]


def _concat_promote(parts: list[np.ndarray]) -> np.ndarray:
    target = parts[0].dtype
    for p in parts[1:]:
        if p.dtype != target:
            if p.dtype == object or target == object:
                target = np.dtype(object)
            else:
                target = np.promote_types(target, p.dtype)
    return np.concatenate([p.astype(target) for p in parts])


def grace_aggregate(executor, select, chunk: Chunk, scope, subquery_cb,
                    nparts: int = 8):
    """Spill-to-disk grouped aggregation.

    Partitions *chunk* rows by group-key hash, spills the partitions, and
    runs the executor's in-memory grouped projection over one partition at
    a time.  Every group lands wholly inside one partition, so the
    concatenated per-partition outputs are exactly the in-memory result
    rows (in partition order; any final ORDER BY re-sorts them).

    Returns ``(out_chunk, order_eval, SpillStats)``, or ``None`` when the
    group keys cannot be hashed consistently (non-string object values) —
    the caller then falls back to the in-memory path.
    """
    evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                          params=executor.params)
    keys = [np.asarray(evaluator.eval_array(g)) for g in select.group_by]
    if any(_key_class(k) is None for k in keys):
        return None
    pids = partition_ids(keys, nparts)

    order_items = list(select.order_by or [])
    outs: list[Chunk] = []
    order_vals: dict[str, list[np.ndarray]] = {}
    failed_order: set[str] = set()
    spill = _SpillSet()
    try:
        live = []
        for p in range(nparts):
            # np.nonzero is ascending, so each partition preserves input
            # row order — per-group reduction order matches the in-memory
            # path and float sums stay bit-identical at threads=1.
            idx = np.nonzero(pids == p)[0]
            if not len(idx):
                continue
            part = chunk.take(idx)
            for ci, arr in enumerate(part.arrays):
                spill.save(f"p{p}.c{ci}", arr)
            live.append(p)
        for p in live:
            arrays = [spill.load(f"p{p}.c{ci}")
                      for ci in range(len(chunk.columns))]
            part_chunk = Chunk(list(chunk.columns), arrays)
            out_p, eval_p = executor._project_grouped(
                select, part_chunk, scope, subquery_cb, {})
            outs.append(out_p)
            for item in order_items:
                okey = expr_key(item.expr)
                if okey in failed_order:
                    continue
                try:
                    arr = eval_p.eval_array(item.expr)
                except Exception:
                    failed_order.add(okey)
                    order_vals.pop(okey, None)
                    continue
                hmask = getattr(eval_p, "_having_mask", None)
                if hmask is not None and len(arr) == len(hmask):
                    arr = arr[hmask]
                if len(arr) != out_p.nrows:
                    failed_order.add(okey)
                    order_vals.pop(okey, None)
                    continue
                order_vals.setdefault(okey, []).append(np.asarray(arr))
    finally:
        spill.close()

    out = Chunk.concat(outs)
    order_eval = _SpilledOrderEval(
        {k: _concat_promote(v) for k, v in order_vals.items()})
    stats = SpillStats(partitions=nparts, bytes_spilled=spill.bytes_written)
    return out, order_eval, stats
