"""Persistent columnar storage and out-of-core execution support.

Public surface:

* :class:`ColumnStore` / :func:`open_store` / :func:`create_store` — the
  chunked ``.npy`` + JSON-manifest on-disk format with per-chunk zone maps.
* :class:`StoredTable` — a catalog table reading (memory-mapped) chunks on
  demand, exposing zone-map metadata to the planner.
* :func:`register_materializer` / :func:`materialize` / :func:`ingest` —
  the pluggable loader layer (csv / sqlite / parquet-when-available).
* :mod:`.spill` — grace-partitioned join/aggregate fallbacks used by the
  engine when ``EngineConfig.memory_budget`` is exceeded.
"""

from .format import (ColumnStore, ZoneStats, create_store, open_store,
                     DEFAULT_CHUNK_ROWS, FORMAT_NAME, FORMAT_VERSION,
                     MANIFEST_NAME)
from .materialize import (ingest, materialize, materializers,
                          register_materializer)
from .spill import (SpillStats, chunk_nbytes, grace_aggregate,
                    grace_join_positions, partition_ids, spillable_keys)
from .table import StoredTable

__all__ = [
    "ColumnStore", "ZoneStats", "create_store", "open_store",
    "DEFAULT_CHUNK_ROWS", "FORMAT_NAME", "FORMAT_VERSION", "MANIFEST_NAME",
    "StoredTable",
    "ingest", "materialize", "materializers", "register_materializer",
    "SpillStats", "chunk_nbytes", "grace_aggregate", "grace_join_positions",
    "partition_ids", "spillable_keys",
]
