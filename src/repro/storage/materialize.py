"""Materializers: named ingest loaders feeding the column store.

A *materializer* turns an external source into the column mapping that
:meth:`~repro.storage.format.ColumnStore.write_table` persists.  Three ship
built in — ``csv`` (the repo's own delimited reader with dtype inference),
``sqlite`` (any table of an on-disk sqlite database, typed through the
same inference the sqlite oracle mirror uses), and ``parquet`` (gated on
``pyarrow`` being importable; the container does not bake it in, so the
loader raises a typed :class:`~repro.errors.StorageError` when absent
instead of an ImportError at import time).

Third parties extend ingest with :func:`register_materializer`; unknown
names raise :class:`StorageError` so a typo'd ``--format`` fails loudly.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Mapping

import numpy as np

from ..errors import StorageError

__all__ = ["register_materializer", "materialize", "materializers",
           "ingest"]

# name -> loader(source, **options) -> Mapping[str, np.ndarray]
_MATERIALIZERS: dict[str, Callable[..., Mapping[str, np.ndarray]]] = {}


def register_materializer(name: str,
                          loader: Callable[..., Mapping[str, np.ndarray]],
                          replace: bool = False) -> None:
    """Register *loader* under *name* for :func:`materialize`."""
    if name in _MATERIALIZERS and not replace:
        raise StorageError(f"materializer {name!r} already registered")
    _MATERIALIZERS[name] = loader


def materializers() -> list[str]:
    """Registered materializer names (sorted)."""
    return sorted(_MATERIALIZERS)


def materialize(name: str, source, **options) -> Mapping[str, np.ndarray]:
    """Run the materializer *name* over *source*, returning columns."""
    try:
        loader = _MATERIALIZERS[name]
    except KeyError:
        raise StorageError(
            f"unknown materializer {name!r} "
            f"(registered: {', '.join(materializers()) or 'none'})"
        ) from None
    return loader(source, **options)


def ingest(store, name: str, format: str, source, *,
           primary_key=None, unique=None, chunk_rows=None,
           sort_by=None, **options) -> None:
    """Materialize *source* via *format* and persist it as table *name*.

    Extra keyword *options* pass through to the materializer (e.g.
    ``table=`` / ``query=`` for sqlite, ``sep=`` for csv).
    """
    from .format import DEFAULT_CHUNK_ROWS

    data = materialize(format, source, **options)
    store.write_table(
        name, data, primary_key=primary_key, unique=unique,
        chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS, sort_by=sort_by,
    )


# ---------------------------------------------------------------------------
# Built-in loaders
# ---------------------------------------------------------------------------

def _load_csv(source, sep: str = ",",
              names: list[str] | None = None) -> Mapping[str, np.ndarray]:
    from ..dataframe.io import read_csv

    try:
        df = read_csv(source, sep=sep, names=names)
    except OSError as exc:
        raise StorageError(f"cannot read CSV {source!r}: {exc}") from exc
    return {c: df[c].values for c in df.columns}


def _load_sqlite(source, table: str | None = None,
                 query: str | None = None) -> Mapping[str, np.ndarray]:
    # Reuses the oracle mirror's column typing so sqlite-ingested tables
    # compare cleanly against the sqlite differential backend.
    from ..backends.base import _column_array

    if (table is None) == (query is None):
        raise StorageError(
            "sqlite materializer needs exactly one of table= or query="
        )
    if table is not None and not table.replace("_", "").isalnum():
        raise StorageError(f"suspicious sqlite table name {table!r}")
    sql = query if query is not None else f'SELECT * FROM "{table}"'
    try:
        con = sqlite3.connect(source)
        try:
            cur = con.execute(sql)
            cols = [d[0] for d in cur.description]
            rows = cur.fetchall()
        finally:
            con.close()
    except sqlite3.Error as exc:
        raise StorageError(f"sqlite ingest from {source!r} failed: {exc}") from exc
    return {c: _column_array([r[i] for r in rows])
            for i, c in enumerate(cols)}


def _load_parquet(source, columns: list[str] | None = None) -> Mapping[str, np.ndarray]:
    try:
        import pyarrow.parquet as pq
    except ImportError:
        raise StorageError(
            "parquet materializer requires pyarrow, which is not installed"
        ) from None
    try:
        table = pq.read_table(source, columns=columns)
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot read parquet {source!r}: {exc}") from exc
    out: dict[str, np.ndarray] = {}
    for name, col in zip(table.column_names, table.columns):
        values = col.to_pylist()
        arr = np.asarray(values)
        if arr.dtype.kind not in ("i", "u", "f", "b", "M"):
            arr = np.array(values, dtype=object)
        out[name] = arr
    return out


def _load_arrays(source, **_options) -> Mapping[str, np.ndarray]:
    """Identity loader: *source* is already a column mapping."""
    if not isinstance(source, Mapping):
        raise StorageError("arrays materializer expects a column mapping")
    return source


register_materializer("csv", _load_csv)
register_materializer("sqlite", _load_sqlite)
register_materializer("parquet", _load_parquet)
register_materializer("arrays", _load_arrays)
