"""The persistent columnar format: chunked ``.npy`` column files + manifest.

On-disk layout of a store rooted at ``<root>``::

    <root>/manifest.json              # schema, chunk boundaries, zone maps
    <root>/<table>/c<col>.<chunk>.npy # one file per (column, chunk)

The manifest is the single source of truth: it records the format version,
a monotonically increasing catalog version (bumped on every write/drop so
reopened databases see a sane DDL counter), and per table the column
schema, constraint metadata, chunk row counts, and per-chunk **zone maps**
(min/max/null-count per column) that the planner's interval tests consume
for partition pruning.

Chunk files are plain ``.npy`` arrays: numeric/datetime/bool columns are
memory-mapped on read (``np.load(..., mmap_mode="r")``), so a scan touches
only the pages it needs; ``object`` (string) columns cannot be mmapped by
numpy and are loaded chunk-at-a-time instead — that asymmetry is inherent
to the ``.npy`` pickle encoding, not hidden.

Every failure mode — unparsable or structurally invalid manifest, missing
or truncated chunk files, dtype/row-count mismatches — raises a typed
:class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..dataframe._common import coerce_array, isna_array
from ..errors import StorageError

__all__ = ["ColumnStore", "ZoneStats", "open_store", "create_store",
           "DEFAULT_CHUNK_ROWS", "FORMAT_NAME", "FORMAT_VERSION",
           "MANIFEST_NAME"]

FORMAT_NAME = "repro-columnar"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_CHUNK_ROWS = 8192


@dataclass(frozen=True)
class ZoneStats:
    """One chunk's zone map for one column: min/max over non-NULL values
    (None/None when the chunk is all-NULL), NULL count, row count, and the
    column dtype (so literal coercion happens in the right domain)."""

    min: object
    max: object
    nulls: int
    rows: int
    dtype: np.dtype


def _chunk_file(root: Path, table: str, col_idx: int, chunk_idx: int) -> Path:
    # Files are named by column *position*, not name: column names are SQL
    # identifiers and make poor cross-platform file names.
    return root / table / f"c{col_idx:03d}.{chunk_idx:05d}.npy"


# ---------------------------------------------------------------------------
# Zone-map computation / (de)serialization
# ---------------------------------------------------------------------------

def _zone_of(arr: np.ndarray) -> dict | None:
    """The JSON-able zone map of one chunk column, or None when the dtype
    has no total order worth tracking (non-string object columns)."""
    kind = arr.dtype.kind
    n = len(arr)
    if kind in ("i", "u"):
        if n == 0:
            return {"min": None, "max": None, "nulls": 0}
        return {"min": int(arr.min()), "max": int(arr.max()), "nulls": 0}
    if kind == "b":
        if n == 0:
            return {"min": None, "max": None, "nulls": 0}
        return {"min": bool(arr.min()), "max": bool(arr.max()), "nulls": 0}
    if kind == "f":
        null = np.isnan(arr)
        valid = arr[~null]
        if not len(valid):
            return {"min": None, "max": None, "nulls": int(null.sum())}
        return {"min": float(valid.min()), "max": float(valid.max()),
                "nulls": int(null.sum())}
    if kind == "M":
        null = np.isnat(arr)
        valid = arr[~null]
        if not len(valid):
            return {"min": None, "max": None, "nulls": int(null.sum())}
        return {"min": str(valid.min()), "max": str(valid.max()),
                "nulls": int(null.sum())}
    if kind == "O":
        null = isna_array(arr)
        valid = [v for v, is_null in zip(arr, null) if not is_null]
        if not all(isinstance(v, str) for v in valid):
            return None  # mixed-type object column: untracked
        if not valid:
            return {"min": None, "max": None, "nulls": int(null.sum())}
        return {"min": min(valid), "max": max(valid), "nulls": int(null.sum())}
    return None


def _decode_zone(zone: dict | None, dtype: np.dtype, rows: int) -> ZoneStats | None:
    if zone is None:
        return None
    lo, hi = zone.get("min"), zone.get("max")
    if dtype.kind == "M":
        lo = np.datetime64(lo) if lo is not None else None
        hi = np.datetime64(hi) if hi is not None else None
    return ZoneStats(min=lo, max=hi, nulls=int(zone.get("nulls", 0)),
                     rows=rows, dtype=dtype)


# ---------------------------------------------------------------------------
# Chunk file IO
# ---------------------------------------------------------------------------

def load_chunk_array(path: Path, dtype: np.dtype, expected_rows: int,
                     mmap: bool = True) -> np.ndarray:
    """Load one chunk file, validated against the manifest's expectations.

    Non-object dtypes memory-map (dual residency: the OS page cache, not
    the process heap, owns the data); object columns deserialize eagerly.
    """
    try:
        if dtype == object:
            arr = np.load(path, allow_pickle=True)
        else:
            arr = np.load(path, mmap_mode="r" if mmap else None)
    except FileNotFoundError:
        raise StorageError(f"missing chunk file {path}") from None
    except Exception as exc:
        raise StorageError(f"unreadable chunk file {path}: {exc}") from exc
    if arr.ndim != 1 or len(arr) != expected_rows:
        raise StorageError(
            f"chunk file {path} holds {arr.shape} values, manifest expects "
            f"{expected_rows} rows (truncated or foreign file?)"
        )
    if arr.dtype != dtype:
        raise StorageError(
            f"chunk file {path} has dtype {arr.dtype}, manifest says {dtype}"
        )
    return arr


# ---------------------------------------------------------------------------
# Manifest validation
# ---------------------------------------------------------------------------

def _validate_manifest(doc, path: Path) -> dict:
    def fail(why: str):
        raise StorageError(f"corrupt manifest {path}: {why}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("format") != FORMAT_NAME:
        fail(f"unknown format {doc.get('format')!r}")
    if doc.get("format_version") != FORMAT_VERSION:
        fail(f"unsupported format_version {doc.get('format_version')!r}")
    if not isinstance(doc.get("catalog_version"), int):
        fail("catalog_version is not an integer")
    tables = doc.get("tables")
    if not isinstance(tables, dict):
        fail("tables is not an object")
    for name, meta in tables.items():
        if not isinstance(meta, dict):
            fail(f"table {name!r} entry is not an object")
        columns = meta.get("columns")
        if not isinstance(columns, list) or not all(
            isinstance(c, dict) and isinstance(c.get("name"), str)
            and isinstance(c.get("dtype"), str) for c in columns
        ):
            fail(f"table {name!r} has a malformed column list")
        for c in columns:
            try:
                np.dtype(c["dtype"])
            except TypeError:
                fail(f"table {name!r} column {c['name']!r} has invalid "
                     f"dtype {c['dtype']!r}")
        chunks = meta.get("chunks")
        if not isinstance(chunks, list) or not all(
            isinstance(ch, dict) and isinstance(ch.get("rows"), int)
            for ch in chunks
        ):
            fail(f"table {name!r} has a malformed chunk list")
        nrows = meta.get("nrows")
        if not isinstance(nrows, int) or nrows != sum(
            ch["rows"] for ch in chunks
        ):
            fail(f"table {name!r}: nrows does not match chunk boundaries")
    return doc


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ColumnStore:
    """A directory of persistently stored columnar tables.

    ``ColumnStore(root)`` opens an existing store or initializes an empty
    one (``create=False`` insists the manifest already exists — the
    restart-without-reload path).  :meth:`write_table` ingests a mapping of
    columns, optionally clustering rows on a sort key so zone maps become
    selective; :meth:`table` returns a lazily-reading
    :class:`~repro.storage.table.StoredTable`; :meth:`attach` registers
    every stored table into a :class:`~repro.sqlengine.Database` catalog.
    """

    def __init__(self, root: str | os.PathLike, create: bool = True):
        self.root = Path(root)
        manifest_path = self.root / MANIFEST_NAME
        if manifest_path.exists():
            self._manifest = self._load_manifest(manifest_path)
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._manifest = {
                "format": FORMAT_NAME,
                "format_version": FORMAT_VERSION,
                "catalog_version": 0,
                "tables": {},
            }
            self._save_manifest()
        else:
            raise StorageError(f"no column store at {self.root} "
                               f"(missing {MANIFEST_NAME})")

    # -- manifest ----------------------------------------------------------
    @staticmethod
    def _load_manifest(path: Path) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StorageError(f"corrupt manifest {path}: {exc}") from exc
        return _validate_manifest(doc, path)

    def _save_manifest(self) -> None:
        # Atomic replace: a crash mid-write leaves the previous manifest
        # intact rather than a half-written JSON document.
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._manifest, fh, indent=1)
        os.replace(tmp, self.root / MANIFEST_NAME)

    @property
    def catalog_version(self) -> int:
        return self._manifest["catalog_version"]

    # -- writing -----------------------------------------------------------
    def write_table(
        self,
        name: str,
        data: Mapping[str, np.ndarray],
        primary_key: list[str] | str | None = None,
        unique: Iterable[str] | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        sort_by: str | list[str] | None = None,
    ) -> None:
        """Persist *data* (a mapping of equal-length columns) as *name*.

        ``chunk_rows`` fixes the chunk boundary stride.  ``sort_by``
        clusters rows on the named column(s) before chunking — zone maps
        only prune when values correlate with row position, so ingest-time
        clustering is what makes a date-range scan skip chunks.
        """
        if isinstance(primary_key, str):
            primary_key = [primary_key]
        if isinstance(sort_by, str):
            sort_by = [sort_by]
        if chunk_rows < 1:
            raise StorageError(f"chunk_rows must be positive, got {chunk_rows}")
        columns = [str(c) for c in data.keys()]
        arrays = [coerce_array(v) for v in data.values()]
        nrows = len(arrays[0]) if arrays else 0
        for col, arr in zip(columns, arrays):
            if len(arr) != nrows:
                raise StorageError(
                    f"column {col!r} length mismatch in table {name!r}"
                )
        if sort_by:
            for key in sort_by:
                if key not in columns:
                    raise StorageError(
                        f"sort_by column {key!r} not in table {name!r}"
                    )
            keys = [arrays[columns.index(k)] for k in reversed(sort_by)]
            order = np.lexsort(keys) if len(keys) > 1 else \
                np.argsort(keys[0], kind="stable")
            arrays = [a[order] for a in arrays]

        table_dir = self.root / name
        if table_dir.exists():
            shutil.rmtree(table_dir)
        table_dir.mkdir(parents=True)

        starts = list(range(0, nrows, chunk_rows)) or [0]
        chunks: list[dict] = []
        for ci, start in enumerate(starts):
            stop = min(start + chunk_rows, nrows)
            zones: dict[str, dict] = {}
            for col_idx, (col, arr) in enumerate(zip(columns, arrays)):
                part = np.ascontiguousarray(arr[start:stop])
                path = _chunk_file(self.root, name, col_idx, ci)
                np.save(path, part, allow_pickle=part.dtype == object)
                zone = _zone_of(part)
                if zone is not None:
                    zones[col] = zone
            chunks.append({"rows": stop - start, "zones": zones})

        self._manifest["tables"][name] = {
            "nrows": nrows,
            "chunk_rows": chunk_rows,
            "primary_key": list(primary_key) if primary_key else [],
            "unique": sorted(set(unique)) if unique else [],
            "sort_by": list(sort_by) if sort_by else [],
            "columns": [{"name": c, "dtype": a.dtype.str}
                        for c, a in zip(columns, arrays)],
            "chunks": chunks,
        }
        self._manifest["catalog_version"] += 1
        self._save_manifest()

    def drop_table(self, name: str) -> None:
        if name not in self._manifest["tables"]:
            raise StorageError(f"unknown stored table {name!r}")
        del self._manifest["tables"][name]
        shutil.rmtree(self.root / name, ignore_errors=True)
        self._manifest["catalog_version"] += 1
        self._save_manifest()

    # -- reading -----------------------------------------------------------
    def tables(self) -> list[str]:
        return sorted(self._manifest["tables"])

    def table_meta(self, name: str) -> dict:
        try:
            return self._manifest["tables"][name]
        except KeyError:
            raise StorageError(f"unknown stored table {name!r}") from None

    def table(self, name: str):
        from .table import StoredTable

        return StoredTable(self.root, name, self.table_meta(name))

    def attach(self, db, names: Iterable[str] | None = None) -> list[str]:
        """Register stored tables into *db*'s catalog (no data is read —
        scans stream chunks on demand).  Returns the attached names."""
        attached = []
        for name in (list(names) if names is not None else self.tables()):
            db.catalog.register(self.table(name))
            attached.append(name)
        return attached


def open_store(root: str | os.PathLike) -> ColumnStore:
    """Open an existing store; raise :class:`StorageError` when absent."""
    return ColumnStore(root, create=False)


def create_store(root: str | os.PathLike) -> ColumnStore:
    """Open a store, initializing an empty one when absent."""
    return ColumnStore(root, create=True)
