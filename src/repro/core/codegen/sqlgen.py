"""TondIR -> SQL code generation (Section III-E of the paper).

Each rule becomes a Common Table Expression; the program renders as a chain
of ``WITH`` clauses followed by a final ``SELECT`` for the sink rule.
``ORDER BY``/``LIMIT`` placement follows the paper: a bare ``ORDER BY``
inside a CTE has no guaranteed effect, so sorts are only emitted inside a
CTE when paired with a ``LIMIT``, and the sink rule's sort renders in the
outer query.
"""

from __future__ import annotations

import numpy as np

from ...backends.base import Dialect
from ...errors import TondIRError
from ..tondir.ir import (
    Agg, AssignAtom, BinOp, Const, ConstRelAtom, ExistsAtom, Ext,
    FilterAtom, If, OuterAtom, Program, RelAtom, Rule, Term, Var, Win,
)

__all__ = ["SQLGenerator", "generate_sql"]

_STANDARD_DIALECT = Dialect()

_BIN_SQL = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "=": "=", "<>": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "and": "AND", "or": "OR", "concat": "||",
}

_AGG_SQL = {"sum": "SUM", "min": "MIN", "max": "MAX", "avg": "AVG",
            "count": "COUNT", "stddev": "STDDEV", "var": "VAR"}


def _quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _const_sql(value, dialect: Dialect | None = None) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    if isinstance(value, np.datetime64):
        lit = _quote(str(value.astype("datetime64[D]")))
        return (dialect or _STANDARD_DIALECT).date_literal.format(lit=lit)
    if isinstance(value, str):
        return _quote(value)
    raise TondIRError(f"cannot render constant {value!r}")


class SQLGenerator:
    """Renders a TondIR program as SQL for a target dialect."""

    def __init__(self, catalog_schemas: dict[str, list[str]], dialect: Dialect | None = None):
        # rel name -> ordered column names (base tables + rules added as seen)
        self.schemas = dict(catalog_schemas)
        self.dialect = dialect or _STANDARD_DIALECT

    # ------------------------------------------------------------------
    def generate(self, program: Program) -> str:
        ctes: list[str] = []
        sink_sql: str | None = None
        # Consecutive rules sharing one head relation are a Datalog union:
        # they render as a single CTE with UNION ALL between rule bodies.
        groups: list[list[Rule]] = []
        for rule in program.rules:
            if groups and groups[-1][0].head.rel == rule.head.rel:
                groups[-1].append(rule)
            else:
                groups.append([rule])
        for gi, group in enumerate(groups):
            head = group[0].head
            self.schemas[head.rel] = list(head.vars)
            is_sink = head.rel == program.sink and gi == len(groups) - 1
            if len(group) == 1:
                body_sql = self._rule_sql(group[0], is_sink=is_sink)
            else:
                for branch in group:
                    if len(branch.head.vars) != len(head.vars):
                        raise TondIRError(
                            f"union branches of {head.rel!r} disagree on arity"
                        )
                    if branch.head.sort is not None:
                        raise TondIRError(
                            "a union branch cannot carry ORDER BY/LIMIT"
                        )
                body_sql = "\nUNION ALL\n".join(
                    self._rule_sql(branch, is_sink=False) for branch in group
                )
            if is_sink:
                sink_sql = body_sql
            else:
                cols = ", ".join(head.vars)
                ctes.append(f"{head.rel}({cols}) AS (\n{body_sql}\n)")
        if sink_sql is None:
            # Sink defined earlier in the chain: final select reads it back.
            sink_cols = self.schemas.get(program.sink)
            if sink_cols is None:
                raise TondIRError(f"sink relation {program.sink!r} is never defined")
            sink_sql = f"SELECT * FROM {program.sink}"
        if ctes:
            return "WITH " + ",\n".join(ctes) + "\n" + sink_sql
        return sink_sql

    # ------------------------------------------------------------------
    def _rule_sql(self, rule: Rule, is_sink: bool) -> str:
        defs: dict[str, str] = {}
        predicates: list[str] = []
        from_items: list[str] = []  # comma-join items
        rel_aliases: list[tuple[RelAtom | ConstRelAtom, str]] = []
        outer_atoms = [a for a in rule.body if isinstance(a, OuterAtom)]

        alias_counter = 0

        def next_alias() -> str:
            nonlocal alias_counter
            alias_counter += 1
            return f"r{alias_counter}"

        # First pass: bind relation accesses.
        rel_atom_list = [a for a in rule.body if isinstance(a, (RelAtom, ConstRelAtom))]
        alias_of: dict[int, str] = {}
        for atom in rule.body:
            if isinstance(atom, RelAtom):
                alias = next_alias()
                alias_of[id(atom)] = alias
                cols = self.schemas.get(atom.rel)
                if cols is None:
                    raise TondIRError(f"unknown relation {atom.rel!r}")
                if len(cols) != len(atom.vars):
                    raise TondIRError(
                        f"arity mismatch accessing {atom.rel!r}: "
                        f"{len(atom.vars)} vars vs {len(cols)} columns"
                    )
                for var, col in zip(atom.vars, cols):
                    expr = f"{alias}.{col}"
                    if var == "_":
                        continue
                    if var in defs:
                        predicates.append(f"{defs[var]} = {expr}")
                    else:
                        defs[var] = expr
            elif isinstance(atom, ConstRelAtom):
                alias = next_alias()
                alias_of[id(atom)] = alias
                rows = ", ".join(
                    "(" + ", ".join(_const_sql(v, self.dialect) for v in row) + ")" for row in atom.rows
                )
                cols = [f"c{i}" for i in range(len(atom.vars))]
                from_items.append(f"(VALUES {rows}) AS {alias}({', '.join(cols)})")
                for var, col in zip(atom.vars, cols):
                    expr = f"{alias}.{col}"
                    if var in defs:
                        predicates.append(f"{defs[var]} = {expr}")
                    else:
                        defs[var] = expr

        # FROM clause: either comma joins or explicit outer-join syntax.
        if outer_atoms:
            from_sql = self._outer_from(rule, alias_of, defs)
        else:
            from_items = []  # rebuild in body order
            for atom in rule.body:
                if isinstance(atom, RelAtom):
                    from_items.append(f"{atom.rel} AS {alias_of[id(atom)]}")
                elif isinstance(atom, ConstRelAtom):
                    alias = alias_of[id(atom)]
                    rows = ", ".join(
                        "(" + ", ".join(_const_sql(v, self.dialect) for v in row) + ")" for row in atom.rows
                    )
                    cols = [f"c{i}" for i in range(len(atom.vars))]
                    from_items.append(f"(VALUES {rows}) AS {alias}({', '.join(cols)})")
            from_sql = ", ".join(from_items)

        # Second pass: assignments / filters / exists.
        for atom in rule.body:
            if isinstance(atom, AssignAtom):
                if atom.var in defs:
                    predicates.append(f"{defs[atom.var]} = {self._term_sql(atom.term, defs)}")
                else:
                    defs[atom.var] = self._term_sql(atom.term, defs)
            elif isinstance(atom, FilterAtom):
                predicates.append(self._term_sql(atom.term, defs, boolean=True))
            elif isinstance(atom, ExistsAtom):
                predicates.append(self._exists_sql(atom, defs))

        head = rule.head
        select_parts = []
        for var in head.vars:
            if var not in defs:
                raise TondIRError(f"head variable {var!r} is not bound in rule {head.rel!r}")
            expr = defs[var]
            if expr == var or expr.endswith(f".{var}"):
                select_parts.append(f"{expr} AS {var}")
            else:
                select_parts.append(f"{expr} AS {var}")
        distinct = "DISTINCT " if head.distinct else ""
        lines = [f"SELECT {distinct}" + ", ".join(select_parts)]
        if from_sql:
            lines.append(f"FROM {from_sql}")
        if predicates:
            lines.append("WHERE " + " AND ".join(predicates))
        if head.group is not None:
            group_exprs = []
            for g in head.group:
                if g not in defs:
                    raise TondIRError(f"group variable {g!r} is not bound")
                group_exprs.append(defs[g])
            if group_exprs:
                lines.append("GROUP BY " + ", ".join(group_exprs))
        if head.sort is not None:
            emit_order = is_sink or head.sort.limit is not None
            if emit_order and head.sort.keys:
                parts = []
                for var, asc in head.sort.keys:
                    target = var if var in head.vars else defs.get(var, var)
                    parts.append(f"{target}{'' if asc else ' DESC'}")
                lines.append("ORDER BY " + ", ".join(parts))
            if head.sort.limit is not None:
                lines.append(f"LIMIT {head.sort.limit}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _outer_from(self, rule: Rule, alias_of: dict[int, str], defs: dict[str, str]) -> str:
        rel_atoms = rule.rel_atoms()
        outer = [a for a in rule.body if isinstance(a, OuterAtom)]
        if len(rel_atoms) != 2 or len(outer) != 1:
            raise TondIRError("outer-join rules must contain exactly two relation accesses")
        oa = outer[0]
        left, right = rel_atoms[oa.left_rel], rel_atoms[oa.right_rel]
        la, ra = alias_of[id(left)], alias_of[id(right)]
        conds = []
        left_cols = dict(zip(left.vars, self.schemas[left.rel]))
        right_cols = dict(zip(right.vars, self.schemas[right.rel]))
        for lv, rv in oa.pairs:
            conds.append(f"{la}.{left_cols[lv]} = {ra}.{right_cols[rv]}")
        kind = {"left": "LEFT JOIN", "right": "RIGHT JOIN", "full": "FULL OUTER JOIN"}[oa.kind]
        return f"{left.rel} AS {la} {kind} {right.rel} AS {ra} ON {' AND '.join(conds)}"

    # ------------------------------------------------------------------
    def _exists_sql(self, atom: ExistsAtom, outer_defs: dict[str, str]) -> str:
        inner = SQLGenerator(self.schemas, self.dialect)
        defs: dict[str, str] = {}
        predicates: list[str] = []
        from_items: list[str] = []
        alias_counter = 0
        for a in atom.body:
            if isinstance(a, RelAtom):
                alias_counter += 1
                alias = f"e{alias_counter}"
                cols = self.schemas.get(a.rel)
                if cols is None:
                    raise TondIRError(f"unknown relation {a.rel!r} in exists")
                from_items.append(f"{a.rel} AS {alias}")
                for var, col in zip(a.vars, cols):
                    expr = f"{alias}.{col}"
                    if var == "_":
                        continue
                    if var in defs:
                        predicates.append(f"{defs[var]} = {expr}")
                    elif var in outer_defs:
                        predicates.append(f"{outer_defs[var]} = {expr}")
                        defs[var] = expr
                    else:
                        defs[var] = expr
            elif isinstance(a, AssignAtom):
                merged = dict(outer_defs)
                merged.update(defs)
                defs[a.var] = self._term_sql(a.term, merged)
            elif isinstance(a, FilterAtom):
                merged = dict(outer_defs)
                merged.update(defs)
                predicates.append(self._term_sql(a.term, merged, boolean=True))
            else:
                raise TondIRError(f"unsupported atom in exists body: {a!r}")
        sql = "SELECT 1 FROM " + ", ".join(from_items)
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        keyword = "NOT EXISTS" if atom.negated else "EXISTS"
        return f"{keyword} ({sql})"

    # ------------------------------------------------------------------
    def _term_sql(self, term: Term, defs: dict[str, str], boolean: bool = False) -> str:
        if isinstance(term, Var):
            if term.name not in defs:
                raise TondIRError(f"unbound variable {term.name!r}")
            return defs[term.name]
        if isinstance(term, Const):
            return _const_sql(term.value, self.dialect)
        if isinstance(term, BinOp):
            return self._binop_sql(term, defs)
        if isinstance(term, If):
            return self._if_sql(term, defs)
        if isinstance(term, Agg):
            return self._agg_sql(term, defs)
        if isinstance(term, Ext):
            return self._ext_sql(term, defs)
        if isinstance(term, Win):
            return self._win_sql(term, defs)
        raise TondIRError(f"cannot render term {term!r}")

    def _binop_sql(self, term: BinOp, defs: dict[str, str]) -> str:
        if term.op == "like":
            operand = self._term_sql(term.left, defs)
            if not isinstance(term.right, Const):
                raise TondIRError("like requires a constant pattern")
            return f"{operand} LIKE {_quote(str(term.right.value))}"
        if term.op == "not like":
            operand = self._term_sql(term.left, defs)
            return f"{operand} NOT LIKE {_quote(str(term.right.value))}"
        op = _BIN_SQL.get(term.op)
        if op is None:
            raise TondIRError(f"unknown binary operator {term.op!r}")
        left = self._term_sql(term.left, defs)
        right = self._term_sql(term.right, defs)
        return f"({left} {op} {right})"

    def _if_sql(self, term: If, defs: dict[str, str]) -> str:
        branches: list[tuple[str, str]] = []
        current: Term = term
        while isinstance(current, If):
            branches.append(
                (self._term_sql(current.cond, defs, boolean=True), self._term_sql(current.then, defs))
            )
            current = current.otherwise
        default = self._term_sql(current, defs)
        whens = " ".join(f"WHEN {c} THEN {v}" for c, v in branches)
        return f"(CASE {whens} ELSE {default} END)"

    def _agg_sql(self, term: Agg, defs: dict[str, str]) -> str:
        func = _AGG_SQL.get(term.func)
        if term.func == "count_distinct":
            return f"COUNT(DISTINCT {self._term_sql(term.arg, defs)})"
        if func is None:
            raise TondIRError(f"unknown aggregate {term.func!r}")
        if term.arg is None:
            return "COUNT(*)"
        inner = self._term_sql(term.arg, defs)
        if term.distinct:
            return f"{func}(DISTINCT {inner})"
        if term.func == "sum":
            # Pandas sums an empty frame to 0, SQL to NULL; COALESCE keeps
            # the translated semantics Pandas-faithful.
            return f"COALESCE(SUM({inner}), 0)"
        return f"{func}({inner})"

    _WIN_FUNC_SQL = {
        "row_number": "ROW_NUMBER", "rank": "RANK", "dense_rank": "DENSE_RANK",
        "ntile": "NTILE", "lag": "LAG", "lead": "LEAD",
        "sum": "SUM", "avg": "AVG", "min": "MIN", "max": "MAX", "count": "COUNT",
    }

    _FRAME_BOUND_SQL = {
        "unbounded_preceding": "UNBOUNDED PRECEDING",
        "unbounded_following": "UNBOUNDED FOLLOWING",
        "current": "CURRENT ROW",
        "preceding": "{n} PRECEDING",
        "following": "{n} FOLLOWING",
    }

    def _win_sql(self, term: Win, defs: dict[str, str]) -> str:
        """Render a window term as ``FUNC(args) OVER (...)``."""
        func = self._WIN_FUNC_SQL.get(term.func)
        if func is None:
            raise TondIRError(f"unknown window function {term.func!r}")
        if func == "COUNT" and not term.args:
            inner = "*"
        else:
            inner = ", ".join(self._term_sql(a, defs) for a in term.args)
        over: list[str] = []
        if term.partition_by:
            over.append("PARTITION BY " + ", ".join(
                self._term_sql(p, defs) for p in term.partition_by))
        if term.order_by:
            over.append("ORDER BY " + ", ".join(
                self._term_sql(t, defs) + ("" if asc else " DESC")
                for t, asc in term.order_by))
        if term.frame is not None:
            unit, sk, so, ek, eo = term.frame
            start = self._FRAME_BOUND_SQL[sk].format(n=so)
            end = self._FRAME_BOUND_SQL[ek].format(n=eo)
            over.append(f"{unit.upper()} BETWEEN {start} AND {end}")
        return f"{func}({inner}) OVER ({' '.join(over)})"

    def _ext_sql(self, term: Ext, defs: dict[str, str]) -> str:
        name = term.name
        # IN-list arguments hold a constant tuple that must not be rendered
        # as a scalar constant.
        if name in ("in_list", "not_in_list"):
            operand = self._term_sql(term.args[0], defs)
            values = term.args[1]
            if not isinstance(values, Const) or not isinstance(values.value, (list, tuple)):
                raise TondIRError(f"{name} requires a constant list")
            items = ", ".join(_const_sql(v, self.dialect) for v in values.value)
            keyword = "IN" if name == "in_list" else "NOT IN"
            return f"{operand} {keyword} ({items})"
        args = [self._term_sql(a, defs) for a in term.args]
        if name == "uid":
            if args:
                return f"ROW_NUMBER() OVER (ORDER BY {args[0]})"
            return "ROW_NUMBER() OVER ()"
        if name == "year":
            return self.dialect.year_function.format(arg=args[0])
        if name == "month":
            return f"EXTRACT(MONTH FROM {args[0]})"
        if name == "day":
            return f"EXTRACT(DAY FROM {args[0]})"
        if name == "substr":
            return self.dialect.substring_function.format(arg=args[0], start=args[1], length=args[2])
        if name == "strftime":
            return self.dialect.strftime_function.format(arg=args[0], fmt=args[1])
        if name == "startswith":
            pattern = str(term.args[1].value) if isinstance(term.args[1], Const) else None
            if pattern is None:
                raise TondIRError("startswith requires a constant prefix")
            return f"{args[0]} LIKE {_quote(pattern + '%')}"
        if name == "endswith":
            pattern = str(term.args[1].value)
            return f"{args[0]} LIKE {_quote('%' + pattern)}"
        if name == "contains":
            pattern = str(term.args[1].value)
            return f"{args[0]} LIKE {_quote('%' + pattern + '%')}"
        if name == "in_list":
            values = term.args[1]
            if not isinstance(values, Const) or not isinstance(values.value, (list, tuple)):
                raise TondIRError("in_list requires a constant list")
            items = ", ".join(_const_sql(v, self.dialect) for v in values.value)
            return f"{args[0]} IN ({items})"
        if name == "not_in_list":
            values = term.args[1]
            items = ", ".join(_const_sql(v, self.dialect) for v in values.value)
            return f"{args[0]} NOT IN ({items})"
        if name == "isnull":
            return f"{args[0]} IS NULL"
        if name == "notnull":
            return f"{args[0]} IS NOT NULL"
        if name == "not":
            return f"NOT ({args[0]})"
        if name == "neg":
            return f"(-{args[0]})"
        if name == "round":
            if len(args) == 2:
                return f"ROUND({args[0]}, {args[1]})"
            return f"ROUND({args[0]})"
        if name in ("abs", "sqrt", "floor", "ceil", "upper", "lower", "length"):
            return f"{name.upper()}({args[0]})"
        if name == "power":
            return f"POWER({args[0]}, {args[1]})"
        if name == "cast_int":
            return f"CAST({args[0]} AS BIGINT)"
        if name == "cast_float":
            return f"CAST({args[0]} AS DOUBLE)"
        if name == "cast_str":
            return f"CAST({args[0]} AS VARCHAR)"
        if name == "cast_date":
            return f"CAST({args[0]} AS DATE)"
        if name == "coalesce":
            return f"COALESCE({', '.join(args)})"
        raise TondIRError(f"unknown external function {name!r}")


def generate_sql(program: Program, catalog_schemas: dict[str, list[str]], dialect: Dialect | None = None) -> str:
    """Convenience wrapper: render *program* to a SQL string."""
    return SQLGenerator(catalog_schemas, dialect).generate(program)
