"""TondIR to SQL code generation."""

from .sqlgen import SQLGenerator, generate_sql

__all__ = ["SQLGenerator", "generate_sql"]
