"""PyTond core: the paper's contribution (translation, TondIR, codegen)."""

from .anf import anf_source, to_anf
from .decorator import PytondFunction, pytond
from .translate.engine import TableInfo, Translator

__all__ = ["pytond", "PytondFunction", "Translator", "TableInfo", "to_anf", "anf_source"]
