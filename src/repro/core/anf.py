"""A-Normal Form conversion of Python function ASTs (Section III-B).

Nested expressions are hoisted into assignments to fresh variables so every
statement the translator sees is a *simple* operation: the arguments of any
call / subscript / binary operation are atomic (names, constants, constant
containers, lambdas, or single attribute accesses).
"""

from __future__ import annotations

import ast
import itertools

from ..errors import TranslationError

__all__ = ["to_anf", "anf_source", "ANFStatement"]

ANFStatement = ast.stmt


def _is_constant_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_atomic_const(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            k is not None and _is_atomic_const(k) and _is_atomic_const(v)
            for k, v in zip(node.keys, node.values)
        )
    return False


def _is_atomic_const(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) and isinstance(node.operand, ast.Constant):
        return True
    if _is_constant_container(node):
        return True
    if isinstance(node, ast.Call):
        # Constant constructors like np.array([...]) with constant args.
        return all(_is_atomic_const(a) for a in node.args) and _is_np_array_call(node)
    return False


def _is_np_array_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "array"
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _is_atomic(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return True
    if _is_atomic_const(node):
        return True
    if isinstance(node, ast.Lambda):
        return True
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return True
    if isinstance(node, ast.Slice):
        return all(
            part is None or _is_atomic(part)
            for part in (node.lower, node.upper, node.step)
        )
    return False


class _ANFTransformer:
    def __init__(self):
        self._counter = itertools.count(1)
        self.statements: list[ast.stmt] = []

    def fresh(self) -> str:
        return f"__anf{next(self._counter)}"

    # -- expression normalization -------------------------------------------------
    def atomize(self, node: ast.expr) -> ast.expr:
        """Return an atomic expression, hoisting *node* if needed."""
        simple = self.simplify(node)
        if _is_atomic(simple):
            return simple
        name = self.fresh()
        self.statements.append(
            ast.Assign(targets=[ast.Name(id=name, ctx=ast.Store())], value=simple)
        )
        return ast.Name(id=name, ctx=ast.Load())

    def simplify(self, node: ast.expr) -> ast.expr:
        """One-level simple expression: children are atomic."""
        if _is_atomic(node):
            return node
        if isinstance(node, ast.BinOp):
            return ast.BinOp(left=self.atomize(node.left), op=node.op, right=self.atomize(node.right))
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(op=node.op, operand=self.atomize(node.operand))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise TranslationError("chained comparisons are not supported")
            return ast.Compare(
                left=self.atomize(node.left), ops=node.ops,
                comparators=[self.atomize(node.comparators[0])],
            )
        if isinstance(node, ast.BoolOp):
            return ast.BoolOp(op=node.op, values=[self.atomize(v) for v in node.values])
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                func = ast.Attribute(value=self.atomize(func.value), attr=func.attr, ctx=ast.Load())
            elif not isinstance(func, ast.Name):
                raise TranslationError(f"unsupported call target: {ast.dump(func)}")
            args = [self.atomize(a) for a in node.args]
            keywords = [
                ast.keyword(arg=kw.arg, value=self.atomize(kw.value)) for kw in node.keywords
            ]
            return ast.Call(func=func, args=args, keywords=keywords)
        if isinstance(node, ast.Subscript):
            return ast.Subscript(
                value=self.atomize(node.value), slice=self.atomize(node.slice), ctx=node.ctx
            )
        if isinstance(node, ast.Attribute):
            return ast.Attribute(value=self.atomize(node.value), attr=node.attr, ctx=node.ctx)
        if isinstance(node, (ast.List, ast.Tuple)):
            ctor = type(node)
            return ctor(elts=[self.atomize(e) for e in node.elts], ctx=ast.Load())
        if isinstance(node, ast.Dict):
            return ast.Dict(
                keys=[self.atomize(k) if k is not None else None for k in node.keys],
                values=[self.atomize(v) for v in node.values],
            )
        raise TranslationError(f"unsupported expression: {ast.dump(node)}")

    # -- statements ----------------------------------------------------------
    def process(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise TranslationError("multiple assignment targets are not supported")
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = self.simplify(stmt.value)
                self.statements.append(ast.Assign(targets=[target], value=value))
                return
            if isinstance(target, ast.Subscript):
                new_target = ast.Subscript(
                    value=self.atomize(target.value),
                    slice=self.atomize(target.slice),
                    ctx=ast.Store(),
                )
                value = self.atomize(stmt.value)
                self.statements.append(ast.Assign(targets=[new_target], value=value))
                return
            raise TranslationError(f"unsupported assignment target: {ast.dump(target)}")
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                raise TranslationError("functions must return a value")
            value = self.atomize(stmt.value)
            self.statements.append(ast.Return(value=value))
            return
        if isinstance(stmt, ast.Expr):
            # Bare expression statements have no effect on the translation.
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None and isinstance(stmt.target, ast.Name):
            value = self.simplify(stmt.value)
            self.statements.append(
                ast.Assign(targets=[ast.Name(id=stmt.target.id, ctx=ast.Store())], value=value)
            )
            return
        raise TranslationError(f"unsupported statement: {ast.dump(stmt)}")


def to_anf(func_def: ast.FunctionDef) -> list[ast.stmt]:
    """Normalize the body of *func_def* into A-Normal Form statements."""
    transformer = _ANFTransformer()
    for stmt in func_def.body:
        transformer.process(stmt)
    module = ast.Module(body=transformer.statements, type_ignores=[])
    ast.fix_missing_locations(module)
    return transformer.statements


def anf_source(func_def: ast.FunctionDef) -> str:
    """The ANF body rendered back to Python source (for tests/debugging)."""
    statements = to_anf(func_def)
    module = ast.Module(body=statements, type_ignores=[])
    ast.fix_missing_locations(module)
    return ast.unparse(module)
