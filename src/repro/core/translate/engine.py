"""The Pandas/NumPy -> TondIR translator (Sections III-B/C/D of the paper).

A static abstract interpreter over the ANF-normalized function body: every
Python variable is bound to a symbolic value (:mod:`.symbols`), every
DataFrame/array operation appends TondIR rules.  The resulting program is
deliberately *unoptimized* — one rule per API call, exactly the
"Grizzly-simulated" baseline of the paper — and is then improved by the
optimizer passes (:mod:`..tondir.optimize`).
"""

from __future__ import annotations

import ast
import itertools

import numpy as np

from ...errors import TranslationError
from ..anf import to_anf
from ..tondir.ir import (
    Agg, AssignAtom, BinOp, Const, ExistsAtom, Ext, FilterAtom,
    Head, If, OuterAtom, Program, RelAtom, Rule, SortSpec, Term, Var, Win,
)
from .einsum_planner import _Emitter, lower_dense, lower_sparse
from .symbols import (
    ColumnInfo, SymConstArray, SymDtAccessor, SymFrame, SymGroupBy,
    SymRollingWindow, SymScalar, SymScalarRel, SymSeries, SymSeriesGroupBy,
    SymStrAccessor, sanitize,
)

__all__ = ["Translator", "TableInfo"]

_MODULES = {"np", "numpy", "pd", "pandas"}

_CMP_OPS = {
    ast.Eq: "=", ast.NotEq: "<>", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}
_BIN_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/", ast.Mod: "%"}

_AGG_FUNCS = {"sum": "sum", "mean": "avg", "min": "min", "max": "max",
              "count": "count", "nunique": "count_distinct", "size": "size",
              "std": "stddev", "var": "var", "first": "min"}

# Pandas aggregate names usable as window (transform/rolling) functions.
_WIN_AGGS = {"sum": "sum", "mean": "avg", "min": "min", "max": "max",
             "count": "count", "size": "count"}
_RANK_METHODS = {"min": "rank", "dense": "dense_rank", "first": "row_number"}
_RUNNING_FRAME = ("rows", "unbounded_preceding", 0, "current", 0)


class TableInfo:
    """Schema metadata for one input table, as seen by the translator."""

    def __init__(self, name: str, columns: list[str], dtypes: dict[str, str] | None = None,
                 unique: set[str] | None = None):
        self.name = name
        self.columns = list(columns)
        self.dtypes = dtypes or {}
        self.unique = unique or set()

    @classmethod
    def from_schema(cls, schema) -> "TableInfo":
        """Build from a :class:`repro.sqlengine.TableSchema`."""
        dtypes = {}
        for col, dt in zip(schema.columns, schema.dtypes):
            kind = getattr(dt, "kind", "O")
            dtypes[col] = {"i": "int", "u": "int", "f": "float", "b": "bool",
                           "M": "date"}.get(kind, "str")
        return cls(schema.name, schema.columns, dtypes, set(schema.unique_columns))


class _ModuleRef:
    def __init__(self, name: str):
        self.name = name


class Translator:
    """Translates one decorated function into a TondIR Program."""

    def __init__(
        self,
        tables: dict[str, TableInfo],
        pivot_values: dict[str, list] | None = None,
        layout: str = "dense",
        pivot_probe=None,
    ):
        self.tables = tables
        self.pivot_values = pivot_values or {}
        self.layout = layout
        # Optional callback (rel, column) -> list of distinct values, used
        # when pivot domains are not given in the decorator (the paper:
        # "or by querying the target columns before code generation").
        self.pivot_probe = pivot_probe
        self.rules: list[Rule] = []
        self.env: dict[str, object] = {}
        self._rel_counter = itertools.count(1)
        self._var_counter = itertools.count(1)
        self._sink: str | None = None
        self._emitter = _Emitter(new_rel=self.new_rel, emit=self.emit)

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def new_rel(self) -> str:
        return f"v{next(self._rel_counter)}"

    def fresh_var(self, base: str = "x") -> str:
        return f"{sanitize(base)}_{next(self._var_counter)}"

    def emit(self, rule: Rule) -> None:
        self.rules.append(rule)

    def base_unique(self) -> dict[str, set[str]]:
        return {info.name: set(info.unique) for info in self.tables.values()}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def translate(self, func_def: ast.FunctionDef) -> Program:
        params = [a.arg for a in func_def.args.args]
        for param in params:
            info = self.tables.get(param)
            if info is None:
                raise TranslationError(
                    f"no table metadata for parameter {param!r}; pass tables={{...}}"
                )
            cols = [
                ColumnInfo(
                    name=c, var=sanitize(c),
                    dtype=info.dtypes.get(c, "unknown"),
                    unique=c in info.unique,
                )
                for c in info.columns
            ]
            kind = "sparse" if (self.layout == "sparse" and set(info.columns) >= {"val"}) else "frame"
            self.env[param] = SymFrame(rel=info.name, cols=cols, kind=kind)

        statements = to_anf(func_def)
        result: object = None
        for stmt in statements:
            if isinstance(stmt, ast.Return):
                result = self.eval_expr(stmt.value)
                break
            self.exec_stmt(stmt)
        if result is None:
            raise TranslationError("function must end in a return statement")
        sink = self._finalize(result)
        return Program(rules=self.rules, sink=sink)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self.env[target.id] = self.eval_expr(stmt.value)
                return
            if isinstance(target, ast.Subscript):
                self._exec_setitem(target, stmt.value)
                return
        raise TranslationError(f"unsupported statement: {ast.dump(stmt)}")

    def _exec_setitem(self, target: ast.Subscript, value_node: ast.expr) -> None:
        frame_sym = self.eval_expr(target.value)
        key = self.eval_expr(target.slice)
        if not isinstance(key, SymScalar) or not isinstance(key.value, str):
            raise TranslationError("only df['column'] = ... assignment is supported")
        if not isinstance(frame_sym, SymFrame):
            raise TranslationError("subscript assignment requires a DataFrame")
        value = self.eval_expr(value_node)
        new_frame = self._frame_set_column(frame_sym, key.value, value)
        if isinstance(target.value, ast.Name):
            self.env[target.value.id] = new_frame
        else:
            raise TranslationError("subscript assignment target must be a name")

    def _frame_set_column(self, frame: SymFrame, name: str, value) -> SymFrame:
        if not frame.cols:  # empty DataFrame(): first column defines the frame
            series = self._as_series(value)
            return self._project_series_frame(series, name)
        if isinstance(value, SymScalar):
            value = SymSeries(frame=frame, term=self._const_term(value), dtype=value.dtype)
        if isinstance(value, SymSeries) and value.frame.rel == frame.rel:
            return self._with_computed_column(frame, name, value)
        if isinstance(value, (SymSeries, SymFrame)):
            return self._implicit_join_column(frame, name, value)
        raise TranslationError(f"cannot assign {type(value).__name__} as a column")

    def _with_computed_column(self, frame: SymFrame, name: str, series: SymSeries) -> SymFrame:
        rel = self.new_rel()
        out_var = self._unique_var(name, frame.vars)
        body = [frame.atom()] + list(series.extra_atoms) + [AssignAtom(out_var, series.term)]
        existing = [c for c in frame.cols if c.name != name]
        head_vars = [c.var for c in existing] + [out_var]
        self.emit(Rule(Head(rel, head_vars), body))
        cols = [c.renamed(c.name) for c in existing]
        cols.append(ColumnInfo(name=name, var=out_var, dtype=series.dtype))
        return SymFrame(rel=rel, cols=cols, kind=frame.kind,
                        index_cols=list(frame.index_cols), hidden_id=frame.hidden_id,
                        ordering=list(frame.ordering) if frame.ordering else None)

    def _implicit_join_column(self, frame: SymFrame, name: str, value) -> SymFrame:
        """Appending a column from another frame: the paper's implicit join.

        Both sides get a UID column, are joined on it, and the new column is
        projected in (Section III-C "Implicit Joins").
        """
        series = self._as_series(value)
        other = series.frame
        left_id = self._ensure_uid_frame(frame)
        right_id = self._ensure_uid_frame(other)
        rel = self.new_rel()
        right_atom = right_id.atom()
        # Join on the shared ID variable.
        renames: dict[str, str] = {}
        left_vars = set(left_id.vars)
        for pos, col in enumerate(right_id.cols):
            if col.var == "__uid":
                continue
            if col.var in left_vars:
                renames[col.var] = self.fresh_var(col.var)
                right_atom.vars[pos] = renames[col.var]
        term = series.term
        from ..tondir.ir import rename_term

        term = rename_term(term, renames)
        out_var = self._unique_var(name, left_id.vars)
        body = [left_id.atom(), right_atom, AssignAtom(out_var, term)]
        existing = [c for c in left_id.cols if c.name != name and c.var != "__uid"]
        head_vars = [c.var for c in existing] + [out_var]
        self.emit(Rule(Head(rel, head_vars), body))
        cols = [c.renamed(c.name) for c in existing]
        cols.append(ColumnInfo(name=name, var=out_var, dtype=series.dtype))
        return SymFrame(rel=rel, cols=cols, kind=frame.kind)

    def _ensure_uid_frame(self, frame: SymFrame) -> SymFrame:
        if any(c.var == "__uid" for c in frame.cols):
            return frame
        rel = self.new_rel()
        body = [frame.atom(), AssignAtom("__uid", Ext("uid", ()))]
        head_vars = ["__uid"] + frame.vars
        self.emit(Rule(Head(rel, head_vars), body))
        cols = [ColumnInfo(name="__uid", var="__uid", dtype="int", unique=True)]
        cols += [c.renamed(c.name) for c in frame.cols]
        return SymFrame(rel=rel, cols=cols, kind=frame.kind)

    def _project_series_frame(self, series: SymSeries, name: str) -> SymFrame:
        rel = self.new_rel()
        out_var = self._unique_var(name, [])
        body = [series.frame.atom()] + list(series.extra_atoms) + [AssignAtom(out_var, series.term)]
        self.emit(Rule(Head(rel, [out_var]), body))
        return SymFrame(rel=rel, cols=[ColumnInfo(name=name, var=out_var, dtype=series.dtype)])

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval_expr(self, node: ast.expr):
        if isinstance(node, ast.Name):
            if node.id in _MODULES:
                return _ModuleRef(node.id)
            if node.id not in self.env:
                raise TranslationError(f"unknown variable {node.id!r}")
            return self.env[node.id]
        if isinstance(node, ast.Constant):
            return SymScalar(node.value, dtype=_py_dtype(node.value))
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            # Constant elements flatten to python values; symbolic elements
            # (e.g. the frames of a pd.concat list) stay symbolic.
            out = []
            for e in node.elts:
                value = self.eval_expr(e)
                out.append(value.value if isinstance(value, SymScalar) else value)
            return out
        if isinstance(node, ast.Dict):
            return {
                self._const_value(k): self._const_value(v)
                for k, v in zip(node.keys, node.values)
            }
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            return node
        raise TranslationError(f"unsupported expression: {ast.dump(node)}")

    _SYMBOLIC_TYPES = (SymFrame, SymSeries, SymGroupBy, SymSeriesGroupBy,
                       SymScalarRel, SymStrAccessor, SymDtAccessor,
                       SymRollingWindow, SymConstArray)

    def _key_list(self, value, what: str) -> list[str]:
        """Normalize a column-key argument (one name or a list of names),
        rejecting symbolic elements with a clear error — lists may carry
        symbolic values for pd.concat, so consumers must validate."""
        keys = [value.value] if isinstance(value, SymScalar) else list(value)
        if not all(isinstance(k, str) for k in keys):
            raise TranslationError(f"{what} expects column-name strings")
        return keys

    def _const_value(self, node: ast.expr):
        value = self.eval_expr(node)
        if isinstance(value, SymScalar):
            return value.value
        if isinstance(value, (list, dict)):
            # Lists may carry symbolic elements (pd.concat operands); a
            # constant consumer must still reject those cleanly.
            items = value.values() if isinstance(value, dict) else value
            if any(isinstance(v, self._SYMBOLIC_TYPES) for v in items):
                raise TranslationError("expected a constant")
            return value
        raise TranslationError("expected a constant")

    # -- unary ----------------------------------------------------------------
    def _eval_unary(self, node: ast.UnaryOp):
        operand = self.eval_expr(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(operand, SymScalar):
                return SymScalar(-operand.value, operand.dtype)
            series = self._as_series(operand)
            return series.with_term(Ext("neg", (series.term,)))
        if isinstance(node.op, ast.Invert):
            series = self._as_series(operand)
            return self._negate_mask(series)
        raise TranslationError(f"unsupported unary operator {node.op!r}")

    def _negate_mask(self, series: SymSeries) -> SymSeries:
        exists = getattr(series, "exists_atoms", None) or []
        if exists:
            if len(exists) != 1 or not _is_true(series.term):
                raise TranslationError("cannot negate a combined mask containing isin")
            flipped = ExistsAtom(body=exists[0].body, negated=not exists[0].negated)
            out = series.with_term(Const(True))
            out.exists_atoms = [flipped]  # type: ignore[attr-defined]
            return out
        return series.with_term(Ext("not", (series.term,)), dtype="bool")

    # -- attribute ----------------------------------------------------------------
    def _eval_attribute(self, node: ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id in _MODULES:
            return _ModuleRef(f"{node.value.id}.{node.attr}")
        base = self.eval_expr(node.value)
        attr = node.attr
        if isinstance(base, SymFrame):
            if base.has_col(attr):
                return self._frame_col_series(base, attr)
            raise TranslationError(f"frame has no column {attr!r}")
        if isinstance(base, SymSeries):
            if attr == "str":
                return SymStrAccessor(base)
            if attr == "dt":
                return SymDtAccessor(base)
            raise TranslationError(f"unsupported Series attribute {attr!r}")
        if isinstance(base, SymDtAccessor):
            field = {"year": "year", "month": "month", "day": "day"}.get(attr)
            if field is None:
                raise TranslationError(f"unsupported .dt field {attr!r}")
            return base.series.with_term(Ext(field, (base.series.term,)), dtype="int")
        raise TranslationError(f"unsupported attribute access {attr!r} on {type(base).__name__}")

    def _frame_col_series(self, frame: SymFrame, name: str) -> SymSeries:
        col = frame.col(name)
        return SymSeries(frame=frame, term=Var(col.var), name=name, dtype=col.dtype)

    # -- subscript ----------------------------------------------------------------
    def _eval_subscript(self, node: ast.Subscript):
        base = self.eval_expr(node.value)
        key = self.eval_expr(node.slice)
        if isinstance(base, SymFrame):
            if isinstance(key, SymScalar) and isinstance(key.value, str):
                return self._frame_col_series(base, key.value)
            if isinstance(key, list):
                return self._project(base, key)
            if isinstance(key, SymSeries):
                return self._filter_frame(base, key)
        if isinstance(base, SymSeries):
            if isinstance(key, SymSeries):
                filtered = self._filter_frame(base.frame, key)
                # Rebase the series term onto the filtered frame (same vars).
                out = SymSeries(frame=filtered, term=base.term, name=base.name, dtype=base.dtype)
                return out
        if isinstance(base, SymGroupBy):
            if isinstance(key, SymScalar) and isinstance(key.value, str):
                return SymSeriesGroupBy(base, key.value)
            if isinstance(key, list):
                return SymGroupBy(base.frame, base.keys, base.as_index)
        if isinstance(base, SymStrAccessor) and isinstance(key, SymScalar):
            raise TranslationError("str slicing uses .str.slice(start, stop)")
        raise TranslationError(
            f"unsupported subscript {type(base).__name__}[{type(key).__name__}]"
        )

    def _project(self, frame: SymFrame, names: list[str]) -> SymFrame:
        cols = [frame.col(n) for n in names]
        rel = self.new_rel()
        ordering = None
        head_cols = [c.renamed(c.name) for c in cols]
        if frame.ordering is not None:
            # Keep ordering key columns alive (hidden) through projections so
            # a later head()/sink can re-establish the row order.
            kept = {c.var for c in cols}
            for var, _asc in frame.ordering:
                if var not in kept:
                    src = next((c for c in frame.cols if c.var == var), None)
                    if src is None:
                        break
                    head_cols.append(src.renamed(f"__ord_{var}"))
                    kept.add(var)
            else:
                ordering = list(frame.ordering)
        self.emit(Rule(Head(rel, [c.var for c in head_cols]), [frame.atom()]))
        return SymFrame(rel=rel, cols=head_cols, kind=frame.kind,
                        hidden_id=frame.hidden_id, ordering=ordering)

    def _filter_frame(self, frame: SymFrame, mask: SymSeries) -> SymFrame:
        if mask.frame.rel != frame.rel:
            raise TranslationError("filter mask must derive from the same DataFrame")
        rel = self.new_rel()
        body: list = [frame.atom()] + list(mask.extra_atoms)
        for exists in getattr(mask, "exists_atoms", None) or []:
            body.append(exists)
        if not _is_true(mask.term):
            body.append(FilterAtom(mask.term))
        self.emit(Rule(Head(rel, list(frame.vars)), body))
        return SymFrame(rel=rel, cols=[c.renamed(c.name) for c in frame.cols],
                        kind=frame.kind, index_cols=list(frame.index_cols),
                        hidden_id=frame.hidden_id,
                        ordering=list(frame.ordering) if frame.ordering else None)

    # -- binary / compare / bool ----------------------------------------------------
    def _const_term(self, scalar: SymScalar) -> Term:
        return Const(scalar.value)

    def _as_series(self, value) -> SymSeries:
        if isinstance(value, SymSeries):
            return value
        if isinstance(value, SymFrame) and len(value.cols) == 1:
            return self._frame_col_series(value, value.cols[0].name)
        if isinstance(value, SymFrame) and value.kind == "array" and value.width == 1:
            # A column vector behaves as a Series (its ID column is the index).
            return self._frame_col_series(value, value.value_cols()[0].name)
        if isinstance(value, SymFrame) and value.index_cols and len(value.cols) == len(value.index_cols) + 1:
            value_col = next(c for c in value.cols if c.name not in value.index_cols)
            return self._frame_col_series(value, value_col.name)
        raise TranslationError(f"expected a Series, got {type(value).__name__}")

    def _coerce_operand(self, value, reference: SymSeries | None):
        """Turn an operand into (term, extra_atoms, dtype)."""
        if isinstance(value, SymScalar):
            const = value.value
            if (
                reference is not None and reference.dtype == "date"
                and isinstance(const, str)
            ):
                const = np.datetime64(const, "D")
            return Const(const), [], _py_dtype(const)
        if isinstance(value, SymScalarRel):
            return Var(value.var), [value.atom()], value.dtype
        if isinstance(value, SymSeries):
            if reference is not None and value.frame.rel != reference.frame.rel:
                raise TranslationError(
                    "cannot combine Series from different DataFrames; merge them first"
                )
            return value.term, list(value.extra_atoms), value.dtype
        raise TranslationError(f"unsupported operand {type(value).__name__}")

    def _eval_binop(self, node: ast.BinOp):
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        # Pandas boolean masks combine with & / | (ast.BitAnd / ast.BitOr).
        if isinstance(node.op, ast.BitAnd):
            return self._combine_masks("and", [left, right])
        if isinstance(node.op, ast.BitOr):
            return self._combine_masks("or", [left, right])
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise TranslationError(f"unsupported binary operator {node.op!r}")
        if isinstance(left, SymScalar) and isinstance(right, SymScalar):
            return SymScalar(_fold_py(op, left.value, right.value))
        if isinstance(left, SymScalarRel) and isinstance(right, (SymScalar, SymScalarRel)) or (
            isinstance(right, SymScalarRel) and isinstance(left, SymScalar)
        ):
            return self._scalar_rel_binop(op, left, right)
        if isinstance(left, (SymFrame,)) and left.kind == "array":
            return self._array_elementwise(op, left, right)
        if isinstance(right, SymFrame) and right.kind == "array":
            return self._array_elementwise(op, right, left, swapped=True)
        series_ref = left if isinstance(left, SymSeries) else right if isinstance(right, SymSeries) else None
        lt, lx, ld = self._coerce_operand(left, series_ref if isinstance(right, SymSeries) else None)
        rt, rx, rd = self._coerce_operand(right, series_ref if isinstance(left, SymSeries) else None)
        frame = series_ref.frame if series_ref is not None else None
        if frame is None:
            raise TranslationError("binary operation needs at least one Series")
        dtype = "float" if op == "/" else ("float" if "float" in (ld, rd) else ld or rd)
        out = SymSeries(frame=frame, term=BinOp(op, lt, rt), dtype=dtype)
        out.extra_atoms = lx + rx
        return out

    def _scalar_rel_binop(self, op: str, left, right) -> SymScalarRel:
        body: list = []
        terms: list[Term] = []
        for side in (left, right):
            if isinstance(side, SymScalarRel):
                body.append(side.atom())
                terms.append(Var(side.var))
            else:
                terms.append(Const(side.value))
        var = f"s_{next(self._var_counter)}"
        body.append(AssignAtom(var, BinOp(op, terms[0], terms[1])))
        rel = self.new_rel()
        self.emit(Rule(Head(rel, [var]), body))
        return SymScalarRel(rel=rel, var=var, dtype="float")

    def _array_elementwise(self, op: str, array: SymFrame, other, swapped: bool = False):
        if not isinstance(other, SymScalar):
            raise TranslationError("array elementwise ops support scalars only")
        const = Const(other.value)
        values = array.value_cols()
        out_vars = [self.fresh_var(c.var) for c in values]
        body: list = [array.atom()]
        for out, col in zip(out_vars, values):
            term = BinOp(op, const, Var(col.var)) if swapped else BinOp(op, Var(col.var), const)
            body.append(AssignAtom(out, term))
        rel = self.new_rel()
        id_cols = [c for c in array.cols if c.var == "ID"]
        head = [c.var for c in id_cols] + out_vars
        self.emit(Rule(Head(rel, head), body))
        cols = [c.renamed(c.name) for c in id_cols]
        cols += [ColumnInfo(name=v, var=v, dtype="float") for v in out_vars]
        return SymFrame(rel=rel, cols=cols, kind="array")

    def _eval_compare(self, node: ast.Compare):
        op = _CMP_OPS.get(type(node.ops[0]))
        if op is None:
            raise TranslationError(f"unsupported comparison {node.ops[0]!r}")
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.comparators[0])
        if isinstance(left, SymFrame) and left.kind == "array" and left.width == 1:
            left = self._as_series(left)
        if isinstance(right, SymFrame) and right.kind == "array" and right.width == 1:
            right = self._as_series(right)
        series_ref = left if isinstance(left, SymSeries) else right if isinstance(right, SymSeries) else None
        if series_ref is None:
            raise TranslationError("comparison needs at least one Series")
        lt, lx, _ = self._coerce_operand(left, series_ref)
        rt, rx, _ = self._coerce_operand(right, series_ref)
        out = SymSeries(frame=series_ref.frame, term=BinOp(op, lt, rt), dtype="bool")
        out.extra_atoms = lx + rx
        return out

    def _eval_boolop(self, node: ast.BoolOp):
        op = "and" if isinstance(node.op, ast.And) else "or"
        values = [self.eval_expr(v) for v in node.values]
        return self._combine_masks(op, values)

    def _combine_masks(self, op: str, values: list) -> SymSeries:
        series = [self._as_series(v) for v in values]
        frame = series[0].frame
        exists: list[ExistsAtom] = []
        terms: list[Term] = []
        extra: list[RelAtom] = []
        for s in series:
            if s.frame.rel != frame.rel:
                raise TranslationError("cannot combine masks from different DataFrames")
            s_exists = getattr(s, "exists_atoms", None) or []
            if s_exists and op == "or":
                raise TranslationError("isin masks cannot be OR-combined")
            exists.extend(s_exists)
            if not _is_true(s.term):
                terms.append(s.term)
            extra.extend(s.extra_atoms)
        term: Term = Const(True)
        if terms:
            term = terms[0]
            for t in terms[1:]:
                term = BinOp(op, term, t)
        out = SymSeries(frame=frame, term=term, dtype="bool")
        out.extra_atoms = extra
        if exists:
            out.exists_atoms = exists  # type: ignore[attr-defined]
        return out

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call):
        func = node.func
        kwargs = {kw.arg: kw.value for kw in node.keywords}
        if isinstance(func, ast.Name):
            if func.id == "len":
                target = self.eval_expr(node.args[0])
                return self._scalar_agg(self._count_series(target), "count")
            raise TranslationError(f"unsupported function {func.id!r}")
        if not isinstance(func, ast.Attribute):
            raise TranslationError("unsupported call form")

        base = self.eval_expr(func.value)
        method = func.attr
        if isinstance(base, _ModuleRef):
            return self._module_call(base, method, node.args, kwargs)
        if isinstance(base, SymFrame):
            return self._frame_call(base, method, node.args, kwargs)
        if isinstance(base, SymSeries):
            return self._series_call(base, method, node.args, kwargs)
        if isinstance(base, SymGroupBy):
            return self._groupby_call(base, method, node.args, kwargs)
        if isinstance(base, SymSeriesGroupBy):
            return self._series_groupby_call(base, method, node.args, kwargs)
        if isinstance(base, SymStrAccessor):
            return self._str_call(base, method, node.args, kwargs)
        if isinstance(base, SymRollingWindow):
            return self._rolling_call(base, method, node.args, kwargs)
        if isinstance(base, SymScalarRel):
            raise TranslationError(f"unsupported method {method!r} on a scalar")
        raise TranslationError(f"unsupported method {method!r} on {type(base).__name__}")

    def _count_series(self, target) -> SymSeries:
        if isinstance(target, SymFrame):
            col = target.cols[0]
            return self._frame_col_series(target, col.name)
        return self._as_series(target)

    # -- numpy / pandas module functions ----------------------------------------
    def _module_call(self, ref: _ModuleRef, method: str, args, kwargs):
        name = ref.name.split(".")[-1] if "." in ref.name else method
        # Either np.einsum(...) parsed as module 'np' + method 'einsum', or
        # the attribute itself resolved to 'np.einsum'.
        if "." in ref.name and ref.name.split(".")[-1] != method:
            raise TranslationError(f"unsupported module call {ref.name}.{method}")
        if method == "einsum":
            return self._einsum(args, kwargs)
        if method == "array":
            values = self.eval_expr(args[0])
            return SymConstArray(values=values)
        if method == "sqrt":
            series = self._as_series(self.eval_expr(args[0]))
            return series.with_term(Ext("sqrt", (series.term,)), dtype="float")
        if method == "abs":
            series = self._as_series(self.eval_expr(args[0]))
            return series.with_term(Ext("abs", (series.term,)), dtype=series.dtype)
        if method == "where":
            cond = self._as_series(self.eval_expr(args[0]))
            then = self.eval_expr(args[1])
            other = self.eval_expr(args[2])
            tt, tx, td = self._coerce_operand(then, cond if isinstance(then, SymSeries) else None)
            ot, ox, _ = self._coerce_operand(other, cond if isinstance(other, SymSeries) else None)
            out = cond.with_term(If(cond.term, tt, ot), dtype=td)
            out.extra_atoms = cond.extra_atoms + tx + ox
            return out
        if method == "DataFrame":
            if args:
                raise TranslationError("only empty pd.DataFrame() construction is supported")
            return SymFrame(rel="", cols=[])
        if method == "concat":
            operands = self.eval_expr(args[0]) if args else None
            if not isinstance(operands, list) or not operands or not all(
                isinstance(f, SymFrame) for f in operands
            ):
                raise TranslationError("pd.concat expects a list of DataFrames")
            return self._concat(operands)
        if method == "dot":
            return self._einsum_spec("ij,jk->ik", [self.eval_expr(a) for a in args])
        raise TranslationError(f"unsupported module function {method!r}")

    def _einsum(self, args, kwargs):
        spec_sym = self.eval_expr(args[0])
        if not isinstance(spec_sym, SymScalar) or not isinstance(spec_sym.value, str):
            raise TranslationError("einsum spec must be a string literal")
        operands = [self.eval_expr(a) for a in args[1:]]
        return self._einsum_spec(spec_sym.value, operands)

    def _einsum_spec(self, spec: str, operands: list):
        if self.layout == "sparse":
            return lower_sparse(self._emitter, spec, operands)
        from .einsum_planner import optimize_path, parse_spec

        inputs, output = parse_spec(spec)
        if len(inputs) > 2:
            steps = optimize_path(inputs, output)
            ops = list(operands)
            result = None
            for a, b, pair_spec in steps:
                pair_ops = [ops[a], ops[b]] if a != b else [ops[a]]
                result = lower_dense(self._emitter, pair_spec, pair_ops)
                ops = [op for k, op in enumerate(ops) if k not in (a, b)]
                ops.append(result)
            return result
        return lower_dense(self._emitter, spec, operands)

    def _concat(self, frames: list[SymFrame]) -> SymFrame:
        """``pd.concat([...])`` as a TondIR union: one rule per input frame,
        all sharing the output head relation — the Datalog encoding of bag
        union, which :mod:`..codegen.sqlgen` renders as ``UNION ALL``.

        Columns align by name like the runtime ``concat`` (missing columns
        become NULL); a frame sharing no column with the others is rejected.
        """
        columns: list[str] = list(frames[0].column_names)
        seen = set(columns)
        for f in frames[1:]:
            for name in f.column_names:
                if name not in seen:
                    seen.add(name)
                    columns.append(name)
        # Same overlap rule as the eager dataframe concat: a frame sharing
        # no column with the rest is rejected (empty frames are allowed).
        if len(frames) > 1:
            for i, f in enumerate(frames):
                others: set = set()
                for j, g in enumerate(frames):
                    if j != i:
                        others.update(g.column_names)
                if f.column_names and others and not (set(f.column_names) & others):
                    raise TranslationError(
                        "pd.concat frames must share at least one column"
                    )
        rel = self.new_rel()
        out_cols: list[ColumnInfo] = []
        for name in columns:
            dtype = next((f.col(name).dtype for f in frames if f.has_col(name)),
                         "unknown")
            out_cols.append(ColumnInfo(name=name, var=self.fresh_var(name),
                                       dtype=dtype))
        for f in frames:
            body: list = [f.atom()]
            head_vars: list[str] = []
            for name in columns:
                if f.has_col(name):
                    head_vars.append(f.col(name).var)
                else:
                    null_var = self.fresh_var(name)
                    body.append(AssignAtom(null_var, Const(None)))
                    head_vars.append(null_var)
            self.emit(Rule(Head(rel, head_vars), body))
        return SymFrame(rel=rel, cols=out_cols, kind=frames[0].kind)

    # -- DataFrame methods ---------------------------------------------------------
    def _frame_call(self, frame: SymFrame, method: str, args, kwargs):
        if method == "merge":
            return self._merge(frame, args, kwargs)
        if method == "groupby":
            keys = self._key_list(self.eval_expr(args[0]), "groupby")
            as_index = True
            if "as_index" in kwargs:
                as_index = bool(self._const_value(kwargs["as_index"]))
            return SymGroupBy(frame=frame, keys=keys, as_index=as_index)
        if method == "sort_values":
            return self._sort_values(frame, args, kwargs)
        if method == "head":
            n = int(self._const_value(args[0])) if args else 5
            return self._head(frame, n)
        if method == "nlargest":
            n = int(self._const_value(args[0]))
            keys = self._key_list(self.eval_expr(args[1]), "nlargest")
            sorted_frame = self._emit_sort(frame, keys, [False] * len(keys), limit=n)
            return sorted_frame
        if method == "drop":
            return self._drop(frame, args, kwargs)
        if method == "rename":
            mapping = self._const_value(kwargs["columns"]) if "columns" in kwargs else self._const_value(args[0])
            cols = [c.renamed(mapping.get(c.name, c.name)) for c in frame.cols]
            return SymFrame(rel=frame.rel, cols=cols, kind=frame.kind,
                            index_cols=list(frame.index_cols), hidden_id=frame.hidden_id,
                            ordering=list(frame.ordering) if frame.ordering else None)
        if method == "reset_index":
            return SymFrame(rel=frame.rel, cols=[c.renamed(c.name) for c in frame.cols],
                            kind=frame.kind, index_cols=[], hidden_id=frame.hidden_id,
                            ordering=list(frame.ordering) if frame.ordering else None)
        if method == "drop_duplicates":
            subset = None
            if args:
                val = self.eval_expr(args[0])
                subset = [val.value] if isinstance(val, SymScalar) else list(val)
            if "subset" in kwargs:
                val = self.eval_expr(kwargs["subset"])
                subset = [val.value] if isinstance(val, SymScalar) else list(val)
            target = self._project(frame, subset) if subset else frame
            rel = self.new_rel()
            self.emit(Rule(Head(rel, list(target.vars), distinct=True), [target.atom()]))
            return SymFrame(rel=rel, cols=[c.renamed(c.name) for c in target.cols], kind=frame.kind)
        if method == "to_numpy":
            return self._to_numpy(frame)
        if method == "copy":
            return frame
        if method == "pivot_table":
            return self._pivot_table(frame, args, kwargs)
        if method == "aggregate" or method == "agg":
            return self._frame_aggregate(frame, args, kwargs)
        if method == "apply":
            return self._frame_apply(frame, args, kwargs)
        if method == "count":
            series = self._frame_col_series(frame, frame.cols[0].name)
            return self._scalar_agg(series, "count")
        if method == "fillna":
            value = self._const_value(args[0])
            cols = []
            rel = self.new_rel()
            body: list = [frame.atom()]
            out_vars = []
            for c in frame.cols:
                out = self.fresh_var(c.var)
                body.append(AssignAtom(out, Ext("coalesce", (Var(c.var), Const(value)))))
                out_vars.append(out)
                cols.append(ColumnInfo(name=c.name, var=out, dtype=c.dtype))
            self.emit(Rule(Head(rel, out_vars), body))
            return SymFrame(rel=rel, cols=cols, kind=frame.kind)
        if method in ("sum", "all", "round", "nonzero", "compress", "transpose") and frame.kind == "array":
            return self._array_call(frame, method, args, kwargs)
        raise TranslationError(f"unsupported DataFrame method {method!r}")

    def _sort_values(self, frame: SymFrame, args, kwargs) -> SymFrame:
        by_node = kwargs.get("by") or (args[0] if args else None)
        if by_node is None:
            raise TranslationError("sort_values requires by=")
        keys = self._key_list(self.eval_expr(by_node), "sort_values")
        ascending: list[bool] = [True] * len(keys)
        if "ascending" in kwargs:
            asc = self.eval_expr(kwargs["ascending"])
            if isinstance(asc, SymScalar):
                ascending = [bool(asc.value)] * len(keys)
            else:
                ascending = [bool(a) for a in asc]
        return self._emit_sort(frame, keys, ascending, limit=None)

    def _emit_sort(self, frame: SymFrame, keys: list[str], ascending: list[bool], limit) -> SymFrame:
        rel = self.new_rel()
        key_pairs = [(frame.col(k).var, asc) for k, asc in zip(keys, ascending)]
        sort = SortSpec(keys=list(key_pairs), limit=limit)
        self.emit(Rule(Head(rel, list(frame.vars), sort=sort), [frame.atom()]))
        return SymFrame(rel=rel, cols=[c.renamed(c.name) for c in frame.cols],
                        kind=frame.kind, index_cols=list(frame.index_cols),
                        hidden_id=frame.hidden_id, ordering=list(key_pairs))

    def _head(self, frame: SymFrame, n: int) -> SymFrame:
        # Peephole: head() directly after sort_values folds into its rule so
        # ORDER BY + LIMIT stay in one CTE (Section III-E "Sort and Limit").
        defining = self.rules[-1] if self.rules else None
        if (
            defining is not None
            and defining.head.rel == frame.rel
            and defining.head.sort is not None
            and defining.head.sort.limit is None
        ):
            defining.head.sort.limit = n
            return frame
        rel = self.new_rel()
        keys = [kv for kv in (frame.ordering or []) if kv[0] in frame.vars]
        self.emit(Rule(Head(rel, list(frame.vars), sort=SortSpec(keys=keys, limit=n)),
                       [frame.atom()]))
        return SymFrame(rel=rel, cols=[c.renamed(c.name) for c in frame.cols], kind=frame.kind,
                        ordering=keys or None)

    def _drop(self, frame: SymFrame, args, kwargs) -> SymFrame:
        names_node = kwargs.get("columns") or (args[0] if args else None)
        if names_node is None:
            raise TranslationError("drop requires columns")
        names = self.eval_expr(names_node)
        names = [names.value] if isinstance(names, SymScalar) else list(names)
        dropped = [c for c in frame.cols if c.name in names]
        kept = [c.renamed(c.name) for c in frame.cols if c.name not in names]
        # Keep a dropped unique id column alive under a hidden name so a
        # following to_numpy() can reuse it (the paper "ignores" such drops).
        hidden = next((c for c in dropped if c.unique and c.dtype == "int"), None)
        rel = self.new_rel()
        out_cols = list(kept)
        if hidden is not None:
            out_cols.append(ColumnInfo(name="__hidden_id", var=hidden.var,
                                       dtype=hidden.dtype, unique=True))
        self.emit(Rule(Head(rel, [c.var for c in out_cols]), [frame.atom()]))
        return SymFrame(rel=rel, cols=out_cols, kind=frame.kind)

    def _to_numpy(self, frame: SymFrame) -> SymFrame:
        """Frame -> dense array (ID, c0..cn); reuses a unique id when known."""
        id_col = next(
            (c for c in frame.cols if c.unique and c.dtype == "int"), None
        )
        body: list = [frame.atom()]
        value_cols = [c for c in frame.cols if c is not id_col and c.name != "__hidden_id"]
        if id_col is None:
            body.append(AssignAtom("__uid", Ext("uid", ())))
            id_var = "__uid"
        else:
            id_var = id_col.var
        rel = self.new_rel()
        bound = set(frame.vars)
        out_vars = []
        for i, c in enumerate(value_cols):
            out = f"c{i}"
            if out == c.var:
                out_vars.append(out)
                continue
            if out in bound:
                out = self.fresh_var(out)
            body.append(AssignAtom(out, Var(c.var)))
            out_vars.append(out)
        if id_var != "ID":
            body.append(AssignAtom("ID", Var(id_var)))
        self.emit(Rule(Head(rel, ["ID"] + out_vars), body))
        cols = [ColumnInfo(name="ID", var="ID", dtype="int", unique=True)]
        cols += [ColumnInfo(name=v, var=v, dtype="float") for v in out_vars]
        return SymFrame(rel=rel, cols=cols, kind="array")

    def _pivot_table(self, frame: SymFrame, args, kwargs):
        index = self._const_value(kwargs["index"])
        columns = self._const_value(kwargs["columns"])
        values = self._const_value(kwargs["values"])
        aggfunc = self._const_value(kwargs.get("aggfunc", ast.Constant("sum")))
        distinct_values = self.pivot_values.get(columns)
        if distinct_values is None and self.pivot_probe is not None:
            base_rel = self._pivot_base_relation(frame, columns)
            if base_rel is not None:
                distinct_values = self.pivot_probe(base_rel, columns)
        if distinct_values is None:
            raise TranslationError(
                f"pivot_table on {columns!r} needs pivot_values in the decorator "
                "(or a database connection to query them)"
            )
        func = _AGG_FUNCS.get(aggfunc, aggfunc)
        idx_col = frame.col(index)
        col_col = frame.col(columns)
        val_col = frame.col(values)
        rel = self.new_rel()
        body: list = [frame.atom()]
        out_vars = []
        out_cols = [ColumnInfo(name=index, var=idx_col.var, dtype=idx_col.dtype, unique=True)]
        for dv in distinct_values:
            out = self._unique_var(str(dv), frame.vars + out_vars)
            cond = BinOp("=", Var(col_col.var), Const(dv))
            if func == "count":
                # COUNT of a pivot cell = SUM(CASE WHEN match THEN 1 ELSE 0).
                agg = Agg("sum", If(cond, Const(1), Const(0)))
            elif func == "sum":
                agg = Agg("sum", If(cond, Var(val_col.var), Const(0)))
            else:
                # avg/min/max must ignore non-matching rows entirely (NULL).
                agg = Agg(func, If(cond, Var(val_col.var), Const(None)))
            body.append(AssignAtom(out, agg))
            out_vars.append(out)
            out_cols.append(ColumnInfo(name=str(dv), var=out, dtype="float"))
        self.emit(Rule(Head(rel, [idx_col.var] + out_vars, group=[idx_col.var]), body))
        return SymFrame(rel=rel, cols=out_cols, index_cols=[index])

    def _pivot_base_relation(self, frame: SymFrame, column: str) -> str | None:
        """Base table providing *column*, if its domain can be probed."""
        for info in self.tables.values():
            if column in info.columns:
                return info.name
        return None

    def _frame_aggregate(self, frame: SymFrame, args, kwargs):
        spec = self.eval_expr(args[0])
        if isinstance(spec, SymScalar):
            func = _AGG_FUNCS[spec.value]
            rel = self.new_rel()
            body: list = [frame.atom()]
            out_vars = []
            cols = []
            for c in frame.cols:
                out = self.fresh_var(c.var)
                body.append(AssignAtom(out, Agg(func, Var(c.var))))
                out_vars.append(out)
                cols.append(ColumnInfo(name=c.name, var=out, dtype=c.dtype))
            self.emit(Rule(Head(rel, out_vars), body))
            return SymFrame(rel=rel, cols=cols)
        raise TranslationError("frame aggregate supports a single function name")

    def _frame_apply(self, frame: SymFrame, args, kwargs):
        lam = args[0]
        axis = self._const_value(kwargs["axis"]) if "axis" in kwargs else (
            self._const_value(args[1]) if len(args) > 1 else 0
        )
        if not isinstance(lam, ast.Lambda) or axis != 1:
            raise TranslationError("apply supports lambda with axis=1 only")
        row_param = lam.args.args[0].arg
        term = self._lambda_term(lam.body, row_param, frame)
        return SymSeries(frame=frame, term=term, dtype="unknown")

    def _lambda_term(self, node: ast.expr, row: str, frame: SymFrame) -> Term:
        if isinstance(node, ast.Constant):
            return Const(node.value)
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) and node.value.id == row:
            key = node.slice
            if isinstance(key, ast.Constant):
                return Var(frame.col(key.value).var)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) and node.value.id == row:
            return Var(frame.col(node.attr).var)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise TranslationError("unsupported operator in lambda")
            return BinOp(op, self._lambda_term(node.left, row, frame),
                         self._lambda_term(node.right, row, frame))
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = _CMP_OPS[type(node.ops[0])]
            return BinOp(op, self._lambda_term(node.left, row, frame),
                         self._lambda_term(node.comparators[0], row, frame))
        if isinstance(node, ast.IfExp):
            return If(self._lambda_term(node.test, row, frame),
                      self._lambda_term(node.body, row, frame),
                      self._lambda_term(node.orelse, row, frame))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return Ext("neg", (self._lambda_term(node.operand, row, frame),))
        raise TranslationError(f"unsupported lambda expression: {ast.dump(node)}")

    # -- dense array methods --------------------------------------------------------
    def _array_call(self, frame: SymFrame, method: str, args, kwargs):
        if method == "sum":
            axis = None
            if "axis" in kwargs:
                axis = self._const_value(kwargs["axis"])
            elif args:
                axis = self._const_value(args[0])
            spec = {None: "ij->", 0: "ij->j", 1: "ij->i"}[axis]
            if frame.width == 1 and axis in (None, 0):
                spec = "i->"
            return self._einsum_spec(spec, [frame])
        if method == "round":
            digits = int(self._const_value(args[0])) if args else 0
            values = frame.value_cols()
            rel = self.new_rel()
            body: list = [frame.atom()]
            out_vars = []
            for c in values:
                out = self.fresh_var(c.var)
                body.append(AssignAtom(out, Ext("round", (Var(c.var), Const(digits)))))
                out_vars.append(out)
            self.emit(Rule(Head(rel, ["ID"] + out_vars), body))
            cols = [ColumnInfo(name="ID", var="ID", dtype="int", unique=True)]
            cols += [ColumnInfo(name=v, var=v, dtype="float") for v in out_vars]
            return SymFrame(rel=rel, cols=cols, kind="array")
        if method == "all":
            # all(v) == (min over the boolean-as-int values) for 0/1 data.
            values = frame.value_cols()
            rel = self.new_rel()
            arg = values[0].var
            self.emit(Rule(Head(rel, ["v"]), [frame.atom(), AssignAtom("v", Agg("min", Var(arg)))]))
            return SymScalarRel(rel=rel, var="v", dtype="float")
        if method == "nonzero":
            values = frame.value_cols()
            rel = self.new_rel()
            body = [frame.atom(), FilterAtom(BinOp("<>", Var(values[0].var), Const(0)))]
            self.emit(Rule(Head(rel, ["ID"]), body))
            return SymFrame(rel=rel, cols=[ColumnInfo(name="ID", var="ID", dtype="int", unique=True)],
                            kind="array")
        if method == "compress":
            mask = self._const_value(args[0])
            axis = self._const_value(kwargs["axis"]) if "axis" in kwargs else 1
            if axis != 1:
                raise TranslationError("compress supports axis=1 only")
            values = frame.value_cols()
            kept = [c for keep, c in zip(mask, values) if keep]
            rel = self.new_rel()
            self.emit(Rule(Head(rel, ["ID"] + [c.var for c in kept]), [frame.atom()]))
            cols = [ColumnInfo(name="ID", var="ID", dtype="int", unique=True)]
            cols += [c.renamed(c.name) for c in kept]
            return SymFrame(rel=rel, cols=cols, kind="array")
        if method == "transpose":
            return self._einsum_spec("ij->ji", [frame])
        raise TranslationError(f"unsupported array method {method!r}")

    # -- merge --------------------------------------------------------------
    def _merge(self, left: SymFrame, args, kwargs) -> SymFrame:
        right = self.eval_expr(args[0])
        if not isinstance(right, SymFrame):
            raise TranslationError("merge target must be a DataFrame")
        how = "inner"
        if "how" in kwargs:
            how = self._const_value(kwargs["how"])
        on = left_on = right_on = None
        if "on" in kwargs:
            on = self._const_value(kwargs["on"])
        if "left_on" in kwargs:
            left_on = self._const_value(kwargs["left_on"])
        if "right_on" in kwargs:
            right_on = self._const_value(kwargs["right_on"])
        if on is not None:
            left_on = right_on = on
        if how == "cross":
            left_keys: list[str] = []
            right_keys: list[str] = []
        else:
            if left_on is None or right_on is None:
                common = [c for c in left.column_names if c in set(right.column_names)]
                if not common:
                    raise TranslationError("no common columns to merge on")
                left_on = right_on = common
            left_keys = [left_on] if isinstance(left_on, str) else list(left_on)
            right_keys = [right_on] if isinstance(right_on, str) else list(right_on)

        from ...dataframe.merge import resolve_merged_columns

        left_pairs, right_pairs = resolve_merged_columns(
            left.column_names, right.column_names, left_keys, right_keys, ("_x", "_y")
        )

        # Variable naming: join keys share a variable; everything else is
        # unique (Section III-C).
        used: list[str] = []
        left_atom = RelAtom(left.rel, [""] * len(left.cols))
        right_atom = RelAtom(right.rel, [""] * len(right.cols))
        out_cols: list[ColumnInfo] = []
        left_var_of: dict[str, str] = {}
        for pos, (col, (src, out_name)) in enumerate(zip(left.cols, left_pairs)):
            var = self._unique_var(out_name, used)
            used.append(var)
            left_atom.vars[pos] = var
            left_var_of[src] = var
            out_cols.append(ColumnInfo(name=out_name, var=var, dtype=col.dtype, unique=col.unique))

        key_var: dict[str, str] = {}
        for lk, rk in zip(left_keys, right_keys):
            key_var[rk] = left_var_of[lk]

        right_out: list[ColumnInfo] = []
        right_pair_map = dict(right_pairs)
        pairs_for_outer: list[tuple[str, str]] = []
        key_copies: list[AssignAtom] = []
        for pos, col in enumerate(right.cols):
            if col.name in key_var and how in ("inner", "cross"):
                shared = key_var[col.name]
                right_atom.vars[pos] = shared
                if col.name in right_pair_map:
                    # Differently-named keys keep the right column too
                    # (Pandas keeps both c_custkey and o_custkey).
                    var = self._unique_var(right_pair_map[col.name], used)
                    used.append(var)
                    key_copies.append(AssignAtom(var, Var(shared)))
                    right_out.append(ColumnInfo(name=right_pair_map[col.name], var=var,
                                                dtype=col.dtype, unique=col.unique))
                continue
            if col.name in key_var:
                # Outer joins keep both sides separate + OuterAtom pairs.
                var = self._unique_var(col.name + "_r", used)
                used.append(var)
                right_atom.vars[pos] = var
                pairs_for_outer.append((key_var[col.name], var))
                if col.name in right_pair_map:
                    right_out.append(ColumnInfo(name=right_pair_map[col.name], var=var,
                                                dtype=col.dtype, unique=col.unique))
                continue
            out_name = right_pair_map.get(col.name, col.name)
            var = self._unique_var(out_name, used)
            used.append(var)
            right_atom.vars[pos] = var
            right_out.append(ColumnInfo(name=out_name, var=var, dtype=col.dtype, unique=col.unique))

        body: list = [left_atom, right_atom] + key_copies
        if how in ("left", "right", "outer"):
            kind = {"left": "left", "right": "right", "outer": "full"}[how]
            body.append(OuterAtom(kind=kind, left_rel=0, right_rel=1, pairs=pairs_for_outer))
        out_cols += right_out

        # Key uniqueness: joining N:1 against a unique right key preserves
        # the left key's uniqueness (and vice versa).
        right_key_unique = all(right.col(rk).unique for rk in right_keys) if right_keys else False
        left_key_unique = all(left.col(lk).unique for lk in left_keys) if left_keys else False
        for c in out_cols:
            if c.unique:
                from_left = any(c.var == left_atom.vars[i] for i in range(len(left.cols)))
                if from_left and not right_key_unique:
                    c.unique = False
                if not from_left and not left_key_unique:
                    c.unique = False

        rel = self.new_rel()
        self.emit(Rule(Head(rel, [c.var for c in out_cols]), body))
        return SymFrame(rel=rel, cols=out_cols)

    # -- Series methods --------------------------------------------------------
    def _series_call(self, series: SymSeries, method: str, args, kwargs):
        if method in ("sum", "mean", "min", "max", "count", "nunique", "std", "var"):
            return self._scalar_agg(series, _AGG_FUNCS[method])
        if method == "unique":
            rel = self.new_rel()
            var = self._unique_var(series.name or "value", [])
            body = [series.frame.atom()] + list(series.extra_atoms) + [AssignAtom(var, series.term)]
            self.emit(Rule(Head(rel, [var], distinct=True), body))
            return SymFrame(rel=rel, cols=[ColumnInfo(name=series.name or "value", var=var,
                                                      dtype=series.dtype, unique=True)])
        if method == "isin":
            return self._isin(series, args)
        if method == "between":
            low = self.eval_expr(args[0])
            high = self.eval_expr(args[1])
            lt, lx, _ = self._coerce_operand(low, series)
            ht, hx, _ = self._coerce_operand(high, series)
            term = BinOp("and", BinOp(">=", series.term, lt), BinOp("<=", series.term, ht))
            out = series.with_term(term, dtype="bool")
            out.extra_atoms = series.extra_atoms + lx + hx
            return out
        if method == "round":
            digits = int(self._const_value(args[0])) if args else 0
            return series.with_term(Ext("round", (series.term, Const(digits))), dtype="float")
        if method == "abs":
            return series.with_term(Ext("abs", (series.term,)))
        if method == "fillna":
            value = self._const_value(args[0])
            return series.with_term(Ext("coalesce", (series.term, Const(value))))
        if method == "astype":
            target = self._const_value(args[0])
            cast = {"int": "cast_int", "int64": "cast_int", "float": "cast_float",
                    "float64": "cast_float", "str": "cast_str"}.get(str(target))
            if cast is None:
                raise TranslationError(f"unsupported astype target {target!r}")
            return series.with_term(Ext(cast, (series.term,)),
                                    dtype={"cast_int": "int", "cast_float": "float", "cast_str": "str"}[cast])
        if method == "isna" or method == "isnull":
            return series.with_term(Ext("isnull", (series.term,)), dtype="bool")
        if method == "notna" or method == "notnull":
            return series.with_term(Ext("notnull", (series.term,)), dtype="bool")
        if method == "reset_index":
            return series
        if method == "to_numpy":
            frame = self._project_series_frame(series, series.name or "c0")
            return self._to_numpy(frame)
        if method == "head":
            frame = self._project_series_frame(series, series.name or "value")
            return self._head(frame, int(self._const_value(args[0])) if args else 5)
        if method == "value_counts":
            # GROUP BY value + COUNT(*), sorted by descending frequency.
            name = series.name or "value"
            rel = self.new_rel()
            key_var = self._unique_var(name, [])
            count_var = self._unique_var("count", [key_var])
            body = [series.frame.atom()] + list(series.extra_atoms)
            body.append(AssignAtom(key_var, series.term))
            body.append(AssignAtom(count_var, Agg("count", None)))
            self.emit(Rule(Head(rel, [key_var, count_var], group=[key_var],
                                sort=SortSpec([(count_var, False)])), body))
            cols = [ColumnInfo(name=name, var=key_var, dtype=series.dtype, unique=True),
                    ColumnInfo(name="count", var=count_var, dtype="int")]
            return SymFrame(rel=rel, cols=cols, index_cols=[name],
                            ordering=[(count_var, False)])
        if method in ("nlargest", "nsmallest"):
            n = int(self._const_value(args[0]))
            frame = self._project_series_frame(series, series.name or "value")
            ascending = method == "nsmallest"
            return self._emit_sort(frame, [frame.cols[0].name], [ascending], limit=n)
        if method == "shift":
            periods = int(self._const_value(args[0])) if args else 1
            fill = self._const_value(kwargs["fill_value"]) if "fill_value" in kwargs else None
            return self._series_shift(series, periods, fill)
        if method == "rank":
            how = self._const_value(kwargs["method"]) if "method" in kwargs else "min"
            ascending = bool(self._const_value(kwargs["ascending"])) if "ascending" in kwargs else True
            func = _RANK_METHODS.get(how)
            if func is None:
                raise TranslationError(f"unsupported rank method {how!r}")
            win = Win(func, (), (), ((series.term, ascending),))
            return series.with_term(win, dtype="int")
        if method == "cumsum":
            frame2, order = self._positional_order(series.frame)
            win = Win("sum", (series.term,), (), order, _RUNNING_FRAME)
            out = SymSeries(frame=frame2, term=win, name=series.name, dtype=series.dtype)
            return out
        if method == "rolling":
            window = int(self._const_value(args[0]) if args
                         else self._const_value(kwargs["window"]))
            if window <= 0:
                raise TranslationError("rolling window must be positive")
            min_periods = window
            if "min_periods" in kwargs:
                min_periods = int(self._const_value(kwargs["min_periods"]))
            if len(args) > 1:
                min_periods = int(self._const_value(args[1]))
            return SymRollingWindow(series=series, window=window,
                                    min_periods=min_periods)
        raise TranslationError(f"unsupported Series method {method!r}")

    def _positional_order(self, frame: SymFrame) -> tuple[SymFrame, tuple]:
        """An ORDER BY for positional window ops (shift/cumsum/rolling).

        A frame carrying an upstream ``sort_values`` ordering reuses it;
        otherwise the frame is extended with a ``uid()`` column (the paper's
        positional handle) and the window orders by that.
        """
        if frame.ordering:
            return frame, tuple((Var(v), asc) for v, asc in frame.ordering)
        uid_frame = self._ensure_uid_frame(frame)
        return uid_frame, ((Var("__uid"), True),)

    def _series_shift(self, series: SymSeries, periods: int, fill) -> SymSeries:
        frame2, order = self._positional_order(series.frame)
        func = "lag" if periods >= 0 else "lead"
        win_args: tuple = (series.term, Const(abs(periods)))
        dtype = series.dtype
        if fill is not None:
            win_args += (Const(fill),)
        win = Win(func, win_args, (), order)
        return SymSeries(frame=frame2, term=win, name=series.name, dtype=dtype)

    def _rolling_call(self, rolling: "SymRollingWindow", method: str, args, kwargs):
        func = _WIN_AGGS.get(method)
        if func is None or method == "size":
            raise TranslationError(f"unsupported rolling aggregate {method!r}")
        series = rolling.series
        n = rolling.window
        frame2, order = self._positional_order(series.frame)
        spec = ("rows", "preceding", n - 1, "current", 0)
        agg = Win(func, (series.term,), (), order, spec)
        count = Win("count", (series.term,), (), order, spec)
        # Pandas semantics: fewer than `min_periods` observations -> NaN.
        term: Term = agg
        if rolling.min_periods > 0:
            term = If(BinOp(">=", count, Const(rolling.min_periods)), agg,
                      Const(None))
        dtype = "float" if func == "avg" else series.dtype
        return SymSeries(frame=frame2, term=term, name=series.name, dtype=dtype)

    def _scalar_agg(self, series: SymSeries, func: str) -> SymScalarRel:
        rel = self.new_rel()
        var = f"s_{next(self._var_counter)}"
        if func == "count_distinct":
            agg = Agg("count_distinct", series.term)
        elif func == "size":
            agg = Agg("count", None)
        else:
            agg = Agg(func, series.term)
        body = [series.frame.atom()] + list(series.extra_atoms) + [AssignAtom(var, agg)]
        self.emit(Rule(Head(rel, [var]), body))
        dtype = "int" if func in ("count", "count_distinct") else ("float" if func == "avg" else series.dtype)
        return SymScalarRel(rel=rel, var=var, dtype=dtype)

    def _isin(self, series: SymSeries, args) -> SymSeries:
        target = self.eval_expr(args[0])
        if isinstance(target, list):
            out = series.with_term(Ext("in_list", (series.term, Const(tuple(target)))), dtype="bool")
            return out
        if isinstance(target, SymFrame):
            target = self._as_series(target)
        if isinstance(target, SymSeries):
            from ..tondir.ir import rename_term

            other_frame = target.frame
            # Freshen the inner relation's variables so they cannot capture
            # (and silently correlate with) same-named outer variables.
            inner_atom = RelAtom(other_frame.rel, [self.fresh_var(v) for v in other_frame.vars])
            renames = dict(zip(other_frame.vars, inner_atom.vars))
            inner_term = rename_term(target.term, renames)
            inner = [
                inner_atom,
                FilterAtom(BinOp("=", inner_term, series.term)),
            ]
            exists = ExistsAtom(body=inner, negated=False)
        else:
            raise TranslationError("unsupported isin target")
        out = series.with_term(Const(True), dtype="bool")
        out.exists_atoms = [exists]  # type: ignore[attr-defined]
        return out

    # -- GroupBy -----------------------------------------------------------------
    def _groupby_call(self, gb: SymGroupBy, method: str, args, kwargs):
        if method in ("sum", "mean", "min", "max", "count", "nunique", "first"):
            items = [(c.name, c.name, method) for c in gb.frame.cols if c.name not in gb.keys]
            return self._emit_groupby(gb, items)
        if method == "size":
            return self._emit_groupby(gb, [("size", None, "size")])
        if method in ("agg", "aggregate"):
            items: list[tuple[str, str | None, str]] = []
            if args:
                spec = self.eval_expr(args[0])
                if isinstance(spec, dict):
                    for src, func in spec.items():
                        if isinstance(func, list):
                            for f in func:
                                items.append((f"{src}_{f}", src, f))
                        else:
                            items.append((src, src, func))
                elif isinstance(spec, SymScalar):
                    for c in gb.frame.cols:
                        if c.name not in gb.keys:
                            items.append((c.name, c.name, spec.value))
                else:
                    raise TranslationError("unsupported agg spec")
            for out_name, kw in kwargs.items():
                pair = self.eval_expr(kw)
                if not isinstance(pair, list) or len(pair) != 2:
                    raise TranslationError("named agg expects (column, func) tuples")
                items.append((out_name, pair[0], pair[1]))
            return self._emit_groupby(gb, items)
        if method == "transform":
            func = self._const_value(args[0])
            return self._groupby_transform(gb, func)
        if method == "cumsum":
            return self._groupby_window_frame(gb, "sum", running=True)
        if method == "rank":
            how = self._const_value(kwargs["method"]) if "method" in kwargs else "min"
            ascending = bool(self._const_value(kwargs["ascending"])) if "ascending" in kwargs else True
            return self._groupby_window_frame(gb, self._rank_func(how),
                                              rank_ascending=ascending)
        raise TranslationError(f"unsupported GroupBy method {method!r}")

    @staticmethod
    def _rank_func(how) -> str:
        func = _RANK_METHODS.get(how)
        if func is None:
            raise TranslationError(f"unsupported rank method {how!r}")
        return func

    def _groupby_partition(self, gb: SymGroupBy) -> tuple:
        return tuple(Var(gb.frame.col(k).var) for k in gb.keys)

    def _groupby_transform(self, gb: SymGroupBy, func) -> SymFrame:
        """``groupby(...).transform(agg)``: per-group aggregates broadcast
        back to member rows — one window term per value column."""
        win_func = _WIN_AGGS.get(func)
        if win_func is None:
            raise TranslationError(f"unsupported transform aggregate {func!r}")
        return self._emit_groupby_windows(
            gb, lambda col: Win(win_func, (Var(col.var),), self._groupby_partition(gb), ()),
            dtype="float" if win_func == "avg" else None,
        )

    def _groupby_window_frame(self, gb: SymGroupBy, func: str,
                              running: bool = False,
                              rank_ascending: bool | None = None) -> SymFrame:
        """Row-preserving per-group windows over every value column
        (``cumsum`` orders by the positional uid; ``rank`` by the column)."""
        partition = self._groupby_partition(gb)
        if running:
            frame2, order = self._positional_order(gb.frame)
            gb = SymGroupBy(frame=frame2, keys=gb.keys, as_index=gb.as_index)
            partition = self._groupby_partition(gb)

            def make(col):
                return Win(func, (Var(col.var),), partition, order, _RUNNING_FRAME)
        else:
            def make(col):
                return Win(func, (), partition, ((Var(col.var), rank_ascending),))
        return self._emit_groupby_windows(
            gb, make, dtype="int" if rank_ascending is not None else None
        )

    def _emit_groupby_windows(self, gb: SymGroupBy, make_term,
                              dtype: str | None = None) -> SymFrame:
        frame = gb.frame
        rel = self.new_rel()
        body: list = [frame.atom()]
        out_cols: list[ColumnInfo] = []
        for c in frame.cols:
            if c.name in gb.keys or c.var == "__uid":
                continue
            out = self.fresh_var(c.var)
            body.append(AssignAtom(out, make_term(c)))
            out_cols.append(ColumnInfo(name=c.name, var=out,
                                       dtype=dtype or c.dtype))
        self.emit(Rule(Head(rel, [c.var for c in out_cols]), body))
        return SymFrame(rel=rel, cols=out_cols, kind=frame.kind)

    def _series_groupby_call(self, sgb: SymSeriesGroupBy, method: str, args, kwargs):
        if method in ("sum", "mean", "min", "max", "count", "nunique", "size"):
            src = None if method == "size" else sgb.column
            out = self._emit_groupby(sgb.groupby, [(sgb.column if src else "size", src, method)])
            return out
        if method in ("agg", "aggregate"):
            spec = self.eval_expr(args[0])
            if isinstance(spec, SymScalar):
                return self._emit_groupby(sgb.groupby, [(sgb.column, sgb.column, spec.value)])
            raise TranslationError("unsupported series agg spec")
        if method == "transform":
            func = _WIN_AGGS.get(self._const_value(args[0]))
            if func is None:
                raise TranslationError("unsupported transform aggregate")
            gb = sgb.groupby
            col = gb.frame.col(sgb.column)
            win = Win(func, (Var(col.var),), self._groupby_partition(gb), ())
            return SymSeries(frame=gb.frame, term=win, name=sgb.column,
                             dtype="float" if func == "avg" else col.dtype)
        if method == "rank":
            how = self._const_value(kwargs["method"]) if "method" in kwargs else "min"
            ascending = bool(self._const_value(kwargs["ascending"])) if "ascending" in kwargs else True
            gb = sgb.groupby
            col = gb.frame.col(sgb.column)
            win = Win(self._rank_func(how), (), self._groupby_partition(gb),
                      ((Var(col.var), ascending),))
            return SymSeries(frame=gb.frame, term=win, name=sgb.column, dtype="int")
        if method == "cumsum":
            gb = sgb.groupby
            frame2, order = self._positional_order(gb.frame)
            col = frame2.col(sgb.column)
            partition = tuple(Var(frame2.col(k).var) for k in gb.keys)
            win = Win("sum", (Var(col.var),), partition, order, _RUNNING_FRAME)
            return SymSeries(frame=frame2, term=win, name=sgb.column, dtype=col.dtype)
        if method == "shift":
            periods = int(self._const_value(args[0])) if args else 1
            fill = self._const_value(kwargs["fill_value"]) if "fill_value" in kwargs else None
            gb = sgb.groupby
            frame2, order = self._positional_order(gb.frame)
            col = frame2.col(sgb.column)
            partition = tuple(Var(frame2.col(k).var) for k in gb.keys)
            win_args: tuple = (Var(col.var), Const(abs(periods)))
            if fill is not None:
                win_args += (Const(fill),)
            win = Win("lag" if periods >= 0 else "lead", win_args, partition, order)
            return SymSeries(frame=frame2, term=win, name=sgb.column, dtype=col.dtype)
        raise TranslationError(f"unsupported SeriesGroupBy method {method!r}")

    def _emit_groupby(self, gb: SymGroupBy, items: list[tuple[str, str | None, str]]) -> SymFrame:
        frame = gb.frame
        key_cols = [frame.col(k) for k in gb.keys]
        rel = self.new_rel()
        body: list = [frame.atom()]
        out_cols: list[ColumnInfo] = [c.renamed(c.name) for c in key_cols]
        out_vars = [c.var for c in key_cols]
        for out_name, src, func in items:
            func_ir = _AGG_FUNCS.get(func, func)
            var = self._unique_var(out_name, frame.vars + out_vars)
            if func_ir == "size":
                agg = Agg("count", None)
            elif func_ir == "count_distinct":
                agg = Agg("count_distinct", Var(frame.col(src).var))
            else:
                agg = Agg(func_ir, Var(frame.col(src).var))
            body.append(AssignAtom(var, agg))
            out_vars.append(var)
            dtype = "int" if func_ir in ("count", "count_distinct", "size") else (
                "float" if func_ir == "avg" else (frame.col(src).dtype if src else "int")
            )
            out_cols.append(ColumnInfo(name=out_name, var=var, dtype=dtype))
        if len(key_cols) == 1:
            out_cols[0].unique = True
        self.emit(Rule(Head(rel, out_vars, group=[c.var for c in key_cols]), body))
        return SymFrame(rel=rel, cols=out_cols,
                        index_cols=list(gb.keys) if gb.as_index else [])

    # -- str accessor ---------------------------------------------------------
    def _str_call(self, acc: SymStrAccessor, method: str, args, kwargs):
        series = acc.series
        if method in ("contains", "startswith", "endswith"):
            pattern = self._const_value(args[0])
            ext = {"contains": "contains", "startswith": "startswith", "endswith": "endswith"}[method]
            return series.with_term(Ext(ext, (series.term, Const(pattern))), dtype="bool")
        if method == "like":
            pattern = self._const_value(args[0])
            return series.with_term(BinOp("like", series.term, Const(pattern)), dtype="bool")
        if method == "slice":
            start = int(self._const_value(args[0])) if args else 0
            stop = self._const_value(args[1]) if len(args) > 1 else None
            length = (stop - start) if stop is not None else 10**6
            return series.with_term(
                Ext("substr", (series.term, Const(start + 1), Const(length))), dtype="str"
            )
        if method == "upper":
            return series.with_term(Ext("upper", (series.term,)), dtype="str")
        if method == "lower":
            return series.with_term(Ext("lower", (series.term,)), dtype="str")
        if method == "len":
            return series.with_term(Ext("length", (series.term,)), dtype="int")
        if method == "strftime":
            fmt = self._const_value(args[0])
            return series.with_term(Ext("strftime", (series.term, Const(fmt))), dtype="str")
        raise TranslationError(f"unsupported .str method {method!r}")

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _unique_var(self, base: str, used: list[str]) -> str:
        var = sanitize(base)
        if var not in used:
            return var
        return self.fresh_var(base)

    def _finalize(self, result) -> str:
        if isinstance(result, SymScalarRel):
            return result.rel
        if isinstance(result, SymSeries):
            result = self._project_series_frame(result, result.name or "value")
        if isinstance(result, SymFrame):
            visible_cols = [c for c in result.cols if not c.name.startswith("__")]
            has_hidden = len(visible_cols) != len(result.cols)
            defining = self.rules[-1] if self.rules else None
            if defining is not None and defining.head.rel == result.rel:
                # Rename head vars to the pandas-visible column names.
                mapping = {}
                for c in visible_cols:
                    out_name = sanitize(c.name)
                    if out_name != c.var:
                        mapping[c.var] = out_name
                if mapping or has_hidden:
                    # emit a projection instead of renaming in place (safe);
                    # hidden ordering columns stay bound in the body but are
                    # not projected.
                    rel = self.new_rel()
                    body: list = [result.atom()]
                    head_vars = []
                    for c in visible_cols:
                        out_name = self._unique_var(c.name, head_vars)
                        if out_name != c.var:
                            body.append(AssignAtom(out_name, Var(c.var)))
                        head_vars.append(out_name)
                    sort = defining.head.sort
                    if sort is not None:
                        defining.head.sort = None
                        sort = SortSpec(
                            keys=[(mapping.get(v, v), asc) for v, asc in sort.keys],
                            limit=sort.limit,
                        )
                    elif result.ordering:
                        sort = SortSpec(
                            keys=[(mapping.get(v, v), asc) for v, asc in result.ordering],
                        )
                    self.emit(Rule(Head(rel, head_vars, sort=sort), body))
                    return rel
                if defining.head.sort is None and result.ordering:
                    # Re-establish upstream row ordering in the final select.
                    defining.head.sort = SortSpec(keys=list(result.ordering))
                return result.rel
            # Result defined earlier (or a base table): emit a copy rule,
            # replicating any sort on its defining rule.
            rel = self.new_rel()
            sort = None
            if defining is not None:
                src_rule = next((r for r in self.rules if r.head.rel == result.rel), None)
                if src_rule is not None and src_rule.head.sort is not None:
                    sort = SortSpec(keys=list(src_rule.head.sort.keys),
                                    limit=src_rule.head.sort.limit)
            if sort is None and result.ordering:
                sort = SortSpec(keys=list(result.ordering))
            body = [result.atom()]
            head_vars: list[str] = []
            extra_assigns: list = []
            for c in visible_cols:
                out_name = self._unique_var(c.name, head_vars)
                if out_name != c.var:
                    extra_assigns.append(AssignAtom(out_name, Var(c.var)))
                head_vars.append(out_name)
            if sort is not None:
                rename = dict((c.var, h) for c, h in zip(visible_cols, head_vars))
                sort = SortSpec(
                    keys=[(rename.get(v, v), asc) for v, asc in sort.keys],
                    limit=sort.limit,
                )
            self.emit(Rule(Head(rel, head_vars, sort=sort), body + extra_assigns))
            return rel
        if isinstance(result, SymScalar):
            rel = self.new_rel()
            self.emit(Rule(Head(rel, ["value"]), [AssignAtom("value", Const(result.value))]))
            return rel
        raise TranslationError(f"cannot return {type(result).__name__} from a @pytond function")


def _py_dtype(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, np.datetime64):
        return "date"
    return "unknown"


def _fold_py(op: str, a, b):
    import operator

    return {"+": operator.add, "-": operator.sub, "*": operator.mul,
            "/": operator.truediv, "%": operator.mod}[op](a, b)


def _is_true(term: Term) -> bool:
    return isinstance(term, Const) and term.value is True
