"""Symbolic values tracked by the Pandas/NumPy -> TondIR translator.

The translator is a static abstract interpreter: it never runs the user's
function; instead each Python variable is bound to one of these symbolic
descriptions.  Type/shape information (the paper's "type inference",
Section III-B) lives on :class:`ColumnInfo` / :class:`SymFrame`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..tondir.ir import RelAtom, Term

__all__ = [
    "ColumnInfo", "SymFrame", "SymSeries", "SymScalar", "SymScalarRel",
    "SymGroupBy", "SymSeriesGroupBy", "SymConstArray", "SymStrAccessor",
    "SymDtAccessor", "SymRollingWindow", "sanitize",
]

_IDENT = re.compile(r"[^0-9a-zA-Z_]")


def sanitize(name: str) -> str:
    """Make a pandas column name usable as a TondIR variable."""
    out = _IDENT.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "c_" + out
    return out


@dataclass
class ColumnInfo:
    """One logical column of a symbolic frame."""

    name: str               # pandas-level column name
    var: str                # TondIR variable / SQL column name
    dtype: str = "unknown"  # int | float | str | bool | date | unknown
    unique: bool = False

    def renamed(self, name: str, var: str | None = None) -> "ColumnInfo":
        return ColumnInfo(name=name, var=var or self.var, dtype=self.dtype, unique=self.unique)


@dataclass
class SymFrame:
    """A DataFrame (or dense array) currently stored in TondIR relation *rel*."""

    rel: str
    cols: list[ColumnInfo]
    kind: str = "frame"                 # frame | array | series-frame
    index_cols: list[str] = field(default_factory=list)  # pandas index names
    hidden_id: Optional[ColumnInfo] = None  # dropped-but-retained unique id
    # Row ordering established by an upstream sort_values: (var, ascending)
    # pairs, carried through row-preserving operations so the sink rule can
    # re-establish ORDER BY (Section III-E "Sort and Limit").
    ordering: Optional[list] = None

    def col(self, name: str) -> ColumnInfo:
        for c in self.cols:
            if c.name == name:
                return c
        raise KeyError(name)

    def has_col(self, name: str) -> bool:
        return any(c.name == name for c in self.cols)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.cols]

    @property
    def vars(self) -> list[str]:
        return [c.var for c in self.cols]

    def atom(self) -> RelAtom:
        return RelAtom(self.rel, list(self.vars))

    def value_cols(self) -> list[ColumnInfo]:
        """Array value columns (everything except the ID column)."""
        return [c for c in self.cols if c.var != "ID"]

    @property
    def width(self) -> int:
        """Number of value columns of a dense array."""
        return len(self.value_cols())


@dataclass
class SymSeries:
    """A column expression rooted at a frame (a Pandas Series)."""

    frame: SymFrame
    term: Term
    name: Optional[str] = None
    dtype: str = "unknown"
    # Extra one-row relations (scalar aggregates) the term depends on.
    extra_atoms: list[RelAtom] = field(default_factory=list)

    def with_term(self, term: Term, dtype: str | None = None) -> "SymSeries":
        return SymSeries(
            frame=self.frame, term=term, name=self.name,
            dtype=dtype or self.dtype, extra_atoms=list(self.extra_atoms),
        )


@dataclass
class SymScalar:
    """A compile-time constant scalar."""

    value: object
    dtype: str = "unknown"


@dataclass
class SymScalarRel:
    """A scalar produced by an aggregation: a one-row one-column relation."""

    rel: str
    var: str
    dtype: str = "unknown"

    def atom(self) -> RelAtom:
        return RelAtom(self.rel, [self.var])


@dataclass
class SymGroupBy:
    frame: SymFrame
    keys: list[str]
    as_index: bool = True


@dataclass
class SymSeriesGroupBy:
    groupby: SymGroupBy
    column: str


@dataclass
class SymConstArray:
    """A literal numpy array appearing in the source (constant folding)."""

    values: list  # 1-D or 2-D python list of numbers

    @property
    def is_vector(self) -> bool:
        return not isinstance(self.values[0], list)


@dataclass
class SymStrAccessor:
    series: SymSeries


@dataclass
class SymDtAccessor:
    series: SymSeries


@dataclass
class SymRollingWindow:
    """``series.rolling(window, min_periods)`` awaiting its aggregate method."""

    series: SymSeries
    window: int
    min_periods: int = 0
