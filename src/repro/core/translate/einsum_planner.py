"""Einsum planning and lowering to TondIR (Section III-D, Table VI).

Dense layout: an order-2 tensor is a relation ``(ID, c0..c{n-1})`` whose
row dimension is dynamic and whose column dimension is static (known from
type inference).  The planner normalizes the einsum spec, applies the
paper's reduction steps (diagonalize repeated indices, sum out missing
indices, operand swap) and dispatches to one of the fundamental kernels
ES1..ES9 (plus the matmul/matvec compositions built from them).

Sparse (COO) layout: the fully denormalized ``(dims..., val)`` relation
admits a single generic lowering — shared index letters become shared join
variables, output letters become group keys, and the value is
``sum(v1 * v2)`` — following Blacher et al. as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import TranslationError
from ..tondir.ir import (
    Agg, AssignAtom, BinOp, Const, ConstRelAtom, Head, If,
    RelAtom, Rule, Term, Var,
)
from .symbols import ColumnInfo, SymConstArray, SymFrame, SymScalar, SymScalarRel

__all__ = ["parse_spec", "normalize_spec", "lower_dense", "lower_sparse", "optimize_path"]


def parse_spec(spec: str) -> tuple[list[str], str]:
    """Split ``'ij,ik->jk'`` into ``(['ij', 'ik'], 'jk')``."""
    if "->" not in spec:
        raise TranslationError(f"einsum spec {spec!r} must be explicit (contain '->')")
    lhs, rhs = spec.split("->")
    inputs = lhs.split(",") if lhs else [""]
    for part in list(inputs) + [rhs]:
        if not all(c.isalpha() or c == "" for c in part):
            raise TranslationError(f"bad einsum spec {spec!r}")
    return inputs, rhs


def normalize_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Rename index letters to i, j, k... in order of first appearance."""
    inputs, output = parse_spec(spec)
    mapping: dict[str, str] = {}
    alphabet = "ijklmnop"
    for part in inputs + [output]:
        for ch in part:
            if ch not in mapping:
                if len(mapping) >= len(alphabet):
                    raise TranslationError("too many distinct einsum indices")
                mapping[ch] = alphabet[len(mapping)]
    new_inputs = ["".join(mapping[c] for c in part) for part in inputs]
    new_output = "".join(mapping[c] for c in output)
    return ",".join(new_inputs) + "->" + new_output, mapping


# ---------------------------------------------------------------------------
# Dense lowering
# ---------------------------------------------------------------------------


@dataclass
class _Emitter:
    """Thin facade over the translator's rule-emission services."""

    new_rel: callable
    emit: callable  # (Rule) -> None


def _mul(a: Term, b: Term) -> Term:
    return BinOp("*", a, b)


def _add_chain(terms: list[Term]) -> Term:
    out = terms[0]
    for t in terms[1:]:
        out = BinOp("+", out, t)
    return out


def _array_frame(em: _Emitter, ncols: int, body, head_vars, group=None) -> SymFrame:
    rel = em.new_rel()
    em.emit(Rule(Head(rel, head_vars, group=group), body))
    cols = [ColumnInfo(name=v, var=v, dtype="float", unique=(v == "ID")) for v in head_vars]
    return SymFrame(rel=rel, cols=cols, kind="array")


def _id_const_rel(count: int) -> ConstRelAtom:
    """A constant relation with rows 1..count binding variable ``rid``."""
    return ConstRelAtom(rows=[[i + 1] for i in range(count)], vars=["rid"])


_uniq_counter = [0]


def _uniq(prefix: str) -> str:
    """Globally fresh variable name: einsum-generated variables must never
    collide with the input arrays' column variables (c0..cn, ID)."""
    _uniq_counter[0] += 1
    return f"e{_uniq_counter[0]}_{prefix}"


def _fresh_vars(prefix: str, n: int) -> list[str]:
    base = _uniq(prefix)
    return [f"{base}{i}" for i in range(n)]


def lower_dense(em: _Emitter, spec: str, operands: list) -> object:
    """Lower a dense einsum; returns a SymFrame / SymScalarRel / SymSeries."""
    norm, _ = normalize_spec(spec)
    inputs, output = parse_spec(norm)

    # Constant-fold: scalars in operand positions become multipliers.
    if len(inputs) == 2:
        return _lower_dense_binary(em, inputs, output, operands)
    if len(inputs) == 1:
        return _lower_dense_unary(em, inputs[0], output, operands[0])
    raise TranslationError(
        f"einsum {spec!r}: more than two operands — decompose with optimize_path first"
    )


def _require_frame(op, what: str) -> SymFrame:
    if not isinstance(op, SymFrame):
        raise TranslationError(f"einsum operand for {what} must be a dense array")
    return op


def _lower_dense_unary(em: _Emitter, idx: str, output: str, op) -> object:
    if isinstance(op, SymConstArray):
        raise TranslationError("constant-array unary einsum should be folded in Python")
    frame = _require_frame(op, idx)
    values = frame.value_cols()
    n = len(values)

    if idx == "i" and output == "":  # ES1: vector sum
        rel = em.new_rel()
        em.emit(Rule(Head(rel, ["v"]), [frame.atom(), AssignAtom("v", Agg("sum", Var(values[0].var)))]))
        return SymScalarRel(rel=rel, var="v", dtype="float")

    if idx == "ij" and output == "":  # full matrix sum
        rel = em.new_rel()
        total = Agg("sum", _add_chain([Var(c.var) for c in values]))
        em.emit(Rule(Head(rel, ["v"]), [frame.atom(), AssignAtom("v", total)]))
        return SymScalarRel(rel=rel, var="v", dtype="float")

    if idx == "ij" and output == "i":  # row sum -> column vector
        out = _uniq("c")
        body = [frame.atom(), AssignAtom(out, _add_chain([Var(c.var) for c in values]))]
        id_var = _ensure_id(frame, body)
        return _array_frame(em, 1, body, [id_var, out])

    if idx == "ij" and output == "j":  # ES2-style column sums -> vector
        sums = _fresh_vars("s", n)
        body = [frame.atom()] + [
            AssignAtom(s, Agg("sum", Var(c.var))) for s, c in zip(sums, values)
        ]
        wide = _array_frame(em, n, body, sums)
        return _reshape_row_to_vector(em, wide, n)

    if idx == "ii" and output == "i":  # ES3: diagonal
        body = [frame.atom()]
        id_var = _ensure_id(frame, body)
        diag: Term = Const(0.0)
        for pos in range(n - 1, -1, -1):
            diag = If(BinOp("=", Var(id_var), Const(pos + 1)), Var(values[pos].var), diag)
        out = _uniq("c")
        body.append(AssignAtom(out, diag))
        return _array_frame(em, 1, body, [id_var, out])

    if idx == "ii" and output == "":  # trace
        diag_frame = _lower_dense_unary(em, "ii", "i", op)
        return _lower_dense_unary(em, "i", "", diag_frame)

    if idx == "ij" and output == "ji":  # ES4: transpose (static width only)
        raise TranslationError(
            "dense transpose requires a statically known row count; "
            "use the sparse layout for transposes of data-dependent size"
        )

    raise TranslationError(f"unsupported unary einsum {idx}->{output}")


def _ensure_id(frame: SymFrame, body: list) -> str:
    for c in frame.cols:
        if c.var == "ID":
            return "ID"
    from ..tondir.ir import Ext

    body.append(AssignAtom("ID", Ext("uid", ())))
    return "ID"


def _reshape_row_to_vector(em: _Emitter, wide: SymFrame, n: int) -> SymFrame:
    """Reshape a 1-row, n-column relation into an n-row (ID, c0) vector."""
    svars = [c.var for c in wide.cols]
    chain: Term = Const(0.0)
    for pos in range(n - 1, -1, -1):
        chain = If(BinOp("=", Var("rid"), Const(pos + 1)), Var(svars[pos]), chain)
    out = _uniq("c")
    body = [
        wide.atom(),
        _id_const_rel(n),
        AssignAtom("ID", Var("rid")),
        AssignAtom(out, chain),
    ]
    return _array_frame(em, 1, body, ["ID", out])


def _const_row(values: list[float]) -> list[Const]:
    return [Const(float(v)) for v in values]


def _lower_dense_binary(em: _Emitter, inputs: list[str], output: str, operands: list) -> object:
    a_idx, b_idx = inputs
    a, b = operands

    # Scalar operands (ES5 / ES6): fold into the other side.
    if a_idx == "" or b_idx == "":
        scalar, tensor, t_idx = (a, b, b_idx) if a_idx == "" else (b, a, a_idx)
        return _scale_tensor(em, scalar, tensor, t_idx, output)

    # Operand swap (the paper's normalization step).
    if (a_idx, b_idx) in (("j", "ij"), ("k", "ik")):
        a_idx, b_idx, a, b = b_idx, a_idx, b, a
        # fall through with matrix first

    if a_idx == "i" and b_idx == "i" and output == "":  # inner product
        fa, fb = _require_frame(a, "i"), _require_frame(b, "i")
        return _inner_product(em, fa, fb)

    if a_idx == "ij" and b_idx == "ij" and output == "ij":  # ES7 Hadamard
        return _hadamard(em, _require_frame(a, "ij"), _require_frame(b, "ij"))

    if a_idx == "ij" and b_idx == "ik" and output == "jk":  # ES8 batch outer
        return _batch_outer(em, _require_frame(a, "ij"), _require_frame(b, "ik"))

    if a_idx == "ij" and b_idx == "ik" and output == "ij":  # ES9
        return _es9(em, _require_frame(a, "ij"), _require_frame(b, "ik"))

    if a_idx == "ij" and b_idx == "jk" and output == "ik":  # matmul
        return _matmul(em, _require_frame(a, "ij"), b)

    if a_idx == "ij" and b_idx == "j" and output == "i":  # matrix-vector
        return _matvec(em, _require_frame(a, "ij"), b)

    if a_idx == "i" and b_idx == "ij" and output == "j":  # vector-matrix
        raise TranslationError("vector-matrix einsum requires the sparse layout")

    raise TranslationError(f"unsupported binary einsum {a_idx},{b_idx}->{output}")


def _scale_tensor(em: _Emitter, scalar, tensor, t_idx: str, output: str):
    frame = _require_frame(tensor, t_idx)
    values = frame.value_cols()
    body = [frame.atom()]
    if isinstance(scalar, SymScalar):
        s_term: Term = Const(float(scalar.value))
    elif isinstance(scalar, SymScalarRel):
        body.append(scalar.atom())
        s_term = Var(scalar.var)
    else:
        raise TranslationError("scalar einsum operand must be a scalar")
    id_var = _ensure_id(frame, body)
    out_vars = _fresh_vars("c", len(values))
    for out, col in zip(out_vars, values):
        body.append(AssignAtom(out, _mul(s_term, Var(col.var))))
    return _array_frame(em, len(values), body, [id_var] + out_vars)


def _inner_product(em: _Emitter, fa: SymFrame, fb: SymFrame) -> SymScalarRel:
    a_atom, b_atom = fa.atom(), fb.atom()
    b_vars = _join_on_id(fa, fb, b_atom)
    rel = em.new_rel()
    prod = _mul(Var(fa.value_cols()[0].var), Var(b_vars[0]))
    em.emit(Rule(Head(rel, ["v"]), [a_atom, b_atom, AssignAtom("v", Agg("sum", prod))]))
    return SymScalarRel(rel=rel, var="v", dtype="float")


def _join_on_id(fa: SymFrame, fb: SymFrame, b_atom: RelAtom) -> list[str]:
    """Rename fb's access so its ID var joins fa's ID; return value vars."""
    a_id = next(c.var for c in fa.cols if c.var == "ID")
    out_value_vars: list[str] = []
    for pos, col in enumerate(fb.cols):
        if col.var == "ID":
            b_atom.vars[pos] = a_id
        else:
            if fa is fb or col.var in {c.var for c in fa.cols}:
                new = f"b_{col.var}"
                b_atom.vars[pos] = new
                out_value_vars.append(new)
            else:
                out_value_vars.append(col.var)
    return out_value_vars


def _hadamard(em: _Emitter, fa: SymFrame, fb: SymFrame) -> SymFrame:
    a_atom, b_atom = fa.atom(), fb.atom()
    b_vars = _join_on_id(fa, fb, b_atom)
    a_vals = fa.value_cols()
    if len(a_vals) != len(b_vars):
        raise TranslationError("hadamard operands must have equal width")
    out_vars = _fresh_vars("c", len(a_vals))
    body = [a_atom, b_atom]
    for out, ac, bv in zip(out_vars, a_vals, b_vars):
        body.append(AssignAtom(out, _mul(Var(ac.var), Var(bv))))
    return _array_frame(em, len(a_vals), body, ["ID"] + out_vars)


def _batch_outer(em: _Emitter, fa: SymFrame, fb: SymFrame) -> SymFrame:
    """ES8 ``'ij,ik->jk'``: J x K result (e.g. covariance when fa is fb)."""
    a_atom, b_atom = fa.atom(), fb.atom()
    b_vars = _join_on_id(fa, fb, b_atom)
    a_vals = [c.var for c in fa.value_cols()]
    J, K = len(a_vals), len(b_vars)
    base = _uniq("s")
    sums = [[f"{base}_{j}_{k}" for k in range(K)] for j in range(J)]
    body = [a_atom, b_atom]
    for j in range(J):
        for k in range(K):
            body.append(AssignAtom(sums[j][k], Agg("sum", _mul(Var(a_vals[j]), Var(b_vars[k])))))
    wide = _array_frame(em, J * K, body, [s for row in sums for s in row])

    # Reshape the 1 x (J*K) row into J rows of K columns via a constant
    # relation — the VALUES-based reshape of the paper's Figure 2.
    out_vars = _fresh_vars("c", K)
    body2: list = [wide.atom(), _id_const_rel(J), AssignAtom("ID", Var("rid"))]
    for k in range(K):
        chain: Term = Const(0.0)
        for j in range(J - 1, -1, -1):
            chain = If(BinOp("=", Var("rid"), Const(j + 1)), Var(sums[j][k]), chain)
        body2.append(AssignAtom(out_vars[k], chain))
    return _array_frame(em, K, body2, ["ID"] + out_vars)


def _es9(em: _Emitter, fa: SymFrame, fb: SymFrame) -> SymFrame:
    """ES9 ``'ij,ik->ij'``: scale each row of A by the row-sum of B."""
    a_atom, b_atom = fa.atom(), fb.atom()
    b_vars = _join_on_id(fa, fb, b_atom)
    a_vals = fa.value_cols()
    row_sum = _add_chain([Var(v) for v in b_vars])
    out_vars = _fresh_vars("c", len(a_vals))
    body = [a_atom, b_atom, AssignAtom("bsum", row_sum)]
    for out, ac in zip(out_vars, a_vals):
        body.append(AssignAtom(out, _mul(Var(ac.var), Var("bsum"))))
    return _array_frame(em, len(a_vals), body, ["ID"] + out_vars)


def _matmul(em: _Emitter, fa: SymFrame, b) -> SymFrame:
    """``'ij,jk->ik'``: B is reshaped to one row of J*K sums, then fused."""
    J = fa.width
    if isinstance(b, SymConstArray):
        matrix = b.values
        if len(matrix) != J:
            raise TranslationError("matmul inner dimensions disagree")
        K = len(matrix[0])
        a_vals = [c.var for c in fa.value_cols()]
        out_vars = _fresh_vars("c", K)
        body: list = [fa.atom()]
        for k in range(K):
            prods = [_mul(Var(a_vals[j]), Const(float(matrix[j][k]))) for j in range(J)]
            body.append(AssignAtom(out_vars[k], _add_chain(prods)))
        return _array_frame(em, K, body, ["ID"] + out_vars)

    fb = _require_frame(b, "jk")
    K = fb.width
    b_vals = [c.var for c in fb.value_cols()]
    # Pivot B: w_jk = sum(if(ID=j, b_k, 0)).
    wbase = _uniq("w")
    w = [[f"{wbase}_{j}_{k}" for k in range(K)] for j in range(J)]
    body = [fb.atom()]
    for j in range(J):
        for k in range(K):
            picked = If(BinOp("=", Var("ID"), Const(j + 1)), Var(b_vals[k]), Const(0.0))
            body.append(AssignAtom(w[j][k], Agg("sum", picked)))
    wide = _array_frame(em, J * K, body, [x for row in w for x in row])

    a_vals = [c.var for c in fa.value_cols()]
    out_vars = _fresh_vars("c", K)
    body2: list = [fa.atom(), wide.atom()]
    for k in range(K):
        prods = [_mul(Var(a_vals[j]), Var(w[j][k])) for j in range(J)]
        body2.append(AssignAtom(out_vars[k], _add_chain(prods)))
    return _array_frame(em, K, body2, ["ID"] + out_vars)


def _matvec(em: _Emitter, fa: SymFrame, b) -> SymFrame:
    """``'ij,j->i'``: constant vectors fold inline; stored vectors pivot."""
    J = fa.width
    a_vals = [c.var for c in fa.value_cols()]
    if isinstance(b, SymConstArray):
        weights = b.values
        if len(weights) != J:
            raise TranslationError("matvec dimensions disagree")
        out = _uniq("c")
        prods = [_mul(Var(a_vals[j]), Const(float(weights[j]))) for j in range(J)]
        body: list = [fa.atom(), AssignAtom(out, _add_chain(prods))]
        return _array_frame(em, 1, body, ["ID", out])

    fb = _require_frame(b, "j")
    v_var = fb.value_cols()[0].var
    w = _fresh_vars("w", J)
    body = [fb.atom()]
    for j in range(J):
        picked = If(BinOp("=", Var("ID"), Const(j + 1)), Var(v_var), Const(0.0))
        body.append(AssignAtom(w[j], Agg("sum", picked)))
    wide = _array_frame(em, J, body, w)
    out = _uniq("c")
    prods = [_mul(Var(a_vals[j]), Var(w[j])) for j in range(J)]
    body2: list = [fa.atom(), wide.atom(), AssignAtom(out, _add_chain(prods))]
    return _array_frame(em, 1, body2, ["ID", out])


# ---------------------------------------------------------------------------
# Sparse (COO) lowering — generic
# ---------------------------------------------------------------------------

def lower_sparse(em: _Emitter, spec: str, operands: list) -> object:
    """Generic COO lowering: joins on shared letters, group by output."""
    norm, _ = normalize_spec(spec)
    inputs, output = parse_spec(norm)
    frames: list[SymFrame] = []
    for op, idx in zip(operands, inputs):
        if not isinstance(op, SymFrame) or op.kind != "sparse":
            raise TranslationError("sparse einsum operands must be COO relations")
        if len(op.cols) != len(idx) + 1:
            raise TranslationError(
                f"COO relation {op.rel!r} has {len(op.cols) - 1} dims, spec wants {len(idx)}"
            )
        frames.append(op)

    body: list = []
    val_terms: list[Term] = []
    letter_var: dict[str, str] = {}
    for n, (frame, idx) in enumerate(zip(frames, inputs)):
        atom = RelAtom(frame.rel, [""] * len(frame.cols))
        for pos, letter in enumerate(idx):
            if letter not in letter_var:
                letter_var[letter] = f"d_{letter}"
            atom.vars[pos] = letter_var[letter]
        val_var = f"v{n}"
        atom.vars[len(idx)] = val_var
        val_terms.append(Var(val_var))
        body.append(atom)

    prod = val_terms[0]
    for t in val_terms[1:]:
        prod = _mul(prod, t)

    out_vars = [letter_var[letter] for letter in output]
    body.append(AssignAtom("val", Agg("sum", prod)))
    rel = em.new_rel()
    if output:
        em.emit(Rule(Head(rel, out_vars + ["val"], group=list(out_vars)), body))
        cols = [ColumnInfo(name=v, var=v, dtype="int") for v in out_vars]
        cols.append(ColumnInfo(name="val", var="val", dtype="float"))
        return SymFrame(rel=rel, cols=cols, kind="sparse")
    em.emit(Rule(Head(rel, ["val"]), body))
    return SymScalarRel(rel=rel, var="val", dtype="float")


def optimize_path(specs: list[str], output: str) -> list[tuple[int, int, str]]:
    """Greedy pairwise contraction path (opt_einsum substitute).

    *specs* are per-operand index strings; *output* the final indices.
    Returns steps ``(a, b, 'xy,zw->uv')`` over a shrinking operand list —
    after each step the two operands are removed and the intermediate is
    appended at the end.
    """
    operands = list(specs)
    steps: list[tuple[int, int, str]] = []
    while len(operands) > 2:
        best = None
        for i in range(len(operands)):
            for j in range(i + 1, len(operands)):
                shared = set(operands[i]) & set(operands[j])
                score = len(shared)
                if best is None or score > best[0]:
                    best = (score, i, j)
        _, i, j = best
        others = set(output)
        for k, op in enumerate(operands):
            if k not in (i, j):
                others |= set(op)
        keep = sorted((set(operands[i]) | set(operands[j])) & others)
        inter = "".join(keep)
        steps.append((i, j, f"{operands[i]},{operands[j]}->{inter}"))
        new_ops = [op for k, op in enumerate(operands) if k not in (i, j)]
        new_ops.append(inter)
        operands = new_ops
    if len(operands) == 2:
        steps.append((0, 1, f"{operands[0]},{operands[1]}->{output}"))
    elif len(operands) == 1:
        steps.append((0, 0, f"{operands[0]}->{output}"))
    return steps
