"""Pandas/NumPy to TondIR translation."""

from .engine import TableInfo, Translator
from .einsum_planner import lower_dense, lower_sparse, normalize_spec, optimize_path, parse_spec

__all__ = ["Translator", "TableInfo", "parse_spec", "normalize_spec",
           "lower_dense", "lower_sparse", "optimize_path"]
