"""TondIR: the Datalog-inspired intermediate representation of Table IV.

Grammar correspondence (paper Table IV):

* ``Program``  — a list of rules plus the sink relation name.
* ``Rule``     — ``Head :- Body.``
* ``Head``     — relation access with optional ``group(x)`` and
  ``sort(x, b)[limit(n)]`` clauses.
* Body atoms   — relation access (:class:`RelAtom`), constant relation
  (:class:`ConstRelAtom`), existential filter (:class:`ExistsAtom`), and
  logical/assignment atoms.  The paper folds comparison and assignment into
  one ``x θ t`` form where an already-bound left side means comparison; we
  keep them as distinct classes (:class:`FilterAtom` / :class:`AssignAtom`)
  with the same semantics, which simplifies the optimizer.
* Terms        — variables, aggregations, external functions, conditionals,
  binary operations, constants.

Outer joins are encoded with :class:`OuterAtom` markers, the translation of
the paper's ``outer_left/outer_right/outer_full`` external atoms
(Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Term", "Var", "Const", "BinOp", "If", "Agg", "Ext", "Win",
    "Atom", "RelAtom", "ConstRelAtom", "ExistsAtom", "AssignAtom",
    "FilterAtom", "OuterAtom",
    "SortSpec", "Head", "Rule", "Program",
    "term_vars", "atom_vars", "map_term_vars", "rename_term",
]

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for TondIR terms."""


@dataclass(frozen=True)
class Var(Term):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    value: object  # int | float | bool | str | numpy datetime64 | None

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Term):
    op: str  # + - * / % = <> < <= > >= and or like
    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class If(Term):
    cond: Term
    then: Term
    otherwise: Term

    def __repr__(self) -> str:
        return f"if({self.cond!r}, {self.then!r}, {self.otherwise!r})"


@dataclass(frozen=True)
class Agg(Term):
    func: str  # sum min max avg count count_distinct
    arg: Optional[Term]  # None for count(*)
    distinct: bool = False

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        d = "distinct " if self.distinct else ""
        return f"{self.func}({d}{inner})"


@dataclass(frozen=True)
class Ext(Term):
    """External function call: ``uid()``, ``year(x)``, ``like(x, p)``, ..."""

    name: str
    args: tuple[Term, ...] = ()

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Win(Term):
    """A window-function term: ``func(args) over (partition, order, frame)``.

    ``func`` is a ranking function (``row_number``/``rank``/``dense_rank``/
    ``ntile``), an offset function (``lag``/``lead``), or an aggregate
    (``sum``/``avg``/``min``/``max``/``count``).  ``order_by`` pairs are
    ``(term, ascending)``; ``frame`` is ``None`` (SQL default framing) or
    ``(unit, start_kind, start_offset, end_kind, end_offset)`` mirroring
    :data:`repro.sqlengine.sqlast.WindowFrame`.  Unlike :class:`Agg`, a
    window term preserves the row count of its rule's body, so rules
    containing one are flow breakers but need no ``group`` head clause.
    """

    func: str
    args: tuple[Term, ...] = ()
    partition_by: tuple[Term, ...] = ()
    order_by: tuple[tuple[Term, bool], ...] = ()
    frame: Optional[tuple] = None

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.args))
        parts = []
        if self.partition_by:
            parts.append("part(" + ", ".join(map(repr, self.partition_by)) + ")")
        if self.order_by:
            parts.append("order(" + ", ".join(
                f"{t!r}{'' if asc else ' desc'}" for t, asc in self.order_by) + ")")
        if self.frame is not None:
            parts.append(f"frame{self.frame!r}")
        return f"{self.func}({inner}) over [{' '.join(parts)}]"


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


class Atom:
    """Base class for body atoms."""


@dataclass
class RelAtom(Atom):
    """Access to relation *rel*, binding positional columns to variables."""

    rel: str
    vars: list[str]

    def __repr__(self) -> str:
        return f"{self.rel}({', '.join(self.vars)})"


@dataclass
class ConstRelAtom(Atom):
    """A constant inline relation (``[<c>]`` in the grammar)."""

    rows: list[list[object]]
    vars: list[str]

    def __repr__(self) -> str:
        return f"const({self.rows!r} as {', '.join(self.vars)})"


@dataclass
class ExistsAtom(Atom):
    """Existential filter over a sub-body: ``exists(B)`` / ``not exists``."""

    body: list[Atom]
    negated: bool = False

    def __repr__(self) -> str:
        prefix = "not exists" if self.negated else "exists"
        return f"{prefix}({', '.join(map(repr, self.body))})"


@dataclass
class AssignAtom(Atom):
    """``(x = t)`` where x is fresh — an assignment."""

    var: str
    term: Term

    def __repr__(self) -> str:
        return f"({self.var} := {self.term!r})"


@dataclass
class FilterAtom(Atom):
    """A boolean condition over already-bound variables."""

    term: Term

    def __repr__(self) -> str:
        return f"({self.term!r})"


@dataclass
class OuterAtom(Atom):
    """Outer-join marker (``outer_left`` / ``outer_right`` / ``outer_full``).

    ``left_rel`` / ``right_rel`` are indices of the RelAtoms in the body
    that participate in the outer join; ``pairs`` are the joined variable
    pairs (left var name, right var name).
    """

    kind: str  # left | right | full
    left_rel: int
    right_rel: int
    pairs: list[tuple[str, str]]

    def __repr__(self) -> str:
        return f"outer_{self.kind}({self.pairs!r})"


# ---------------------------------------------------------------------------
# Head / Rule / Program
# ---------------------------------------------------------------------------


@dataclass
class SortSpec:
    keys: list[tuple[str, bool]]  # (var, ascending)
    limit: Optional[int] = None

    def __repr__(self) -> str:
        keys = ", ".join(f"{v}{'' if asc else ' desc'}" for v, asc in self.keys)
        lim = f" limit({self.limit})" if self.limit is not None else ""
        return f"sort({keys}){lim}"


@dataclass
class Head:
    rel: str
    vars: list[str]
    group: Optional[list[str]] = None
    sort: Optional[SortSpec] = None
    distinct: bool = False

    def __repr__(self) -> str:
        extra = ""
        if self.group is not None:
            extra += f" group({', '.join(self.group)})"
        if self.sort is not None:
            extra += f" {self.sort!r}"
        if self.distinct:
            extra += " distinct"
        return f"{self.rel}({', '.join(self.vars)}){extra}"


@dataclass
class Rule:
    head: Head
    body: list[Atom]

    def __repr__(self) -> str:
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."

    def rel_atoms(self) -> list[RelAtom]:
        return [a for a in self.body if isinstance(a, RelAtom)]

    def assigned_vars(self) -> set[str]:
        return {a.var for a in self.body if isinstance(a, AssignAtom)}

    def bound_vars(self) -> set[str]:
        bound: set[str] = set()
        for atom in self.body:
            if isinstance(atom, (RelAtom, ConstRelAtom)):
                bound.update(atom.vars)
            elif isinstance(atom, AssignAtom):
                bound.add(atom.var)
        return bound


@dataclass
class Program:
    rules: list[Rule]
    sink: str

    def __repr__(self) -> str:
        return "\n".join(map(repr, self.rules)) + f"\n-- sink: {self.sink}"

    def rule_for(self, rel: str) -> Optional[Rule]:
        for rule in self.rules:
            if rule.head.rel == rel:
                return rule
        return None

    def copy(self) -> "Program":
        import copy

        return copy.deepcopy(self)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def term_vars(term: Term) -> set[str]:
    """Free variables of a term."""
    if isinstance(term, Var):
        return {term.name}
    if isinstance(term, Const):
        return set()
    if isinstance(term, BinOp):
        return term_vars(term.left) | term_vars(term.right)
    if isinstance(term, If):
        return term_vars(term.cond) | term_vars(term.then) | term_vars(term.otherwise)
    if isinstance(term, Agg):
        return term_vars(term.arg) if term.arg is not None else set()
    if isinstance(term, Ext):
        out: set[str] = set()
        for a in term.args:
            out |= term_vars(a)
        return out
    if isinstance(term, Win):
        out = set()
        for a in term.args:
            out |= term_vars(a)
        for p in term.partition_by:
            out |= term_vars(p)
        for t, _asc in term.order_by:
            out |= term_vars(t)
        return out
    raise TypeError(f"not a term: {term!r}")


def atom_vars(atom: Atom) -> set[str]:
    """All variables an atom mentions (bound or used)."""
    if isinstance(atom, (RelAtom, ConstRelAtom)):
        return set(atom.vars)
    if isinstance(atom, AssignAtom):
        return {atom.var} | term_vars(atom.term)
    if isinstance(atom, FilterAtom):
        return term_vars(atom.term)
    if isinstance(atom, ExistsAtom):
        out: set[str] = set()
        for a in atom.body:
            out |= atom_vars(a)
        return out
    if isinstance(atom, OuterAtom):
        out = set()
        for l, r in atom.pairs:
            out.add(l)
            out.add(r)
        return out
    raise TypeError(f"not an atom: {atom!r}")


def map_term_vars(term: Term, mapping: dict[str, Term]) -> Term:
    """Substitute variables in a term by other terms."""
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, Const):
        return term
    if isinstance(term, BinOp):
        return BinOp(term.op, map_term_vars(term.left, mapping), map_term_vars(term.right, mapping))
    if isinstance(term, If):
        return If(
            map_term_vars(term.cond, mapping),
            map_term_vars(term.then, mapping),
            map_term_vars(term.otherwise, mapping),
        )
    if isinstance(term, Agg):
        return Agg(term.func, map_term_vars(term.arg, mapping) if term.arg is not None else None, term.distinct)
    if isinstance(term, Ext):
        return Ext(term.name, tuple(map_term_vars(a, mapping) for a in term.args))
    if isinstance(term, Win):
        return Win(
            term.func,
            tuple(map_term_vars(a, mapping) for a in term.args),
            tuple(map_term_vars(p, mapping) for p in term.partition_by),
            tuple((map_term_vars(t, mapping), asc) for t, asc in term.order_by),
            term.frame,
        )
    raise TypeError(f"not a term: {term!r}")


def rename_term(term: Term, renames: dict[str, str]) -> Term:
    """Rename variables in a term."""
    return map_term_vars(term, {old: Var(new) for old, new in renames.items()})
