"""Textual TondIR parser: reads the Datalog-style syntax the printer emits.

Lets programs be written/stored in the paper's concrete syntax::

    R1(a, s) group(a) :- R(a, b, c), (s := sum(b)).
    R2(a, s) sort(s desc) limit(10) :- R1(a, s).
    -- sink: R2

Round-trips with ``repr(Program)``; used by tests and the examples.
"""

from __future__ import annotations

import re


from ...errors import TondIRError
from .ir import (
    Agg, AssignAtom, Atom, BinOp, Const, ExistsAtom, Ext,
    FilterAtom, Head, If, Program, RelAtom, Rule, SortSpec, Term, Var,
)

__all__ = ["parse_program", "parse_rule", "parse_term"]

_TOKEN = re.compile(
    r"\s*(:=|:-|<=|>=|<>|!=|[(),.\[\]]|'(?:[^']|'')*'|[-+*/%=<>]|[A-Za-z_][A-Za-z0-9_]*"
    r"|\d+\.\d+(?:[eE][-+]?\d+)?|\d+)"
)

_AGG_NAMES = {"sum", "min", "max", "avg", "count", "count_distinct", "stddev", "var"}
_KEYWORDS = {"group", "sort", "limit", "distinct", "exists", "not", "if", "and", "or", "like"}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[str] = []
        pos = 0
        while pos < len(text):
            if text[pos].isspace():
                pos += 1
                continue
            m = _TOKEN.match(text, pos)
            if not m:
                raise TondIRError(f"cannot tokenize TondIR at: {text[pos:pos+25]!r}")
            self.items.append(m.group(1))
            pos = m.end()
        self.pos = 0

    def peek(self, offset: int = 0) -> str | None:
        i = self.pos + offset
        return self.items[i] if i < len(self.items) else None

    def next(self) -> str:
        if self.pos >= len(self.items):
            raise TondIRError("unexpected end of TondIR input")
        tok = self.items[self.pos]
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise TondIRError(f"expected {tok!r}, found {got!r}")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False

    @property
    def done(self) -> bool:
        return self.pos >= len(self.items)


def parse_program(text: str) -> Program:
    """Parse a full program; the sink defaults to the last rule's head."""
    sink = None
    rule_lines: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("--"):
            m = re.match(r"--\s*sink:\s*(\w+)", line)
            if m:
                sink = m.group(1)
            continue
        rule_lines.append(line)
    # Rules end with '.', possibly spanning lines.
    joined = " ".join(rule_lines)
    rules = []
    for chunk in _split_rules(joined):
        rules.append(parse_rule(chunk))
    if not rules:
        raise TondIRError("empty TondIR program")
    return Program(rules=rules, sink=sink or rules[-1].head.rel)


def _split_rules(text: str) -> list[str]:
    out = []
    depth = 0
    in_str = False
    start = 0
    i = 0
    while i < len(text):
        ch = text[i]
        if in_str:
            if ch == "'":
                in_str = False
        elif ch == "'":
            in_str = True
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "." and depth == 0 and not (i + 1 < len(text) and text[i + 1].isdigit()):
            out.append(text[start:i].strip())
            start = i + 1
        i += 1
    rest = text[start:].strip()
    if rest:
        out.append(rest)
    return [r for r in out if r]


def parse_rule(text: str) -> Rule:
    """Parse one ``Head :- Body`` rule (without the trailing dot)."""
    tokens = _Tokens(text)
    head = _parse_head(tokens)
    tokens.expect(":-")
    body = _parse_body(tokens)
    if not tokens.done:
        raise TondIRError(f"trailing tokens in rule: {tokens.items[tokens.pos:]}")
    return Rule(head=head, body=body)


def _parse_head(tokens: _Tokens) -> Head:
    rel = tokens.next()
    tokens.expect("(")
    vars_: list[str] = []
    if not tokens.accept(")"):
        vars_.append(tokens.next())
        while tokens.accept(","):
            vars_.append(tokens.next())
        tokens.expect(")")
    group = None
    sort = None
    distinct = False
    while True:
        if tokens.accept("group"):
            tokens.expect("(")
            group = [tokens.next()]
            while tokens.accept(","):
                group.append(tokens.next())
            tokens.expect(")")
        elif tokens.accept("sort"):
            tokens.expect("(")
            keys = []
            while True:
                var = tokens.next()
                asc = True
                if tokens.accept("desc"):
                    asc = False
                else:
                    tokens.accept("asc")
                keys.append((var, asc))
                if not tokens.accept(","):
                    break
            tokens.expect(")")
            sort = SortSpec(keys=keys)
        elif tokens.accept("limit"):
            tokens.expect("(")
            n = int(tokens.next())
            tokens.expect(")")
            if sort is None:
                sort = SortSpec(keys=[])
            sort.limit = n
        elif tokens.accept("distinct"):
            distinct = True
        else:
            break
    return Head(rel=rel, vars=vars_, group=group, sort=sort, distinct=distinct)


def _parse_body(tokens: _Tokens) -> list[Atom]:
    atoms = [_parse_atom(tokens)]
    while tokens.accept(","):
        atoms.append(_parse_atom(tokens))
    return atoms


def _parse_atom(tokens: _Tokens) -> Atom:
    tok = tokens.peek()
    if tok in ("exists", "not"):
        negated = False
        if tokens.accept("not"):
            negated = True
        tokens.expect("exists")
        tokens.expect("(")
        body = _parse_body(tokens)
        tokens.expect(")")
        return ExistsAtom(body=body, negated=negated)
    if tok == "(":
        # Parenthesized condition / assignment: (x := term) or (term).
        tokens.expect("(")
        if (
            tokens.peek() is not None
            and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tokens.peek() or "")
            and tokens.peek(1) == ":="
        ):
            var = tokens.next()
            tokens.next()  # :=
            term = parse_term_tokens(tokens)
            tokens.expect(")")
            return AssignAtom(var=var, term=term)
        term = parse_term_tokens(tokens)
        tokens.expect(")")
        return FilterAtom(term=term)
    # Relation access: name(v1, ..., vn)
    rel = tokens.next()
    tokens.expect("(")
    vars_: list[str] = []
    if not tokens.accept(")"):
        vars_.append(tokens.next())
        while tokens.accept(","):
            vars_.append(tokens.next())
        tokens.expect(")")
    return RelAtom(rel=rel, vars=vars_)


# ---------------------------------------------------------------------------
# Terms — precedence: or < and < comparison < additive < multiplicative
# ---------------------------------------------------------------------------

def parse_term(text: str) -> Term:
    tokens = _Tokens(text)
    term = parse_term_tokens(tokens)
    if not tokens.done:
        raise TondIRError(f"trailing term tokens: {tokens.items[tokens.pos:]}")
    return term


def parse_term_tokens(tokens: _Tokens) -> Term:
    return _parse_or(tokens)


def _parse_or(tokens: _Tokens) -> Term:
    left = _parse_and(tokens)
    while tokens.accept("or"):
        left = BinOp("or", left, _parse_and(tokens))
    return left


def _parse_and(tokens: _Tokens) -> Term:
    left = _parse_cmp(tokens)
    while tokens.accept("and"):
        left = BinOp("and", left, _parse_cmp(tokens))
    return left


def _parse_cmp(tokens: _Tokens) -> Term:
    left = _parse_add(tokens)
    while tokens.peek() in ("=", "<>", "!=", "<", "<=", ">", ">=", "like"):
        op = tokens.next()
        if op == "!=":
            op = "<>"
        left = BinOp(op, left, _parse_add(tokens))
    return left


def _parse_add(tokens: _Tokens) -> Term:
    left = _parse_mul(tokens)
    while tokens.peek() in ("+", "-"):
        op = tokens.next()
        left = BinOp(op, left, _parse_mul(tokens))
    return left


def _parse_mul(tokens: _Tokens) -> Term:
    left = _parse_primary(tokens)
    while tokens.peek() in ("*", "/", "%"):
        op = tokens.next()
        left = BinOp(op, left, _parse_primary(tokens))
    return left


def _parse_primary(tokens: _Tokens) -> Term:
    tok = tokens.peek()
    if tok is None:
        raise TondIRError("unexpected end of term")
    if tok == "(":
        tokens.next()
        inner = parse_term_tokens(tokens)
        tokens.expect(")")
        return inner
    if tok == "-":
        tokens.next()
        inner = _parse_primary(tokens)
        if isinstance(inner, Const) and isinstance(inner.value, (int, float)):
            return Const(-inner.value)
        return Ext("neg", (inner,))
    if tok.startswith("'"):
        tokens.next()
        return Const(tok[1:-1].replace("''", "'"))
    if re.fullmatch(r"\d+\.\d+(?:[eE][-+]?\d+)?", tok):
        tokens.next()
        return Const(float(tok))
    if re.fullmatch(r"\d+", tok):
        tokens.next()
        return Const(int(tok))
    if tok in ("True", "False"):
        tokens.next()
        return Const(tok == "True")
    if tok == "None":
        tokens.next()
        return Const(None)
    if tok == "if":
        tokens.next()
        tokens.expect("(")
        cond = parse_term_tokens(tokens)
        tokens.expect(",")
        then = parse_term_tokens(tokens)
        tokens.expect(",")
        otherwise = parse_term_tokens(tokens)
        tokens.expect(")")
        return If(cond, then, otherwise)
    # identifier: variable, aggregate, or external function
    name = tokens.next()
    if tokens.peek() == "(":
        tokens.next()
        if name in _AGG_NAMES:
            distinct = bool(tokens.accept("distinct"))
            if tokens.accept("*"):
                tokens.expect(")")
                return Agg("count", None)
            arg = parse_term_tokens(tokens)
            tokens.expect(")")
            return Agg(name, arg, distinct=distinct)
        args: list[Term] = []
        if not tokens.accept(")"):
            args.append(parse_term_tokens(tokens))
            while tokens.accept(","):
                args.append(parse_term_tokens(tokens))
            tokens.expect(")")
        return Ext(name, tuple(args))
    return Var(name)
