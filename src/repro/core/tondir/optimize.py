"""TondIR optimization passes (Section IV of the paper).

Levels match Figure 10's breakdown:

* **O1** — local + global dead-code elimination;
* **O2** — O1 + group/aggregate elimination;
* **O3** — O2 + self-join elimination;
* **O4** — O3 + rule inlining.

Each pass is a pure ``Program -> bool`` transformer (returns whether it
changed anything); :func:`optimize` runs the enabled passes to fixpoint.
"""

from __future__ import annotations

import itertools

from .analysis import (
    body_unique_vars, consumers, is_flow_breaker, unique_head_vars, used_vars,
)
from .ir import (
    Agg, AssignAtom, Atom, BinOp, Const, ConstRelAtom, ExistsAtom, Ext,
    FilterAtom, If, OuterAtom, Program, RelAtom, Rule, Term,
    rename_term, term_vars,
)

__all__ = ["optimize", "OPT_LEVELS", "local_dce", "global_dce",
           "group_aggregate_elimination", "self_join_elimination", "rule_inlining"]

OPT_LEVELS = {
    "O0": (),
    "O1": ("dce",),
    "O2": ("dce", "groupagg"),
    "O3": ("dce", "groupagg", "selfjoin"),
    "O4": ("dce", "groupagg", "selfjoin", "inline"),
}

_fresh_counter = itertools.count(1)


def _fresh(prefix: str = "t") -> str:
    return f"__{prefix}{next(_fresh_counter)}"


# ---------------------------------------------------------------------------
# O1a: local dead code elimination
# ---------------------------------------------------------------------------

def local_dce(program: Program) -> bool:
    """Remove assignments whose variable is never consumed (per rule)."""
    changed = False
    for rule in program.rules:
        while True:
            used = used_vars(rule)
            removable = [
                a for a in rule.body
                if isinstance(a, AssignAtom) and a.var not in used
                and not _has_side_effect(a.term)
            ]
            if not removable:
                break
            for atom in removable:
                rule.body.remove(atom)
            changed = True
    return changed


def _has_side_effect(term: Term) -> bool:
    # uid() numbering is positional; keep such assignments for safety.
    if isinstance(term, Ext) and term.name == "uid":
        return False
    return False


# ---------------------------------------------------------------------------
# O1b: global dead code elimination
# ---------------------------------------------------------------------------

def global_dce(program: Program) -> bool:
    """Drop unused head columns and unreachable rules program-wide."""
    changed = False

    # 1. Remove rules that no one reads (and are not the sink).
    while True:
        cons = consumers(program)
        dead = [
            r for r in program.rules
            if r.head.rel != program.sink and not cons.get(r.head.rel)
        ]
        if not dead:
            break
        for r in dead:
            program.rules.remove(r)
        changed = True

    # 2. Column pruning: for each producer, keep only head positions that
    #    some consumer actually uses.  Relations defined by several rules
    #    (union branches) are skipped: pruning them one rule at a time
    #    would desynchronize branch arities.
    cons = consumers(program)
    defined_count: dict[str, int] = {}
    for r in program.rules:
        defined_count[r.head.rel] = defined_count.get(r.head.rel, 0) + 1
    for producer in program.rules:
        rel = producer.head.rel
        if rel == program.sink or defined_count.get(rel, 0) > 1:
            continue
        readers = cons.get(rel, [])
        used_positions: set[int] = set()
        for reader in readers:
            reader_used = used_vars(reader)

            def visit(atoms):
                for atom in atoms:
                    if isinstance(atom, RelAtom) and atom.rel == rel:
                        for pos, var in enumerate(atom.vars):
                            if var != "_" and var in reader_used:
                                used_positions.add(pos)
                    elif isinstance(atom, ExistsAtom):
                        # Inside exists, every bound variable can constrain.
                        for inner in atom.body:
                            if isinstance(inner, RelAtom) and inner.rel == rel:
                                for pos, var in enumerate(inner.vars):
                                    if var != "_":
                                        used_positions.add(pos)

            visit(reader.body)
        arity = len(producer.head.vars)
        if len(used_positions) == arity:
            continue
        keep = sorted(used_positions)
        if not keep:
            keep = [0]  # keep one column so the relation stays well-formed
        # Shrink producer head.
        producer.head.vars = [producer.head.vars[i] for i in keep]
        # Shrink every access in consumers.
        for reader in readers:
            def shrink(atoms):
                for atom in atoms:
                    if isinstance(atom, RelAtom) and atom.rel == rel and len(atom.vars) == arity:
                        atom.vars = [atom.vars[i] for i in keep]
                    elif isinstance(atom, ExistsAtom):
                        shrink(atom.body)

            shrink(reader.body)
        changed = True
    if changed:
        # Pruned heads can strand assignments: clean locally again.
        local_dce(program)
    return changed


# ---------------------------------------------------------------------------
# O2: group/aggregate elimination
# ---------------------------------------------------------------------------

def group_aggregate_elimination(program: Program, base_unique: dict[str, set[str]]) -> bool:
    """Remove group-bys over keys that are already unique (Section IV).

    When the grouping column is unique in the rule's body, every group has
    exactly one row: the ``group`` clause is dropped and each aggregate
    collapses to its argument (``count`` collapses to 1).
    """
    changed = False
    unique_of = unique_head_vars(program, base_unique)
    for rule in program.rules:
        if rule.head.group is None or len(rule.head.group) != 1:
            continue
        key = rule.head.group[0]
        body_unique = body_unique_vars(rule, unique_of)
        if key not in body_unique:
            continue
        rule.head.group = None
        for atom in rule.body:
            if isinstance(atom, AssignAtom):
                atom.term = _collapse_aggregates(atom.term)
        changed = True
    if changed:
        unique_of = unique_head_vars(program, base_unique)
    return changed


def _collapse_aggregates(term: Term) -> Term:
    if isinstance(term, Agg):
        if term.func == "count":
            return Const(1)
        if term.func == "count_distinct":
            return Const(1)
        return _collapse_aggregates(term.arg)
    if isinstance(term, BinOp):
        return BinOp(term.op, _collapse_aggregates(term.left), _collapse_aggregates(term.right))
    if isinstance(term, If):
        return If(
            _collapse_aggregates(term.cond),
            _collapse_aggregates(term.then),
            _collapse_aggregates(term.otherwise),
        )
    if isinstance(term, Ext):
        return Ext(term.name, tuple(_collapse_aggregates(a) for a in term.args))
    return term


# ---------------------------------------------------------------------------
# O3: self-join elimination
# ---------------------------------------------------------------------------

def self_join_elimination(program: Program, base_unique: dict[str, set[str]]) -> bool:
    """Merge redundant self-joins on unique columns (Section IV).

    Two accesses of the same relation joined on a unique column always pair
    a row with itself, so the second access can be substituted by the
    first.
    """
    changed = False
    unique_of = unique_head_vars(program, base_unique)
    for rule in program.rules:
        if any(isinstance(a, OuterAtom) for a in rule.body):
            continue
        while _eliminate_one_self_join(rule, unique_of):
            changed = True
    return changed


def _eliminate_one_self_join(rule: Rule, unique_of: dict[str, set[str]]) -> bool:
    rel_atoms = rule.rel_atoms()
    for i in range(len(rel_atoms)):
        for j in range(i + 1, len(rel_atoms)):
            a, b = rel_atoms[i], rel_atoms[j]
            if a.rel != b.rel or len(a.vars) != len(b.vars):
                continue
            unique_cols = unique_of.get(a.rel, set())
            joined_on_unique = any(
                av == bv and av != "_" and av in unique_cols
                for av, bv in zip(a.vars, b.vars)
            )
            if not joined_on_unique:
                continue
            renames = {
                bv: av
                for av, bv in zip(a.vars, b.vars)
                if bv != av and bv != "_" and av != "_"
            }
            # Fill positions where a has '_' but b binds a variable.
            for pos, (av, bv) in enumerate(zip(a.vars, b.vars)):
                if av == "_" and bv != "_":
                    a.vars[pos] = bv
            rule.body.remove(b)
            _rename_rule_vars(rule, renames)
            return True
    return False


def _rename_rule_vars(rule: Rule, renames: dict[str, str]) -> None:
    if not renames:
        return
    rule.head.vars = [renames.get(v, v) for v in rule.head.vars]
    if rule.head.group is not None:
        rule.head.group = [renames.get(v, v) for v in rule.head.group]
    if rule.head.sort is not None:
        rule.head.sort.keys = [(renames.get(v, v), asc) for v, asc in rule.head.sort.keys]
    for atom in rule.body:
        _rename_atom_vars(atom, renames)


def _rename_atom_vars(atom: Atom, renames: dict[str, str]) -> None:
    if isinstance(atom, (RelAtom, ConstRelAtom)):
        atom.vars = [renames.get(v, v) for v in atom.vars]
    elif isinstance(atom, AssignAtom):
        atom.var = renames.get(atom.var, atom.var)
        atom.term = rename_term(atom.term, renames)
    elif isinstance(atom, FilterAtom):
        atom.term = rename_term(atom.term, renames)
    elif isinstance(atom, ExistsAtom):
        for inner in atom.body:
            _rename_atom_vars(inner, renames)
    elif isinstance(atom, OuterAtom):
        atom.pairs = [(renames.get(l, l), renames.get(r, r)) for l, r in atom.pairs]


# ---------------------------------------------------------------------------
# O4: rule inlining
# ---------------------------------------------------------------------------

def rule_inlining(program: Program) -> bool:
    """Fuse producer rules into consumers until flow breakers (Section IV)."""
    changed = False
    while True:
        cons = consumers(program)
        target = None
        for producer in program.rules:
            if is_flow_breaker(producer, program):
                continue
            readers = cons.get(producer.head.rel, [])
            if not readers:
                continue
            total_accesses = sum(
                sum(1 for a in r.rel_atoms() if a.rel == producer.head.rel)
                for r in readers
            )
            if total_accesses > 1 and not _is_cheap(producer):
                continue
            if any(_accesses_in_exists(r, producer.head.rel) for r in readers):
                continue
            # Outer-join markers index relation atoms positionally; do not
            # shift them by splicing a body into such a reader.
            if any(any(isinstance(a, OuterAtom) for a in r.body) for r in readers):
                continue
            target = producer
            break
        if target is None:
            return changed
        for reader in cons.get(target.head.rel, []):
            _inline_into(reader, target)
        program.rules.remove(target)
        changed = True


def _is_cheap(rule: Rule) -> bool:
    """Cheap enough to duplicate: one source, projections and filters only."""
    if len(rule.rel_atoms()) != 1:
        return False
    return all(isinstance(a, (RelAtom, AssignAtom, FilterAtom)) for a in rule.body)


def _accesses_in_exists(rule: Rule, rel: str) -> bool:
    for atom in rule.body:
        if isinstance(atom, ExistsAtom):
            for inner in atom.body:
                if isinstance(inner, RelAtom) and inner.rel == rel:
                    return True
    return False


def _inline_into(reader: Rule, producer: Rule) -> None:
    """Replace each access to the producer's relation with its body."""
    while True:
        access = next(
            (a for a in reader.rel_atoms() if a.rel == producer.head.rel), None
        )
        if access is None:
            return
        position = reader.body.index(access)

        # Map producer head vars -> reader's access vars; all other producer
        # vars get fresh names to avoid capture.
        renames: dict[str, str] = {}
        for head_var, reader_var in zip(producer.head.vars, access.vars):
            renames[head_var] = reader_var
        producer_vars: set[str] = set()
        for atom in producer.body:
            if isinstance(atom, (RelAtom, ConstRelAtom)):
                producer_vars.update(v for v in atom.vars if v != "_")
            elif isinstance(atom, AssignAtom):
                producer_vars.add(atom.var)
                producer_vars.update(term_vars(atom.term))
            elif isinstance(atom, FilterAtom):
                producer_vars.update(term_vars(atom.term))
            elif isinstance(atom, ExistsAtom):
                from .ir import atom_vars

                producer_vars.update(atom_vars(atom))
        for v in sorted(producer_vars):
            if v not in renames:
                renames[v] = _fresh(v.strip("_"))

        import copy

        new_atoms: list[Atom] = []
        for atom in producer.body:
            cloned = copy.deepcopy(atom)
            _rename_atom_vars(cloned, renames)
            new_atoms.append(cloned)

        # Drop '_' placeholders in the access: positions the reader ignores
        # are dead in the inlined body and cleaned up by DCE later.
        reader.body[position : position + 1] = new_atoms


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------

def optimize(
    program: Program,
    level: str = "O4",
    base_unique: dict[str, set[str]] | None = None,
    max_rounds: int = 20,
) -> Program:
    """Run the optimization pipeline at *level* ('O0'..'O4') to fixpoint.

    The well-formedness checker (:mod:`repro.analysis.ir_checker`) runs
    on the input program and again after every pass, with the
    base-relation set frozen at entry — a pass that breaks an invariant
    raises :class:`~repro.errors.IRInvariantError` naming that pass
    rather than leaving a malformed program for the SQL renderer.
    """
    # Imported here: repro.analysis also pulls in the plan verifier (and
    # with it the SQL engine), which must not become an import-time
    # dependency of the core translator.
    from ...analysis.ir_checker import check_program
    from ...errors import TondIRError

    if level not in OPT_LEVELS:
        raise TondIRError(f"unknown optimization level {level!r}")
    passes = OPT_LEVELS[level]
    base_unique = base_unique or {}
    program = program.copy()
    base_rels = check_program(program, stage=f"{level} input")

    def checked(pass_name: str, changed: bool) -> bool:
        if changed:
            check_program(program, base_rels, stage=pass_name)
        return changed

    for _ in range(max_rounds):
        changed = False
        if "dce" in passes:
            changed |= checked("local_dce", local_dce(program))
            changed |= checked("global_dce", global_dce(program))
        if "groupagg" in passes:
            changed |= checked(
                "group_aggregate_elimination",
                group_aggregate_elimination(program, base_unique))
        if "selfjoin" in passes:
            changed |= checked("self_join_elimination",
                               self_join_elimination(program, base_unique))
        if "inline" in passes:
            changed |= checked("rule_inlining", rule_inlining(program))
        if not changed:
            break
    return program
