"""TondIR: intermediate representation, analyses, and optimizer."""

from .ir import (
    Agg, AssignAtom, Atom, BinOp, Const, ConstRelAtom, ExistsAtom, Ext,
    FilterAtom, Head, If, OuterAtom, Program, RelAtom, Rule, SortSpec, Term, Var,
)
from .optimize import OPT_LEVELS, optimize

__all__ = [
    "Program", "Rule", "Head", "SortSpec",
    "RelAtom", "ConstRelAtom", "ExistsAtom", "AssignAtom", "FilterAtom", "OuterAtom",
    "Term", "Var", "Const", "BinOp", "If", "Agg", "Ext", "Atom",
    "optimize", "OPT_LEVELS",
]
