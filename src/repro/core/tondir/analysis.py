"""Program analyses: dependencies, flow breakers, uniqueness propagation."""

from __future__ import annotations

from .ir import (
    Agg, AssignAtom, Atom, ConstRelAtom, ExistsAtom, Ext, FilterAtom,
    OuterAtom, Program, RelAtom, Rule, Term, atom_vars, term_vars,
)

__all__ = [
    "references", "consumers", "contains_agg_term", "contains_win_term",
    "contains_ext", "is_flow_breaker", "is_union_branch", "unique_head_vars",
    "body_unique_vars", "used_vars",
]


def _walk_terms(atom: Atom):
    if isinstance(atom, AssignAtom):
        yield atom.term
    elif isinstance(atom, FilterAtom):
        yield atom.term
    elif isinstance(atom, ExistsAtom):
        for inner in atom.body:
            yield from _walk_terms(inner)


def _term_contains(term: Term, predicate) -> bool:
    if predicate(term):
        return True
    children = []
    from .ir import BinOp, If, Win

    if isinstance(term, BinOp):
        children = [term.left, term.right]
    elif isinstance(term, If):
        children = [term.cond, term.then, term.otherwise]
    elif isinstance(term, Agg) and term.arg is not None:
        children = [term.arg]
    elif isinstance(term, Ext):
        children = list(term.args)
    elif isinstance(term, Win):
        children = list(term.args) + list(term.partition_by)
        children += [t for t, _asc in term.order_by]
    return any(_term_contains(c, predicate) for c in children)


def contains_agg_term(rule: Rule) -> bool:
    """Does the rule body contain any aggregate term?"""
    for atom in rule.body:
        for term in _walk_terms(atom):
            if _term_contains(term, lambda t: isinstance(t, Agg)):
                return True
    return False


def contains_win_term(rule: Rule) -> bool:
    """Does the rule body contain any window term?"""
    from .ir import Win

    for atom in rule.body:
        for term in _walk_terms(atom):
            if _term_contains(term, lambda t: isinstance(t, Win)):
                return True
    return False


def contains_ext(rule: Rule, name: str) -> bool:
    """Does the rule body call external function *name* anywhere?"""
    for atom in rule.body:
        for term in _walk_terms(atom):
            if _term_contains(term, lambda t: isinstance(t, Ext) and t.name == name):
                return True
    return False


def references(rule: Rule) -> set[str]:
    """Relations this rule reads (including inside exists bodies)."""
    out: set[str] = set()

    def visit(atoms):
        for atom in atoms:
            if isinstance(atom, RelAtom):
                out.add(atom.rel)
            elif isinstance(atom, ExistsAtom):
                visit(atom.body)

    visit(rule.body)
    return out


def consumers(program: Program) -> dict[str, list[Rule]]:
    """Map from relation name to the rules that read it."""
    out: dict[str, list[Rule]] = {}
    for rule in program.rules:
        for rel in references(rule):
            out.setdefault(rel, []).append(rule)
    return out


def is_union_branch(rule: Rule, program: Program) -> bool:
    """Is *rule* one of several rules defining its head relation?

    Multiple rules with one head are the Datalog encoding of UNION ALL
    (emitted for ``pd.concat``); inlining or pruning a single branch would
    change the union, so passes must treat the branches as one unit.
    """
    return sum(1 for r in program.rules if r.head.rel == rule.head.rel) > 1


def is_flow_breaker(rule: Rule, program: Program) -> bool:
    """Flow breakers per Table VII of the paper.

    Aggregate / group-by / distinct / sort-limit / outer-join / sink rules
    cannot be fused into their consumers.  Rules generating a UID or
    containing a window term are also breakers because the computed value
    depends on the whole relation the function runs over — fusing one into
    a filtering consumer would change its input (and SQL forbids window
    functions in WHERE) (Section IV "Rule Inlining").  Union branches
    (several rules, one head) are breakers as a unit.
    """
    if rule.head.rel == program.sink:
        return True
    if is_union_branch(rule, program):
        return True
    if rule.head.group is not None:
        return True
    if rule.head.distinct:
        return True
    if rule.head.sort is not None:
        return True
    if contains_agg_term(rule):
        return True
    if any(isinstance(a, OuterAtom) for a in rule.body):
        return True
    if contains_ext(rule, "uid"):
        return True
    if contains_win_term(rule):
        return True
    return False


def used_vars(rule: Rule) -> set[str]:
    """Variables the rule actually uses (beyond just binding them).

    A bound variable counts as used when it appears in the head (vars,
    group, sort), in any assignment/filter/exists term, or when it is bound
    more than once (an implicit equi-join).
    """
    used: set[str] = set(rule.head.vars)
    if rule.head.group:
        used.update(rule.head.group)
    if rule.head.sort:
        used.update(v for v, _ in rule.head.sort.keys)
    binding_counts: dict[str, int] = {}
    for atom in rule.body:
        if isinstance(atom, (RelAtom, ConstRelAtom)):
            for v in atom.vars:
                if v != "_":
                    binding_counts[v] = binding_counts.get(v, 0) + 1
        elif isinstance(atom, AssignAtom):
            used.update(term_vars(atom.term))
            # An assignment to a variable that a relation atom also binds is
            # an equality constraint — both bindings are live.
            binding_counts[atom.var] = binding_counts.get(atom.var, 0) + 1
        elif isinstance(atom, FilterAtom):
            used.update(term_vars(atom.term))
        elif isinstance(atom, ExistsAtom):
            used.update(atom_vars(atom))
        elif isinstance(atom, OuterAtom):
            for l, r in atom.pairs:
                used.add(l)
                used.add(r)
    used.update(v for v, c in binding_counts.items() if c > 1)
    return used


def unique_head_vars(program: Program, base_unique: dict[str, set[str]]) -> dict[str, set[str]]:
    """Which head variables of each rule are row-unique in its output.

    *base_unique* maps base-table names to their unique column names (from
    the database catalog).  Propagation rules:

    * a group-by with a single key makes that key unique;
    * ``uid()`` assignments are unique by construction;
    * variables bound to unique source columns stay unique when every other
      joined relation joins through its own unique key (an N:1 join);
    * a distinct head over a single variable is unique.
    """
    out: dict[str, set[str]] = {rel: set(cols) for rel, cols in base_unique.items()}
    seen_rels: set[str] = set()
    for rule in program.rules:
        unique_in_body = body_unique_vars(rule, out)
        head_unique: set[str] = set()
        if rule.head.group is not None:
            if len(rule.head.group) == 1:
                head_unique.add(rule.head.group[0])
        elif rule.head.distinct and len(rule.head.vars) == 1:
            head_unique.add(rule.head.vars[0])
        else:
            head_unique = {v for v in rule.head.vars if v in unique_in_body}
        if rule.head.rel in seen_rels:
            # A union of branches is never unique, even if each branch is.
            head_unique = set()
        seen_rels.add(rule.head.rel)
        out[rule.head.rel] = head_unique
    return out


def body_unique_vars(rule: Rule, unique_of: dict[str, set[str]]) -> set[str]:
    """Variables that are row-unique in the rule's joined body relation."""
    rel_atoms = rule.rel_atoms()
    if not rel_atoms:
        return set()

    def atom_unique_vars(atom: RelAtom) -> set[str]:
        unique_cols = unique_of.get(atom.rel, set())
        return {v for v in atom.vars if v in unique_cols and v != "_"}

    uid_vars = {
        a.var for a in rule.body
        if isinstance(a, AssignAtom) and isinstance(a.term, Ext) and a.term.name == "uid"
    }

    if len(rel_atoms) == 1:
        return atom_unique_vars(rel_atoms[0]) | uid_vars

    # Multi-way join: a variable from atom A stays unique if every other
    # atom B joins to the body through one of B's unique variables.
    shared: dict[str, int] = {}
    for atom in rel_atoms:
        for v in set(atom.vars):
            if v != "_":
                shared[v] = shared.get(v, 0) + 1
    join_vars = {v for v, c in shared.items() if c > 1}

    result: set[str] = set(uid_vars)
    for i, atom in enumerate(rel_atoms):
        candidates = atom_unique_vars(atom)
        if not candidates:
            continue
        others_n_to_1 = True
        for j, other in enumerate(rel_atoms):
            if i == j:
                continue
            other_join = {v for v in other.vars if v in join_vars}
            other_unique = atom_unique_vars(other)
            if not (other_join & other_unique):
                others_n_to_1 = False
                break
        if others_n_to_1:
            result |= candidates
    return result
