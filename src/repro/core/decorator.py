"""The ``@pytond`` decorator: the user-facing entry point of the framework.

Adding ``@pytond(...)`` to a Pandas/NumPy function captures its source
statically (the function still runs normally in Python when called), and
exposes:

* ``fn.tondir(level)``  — the (optimized) TondIR program;
* ``fn.sql(backend, level)`` — the generated SQL for a backend dialect;
* ``fn.run(db, backend, threads, level)`` — in-database execution.

Contextual information (schemas, uniqueness, pivot domains) comes from the
database catalog and/or the decorator arguments — Section III-A.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap

from ..backends import Backend, ExecutionBackend, get_backend
from ..errors import BackendError, TranslationError
from .codegen.sqlgen import generate_sql
from .tondir.ir import Program
from .tondir.optimize import OPT_LEVELS, optimize
from .translate.engine import TableInfo, Translator

__all__ = ["pytond", "PytondFunction"]


def _function_ast(fn) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(fn))
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef) and node.name == fn.__name__:
            return node
    raise TranslationError(f"could not find function definition for {fn.__name__!r}")


class PytondFunction:
    """A Python function plus its static SQL compilation pipeline."""

    def __init__(
        self,
        fn,
        db=None,
        tables: dict[str, str] | None = None,
        table_info: dict[str, TableInfo] | None = None,
        layout: str = "dense",
        pivot_values: dict[str, list] | None = None,
        opt_level: str = "O4",
    ):
        functools.update_wrapper(self, fn)
        self._fn = fn
        self._db = db
        self._tables = tables or {}
        self._table_info = table_info or {}
        self._layout = layout
        self._pivot_values = pivot_values or {}
        self._opt_level = opt_level
        self._func_ast: ast.FunctionDef | None = None
        self._raw_program: Program | None = None
        self._programs: dict[str, Program] = {}
        self._base_unique: dict[str, set[str]] | None = None

    # -- normal Python execution -----------------------------------------------
    def __call__(self, *args, **kwargs):
        return self._fn(*args, **kwargs)

    @property
    def python(self):
        """The original, undecorated Python function."""
        return self._fn

    # -- translation -----------------------------------------------------------
    def _resolve_tables(self, db=None) -> dict[str, TableInfo]:
        cached = getattr(self, "_resolved_tables", None)
        if cached is not None and db is None:
            return cached
        db = db or self._db
        func_ast = self._ast()
        params = [a.arg for a in func_ast.args.args]
        out: dict[str, TableInfo] = {}
        for param in params:
            if param in self._table_info:
                out[param] = self._table_info[param]
                continue
            table_name = self._tables.get(param, param)
            if db is None:
                raise TranslationError(
                    f"no schema for parameter {param!r}: pass db= or table_info="
                )
            out[param] = TableInfo.from_schema(db.schema(table_name))
        self._resolved_tables = out
        return out

    def _ast(self) -> ast.FunctionDef:
        if self._func_ast is None:
            self._func_ast = _function_ast(self._fn)
        return self._func_ast

    def tondir(self, level: str | None = None, db=None) -> Program:
        """The TondIR program at optimization *level* ('O0'..'O4')."""
        level = level or self._opt_level
        if level not in OPT_LEVELS:
            raise TranslationError(f"unknown optimization level {level!r}")
        tables = self._resolve_tables(db)
        signature = tuple(
            (info.name, tuple(info.columns)) for info in tables.values()
        )
        if signature != getattr(self, "_schema_signature", None):
            # The catalog schema changed (e.g. a sweep re-registered a table
            # with a different width): invalidate the cached translation.
            self._schema_signature = signature
            self._raw_program = None
            self._programs = {}
        if level in self._programs:
            return self._programs[level]
        if self._raw_program is None:
            probe_db = db or self._db
            pivot_probe = None
            if probe_db is not None:
                def pivot_probe(rel, column, _db=probe_db):
                    result = _db.execute(f"SELECT DISTINCT {column} FROM {rel}")
                    values = result.to_dict()[column]
                    return sorted(v for v in values if v is not None)
            translator = Translator(
                tables=tables, pivot_values=self._pivot_values, layout=self._layout,
                pivot_probe=pivot_probe,
            )
            self._raw_program = translator.translate(self._ast())
            self._base_unique = translator.base_unique()
        program = optimize(self._raw_program, level, base_unique=self._base_unique or {})
        self._programs[level] = program
        return program

    def sql(self, backend: str | ExecutionBackend = "duckdb",
            level: str | None = None, db=None) -> str:
        """Generate SQL for *backend* at optimization *level*."""
        program = self.tondir(level, db)
        backend_obj = get_backend(backend) if isinstance(backend, str) else backend
        schemas = self._catalog_schemas(db)
        return generate_sql(program, schemas, backend_obj.dialect)

    def _catalog_schemas(self, db=None) -> dict[str, list[str]]:
        tables = self._resolve_tables(db)
        return {info.name: list(info.columns) for info in tables.values()}

    # -- in-database execution ----------------------------------------------------
    def run(
        self,
        db=None,
        backend: str | ExecutionBackend = "duckdb",
        threads: int = 1,
        level: str | None = None,
    ):
        """Execute the generated SQL on *db* and return a DataFrame.

        *backend* may name any registered backend: native-engine profiles
        run in-process under their :class:`EngineConfig`; oracle backends
        (``sqlite``, ``duckdb_real``) compile the generated SQL into their
        own dialect and execute it against a mirror of *db*'s tables.
        """
        db = db or self._db
        if db is None:
            raise TranslationError("run() requires a database connection")
        backend_obj = get_backend(backend) if isinstance(backend, str) else backend
        sql = self.sql(backend_obj, level, db)
        if isinstance(backend_obj, Backend):
            return db.execute(sql, config=backend_obj.config(threads=threads))
        # Protocol path: sql() already generated text in the backend's own
        # dialect, so compile() must not rewrite it a second time.
        artifact = backend_obj.compile(sql, dialect=backend_obj.dialect.name)
        return backend_obj.execute(db, artifact).to_dataframe()

    def explain(
        self,
        db=None,
        backend: str | ExecutionBackend = "duckdb",
        threads: int = 1,
        level: str | None = None,
    ) -> str:
        """EXPLAIN ANALYZE the generated SQL: the backend's physical plan."""
        db = db or self._db
        if db is None:
            raise TranslationError("explain() requires a database connection")
        backend_obj = get_backend(backend) if isinstance(backend, str) else backend
        sql = self.sql(backend_obj, level, db)
        if isinstance(backend_obj, Backend):
            return db.explain(sql, config=backend_obj.config(threads=threads))
        explain = getattr(backend_obj, "explain", None)
        if explain is None:
            raise BackendError(
                f"backend {backend_obj.name!r} does not support explain()")
        artifact = backend_obj.compile(sql, dialect=backend_obj.dialect.name)
        return explain(db, artifact)


def pytond(
    db=None,
    tables: dict[str, str] | None = None,
    table_info: dict[str, TableInfo] | None = None,
    layout: str = "dense",
    pivot_values: dict[str, list] | None = None,
    opt_level: str = "O4",
):
    """Decorator factory: ``@pytond(db=...)`` marks a function for translation.

    Parameters mirror the paper's decorator arguments: *layout* selects the
    dense/sparse tensor representation (Section II-B), *pivot_values*
    supplies the distinct-value domains pivot translation needs
    (Section III-C), and schema/uniqueness metadata is read from the *db*
    catalog or given explicitly via *table_info*.
    """

    def wrap(fn):
        return PytondFunction(
            fn, db=db, tables=tables, table_info=table_info,
            layout=layout, pivot_values=pivot_values, opt_level=opt_level,
        )

    return wrap
