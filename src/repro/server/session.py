"""Client sessions: a thin connection object over the query scheduler.

A :class:`Session` is the unit a client (one REPL, one HTTP handler, one
load-generator thread) holds.  It routes queries through the shared
:class:`~repro.server.scheduler.QueryScheduler`, offers ``prepare`` for the
plan-once/execute-many hot path, and keeps per-session statistics
(counts, rows, and a latency reservoir reduced to p50/p99).
"""

from __future__ import annotations

import random
import threading

import numpy as np

from ..sqlengine.database import PreparedStatement

__all__ = ["Session", "percentile"]


def percentile(latencies_ms, q: float) -> float:
    """The *q*-th percentile (0..100) of a latency sample, NaN when empty."""
    if not len(latencies_ms):
        return float("nan")
    return float(np.percentile(np.asarray(latencies_ms, dtype=np.float64), q))


class Session:
    """One client's connection to a served database.

    Thread-compatible: a session is meant to be used from one client thread
    (like a DB-API connection); the internal lock only protects the stats
    against the scheduler's dispatcher threads reporting completions.
    """

    # Bound the latency reservoir so a long-lived session cannot grow
    # without limit; ~100k float64 is <1 MB and plenty for percentiles.
    _MAX_LATENCIES = 100_000

    def __init__(self, scheduler, name: str | None = None):
        self._scheduler = scheduler
        self.name = name or f"session-{id(self):x}"
        self._lock = threading.Lock()
        self._queries = 0
        self._errors = 0
        self._timeouts = 0
        self._cancelled = 0
        self._rows = 0
        self._replans = 0
        self._latencies_ms: list[float] = []
        self._latency_count = 0  # samples offered, including replaced ones
        self._rng = random.Random(id(self))

    # -- querying ----------------------------------------------------------
    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare against the served database (plans shared with every
        other session executing the same statement shape)."""
        return self._scheduler.db.prepare(sql)

    def submit(self, statement, params=None, *, timeout=None, config=None,
               stats=None):
        """Enqueue a query (SQL text or PreparedStatement); returns the
        ticket.  May raise AdmissionError — sessions do not retry."""
        return self._scheduler.submit(
            statement,
            params,
            config=config,
            timeout=timeout,
            session=self,
            stats=stats,
        )

    def execute(self, statement, params=None, *, timeout=None, config=None):
        """Submit and block for the DataFrame result."""
        return self.submit(statement, params, timeout=timeout, config=config).result()

    # -- statistics --------------------------------------------------------
    def _record(self, ticket) -> None:
        """Called by the scheduler's dispatcher when a ticket finishes."""
        with self._lock:
            self._queries += 1
            if ticket.status == "failed":
                self._errors += 1
            elif ticket.status == "timeout":
                self._timeouts += 1
            elif ticket.status == "cancelled":
                self._cancelled += 1
            elif ticket._chunk is not None:
                self._rows += ticket._chunk.nrows
            self._replans += getattr(ticket, "replans", 0)
            if ticket.total_ms is not None:
                # Uniform reservoir sampling: once the buffer is full, each
                # new sample replaces a random slot with probability
                # MAX/offered, so percentiles track the whole lifetime
                # instead of freezing on the first 100k queries.
                self._latency_count += 1
                if len(self._latencies_ms) < self._MAX_LATENCIES:
                    self._latencies_ms.append(ticket.total_ms)
                else:
                    slot = self._rng.randrange(self._latency_count)
                    if slot < self._MAX_LATENCIES:
                        self._latencies_ms[slot] = ticket.total_ms

    def snapshot_latencies(self) -> list[float]:
        """A copy of the latency reservoir (milliseconds) — lets the metrics
        endpoint compute fleet-wide percentiles over the union of sessions
        instead of averaging per-session percentiles."""
        with self._lock:
            return list(self._latencies_ms)

    def stats(self) -> dict:
        """Per-session counters and latency percentiles (milliseconds)."""
        with self._lock:
            lat = list(self._latencies_ms)
            return {
                "name": self.name,
                "queries": self._queries,
                "errors": self._errors,
                "timeouts": self._timeouts,
                "cancelled": self._cancelled,
                "rows": self._rows,
                "replans": self._replans,
                "p50_ms": percentile(lat, 50),
                "p99_ms": percentile(lat, 99),
            }

    def __repr__(self) -> str:
        return f"Session({self.name!r}, queries={self._queries})"
