"""Multi-process sharded execution: scatter/gather over stored tables.

:class:`ShardedDatabase` is a :class:`~repro.sqlengine.Database` attached
to a persistent :class:`~repro.storage.ColumnStore` that, when
``EngineConfig.shard_workers > 0``, executes *shardable* queries across a
pool of ``multiprocessing`` engine workers instead of in-process:

* the largest stored table in the query is **range-partitioned by chunk**
  (contiguous chunk ranges in row order — the property every ordering
  argument below leans on); every other table is replicated (workers mmap
  the same chunk files, so replication costs page-cache residency, not
  copies);
* each worker runs the full engine over its partition — scan → zone-map
  pruning → filter → join — producing **partial aggregates** (AVG is
  decomposed into SUM+COUNT) or a **partial Top-K**;
* the coordinator gathers partials and merges them with the engine's own
  kernels: :func:`~repro.sqlengine.grouping.factorize_many` +
  :func:`~repro.sqlengine.grouping.parallel_group_reduce` for aggregates,
  :func:`~repro.sqlengine.topk.topk_positions` for Top-K.

Why the result matches serial execution exactly (up to the engine's usual
float-merge tolerance): numeric group keys factorize in sorted-unique
order (partition-invariant); object keys factorize first-appearance, and
concatenating per-worker group outputs in partition order preserves global
first appearance; each worker's stable local top-k is a superset filter of
the global top-k, and the gathered candidates are re-sorted stably with
gathered position — which equals original row order — as the tie-break.

Everything else — subqueries, CTEs, DISTINCT, HAVING, window functions,
compound selects, expressions over aggregates — **falls back** to serial
in-process execution, so sharding can never change what a query means.

Degradation: a worker death (``BrokenProcessPool``) surfaces as a typed
:class:`~repro.errors.ShardError` on the in-flight query — never a hang —
and the pool is rebuilt lazily so subsequent queries are served.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from ..dataframe._common import isna_array
from ..errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ShardError,
    SQLExecutionError,
)
from ..sqlengine.database import Database, PreparedStatement
from ..sqlengine.executor import EngineConfig, Executor
from ..sqlengine.grouping import factorize_many, parallel_group_reduce
from ..sqlengine.params import bind_parameters, signature_of
from ..sqlengine.parser import parse
from ..sqlengine.sqlast import (
    AggCall,
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    ExistsExpr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    LikeExpr,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
    WindowCall,
)
from ..sqlengine.table import Chunk
from ..sqlengine.topk import topk_positions
from ..storage.format import _chunk_file, load_chunk_array, open_store
from ..storage.table import StoredTable
from .wire import exception_for

__all__ = ["ShardedDatabase", "ShardPool", "ShardQuery", "analyze_shard_query"]

_MERGEABLE_AGGS = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})
# Top-K scatter ships up to k rows per worker; beyond this the gather is a
# full materialization and serial execution is the honest path.
_MAX_TOPK_LIMIT = 1_000_000


# ---------------------------------------------------------------------------
# Shard-plan analysis (AST level)
# ---------------------------------------------------------------------------

@dataclass
class ShardQuery:
    """The scatter/gather recipe for one shardable statement."""

    kind: str                       # "agg" | "topk"
    table: str                      # chunk-partitioned stored table
    nkeys: int                      # len(select.group_by)
    agg_funcs: list[str] = field(default_factory=list)
    agg_fills: list = field(default_factory=list)  # COALESCE(agg, lit) fills
    agg_item_indices: list[int] = field(default_factory=list)
    items: list[tuple[str, int]] = field(default_factory=list)  # ("key"|"agg", i)
    order: list[tuple[str, int, bool]] = field(default_factory=list)
    order_cols: list[tuple[str, bool]] = field(default_factory=list)  # topk
    limit: int | None = None
    names: list[str] = field(default_factory=list)


def _iter_exprs(expr):
    """Yield every expression node reachable from *expr* without entering
    subquery bodies (their mere presence disqualifies sharding)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, (FuncCall,)):
        children = tuple(expr.args)
    elif isinstance(expr, AggCall):
        children = (expr.arg,) if expr.arg is not None else ()
    elif isinstance(expr, WindowCall):
        children = tuple(expr.args) + tuple(expr.partition_by)
    elif isinstance(expr, CaseExpr):
        children = tuple(e for c, v in expr.branches for e in (c, v))
        if expr.default is not None:
            children += (expr.default,)
    elif isinstance(expr, CastExpr):
        children = (expr.operand,)
    elif isinstance(expr, BetweenExpr):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, (IsNull, LikeExpr, InList)):
        children = (expr.operand,)
        if isinstance(expr, InList):
            children += tuple(expr.items)
    else:
        children = ()
    for child in children:
        yield from _iter_exprs(child)


def _has_forbidden(exprs) -> bool:
    for root in exprs:
        for node in _iter_exprs(root):
            if isinstance(node, (InSubquery, ExistsExpr, ScalarSubquery,
                                 WindowCall)):
                return True
    return False


def _output_name(item: SelectItem, position: int) -> str:
    # Mirrors Executor._output_name so gathered columns line up with what
    # the serial path would have called them.
    if item.alias:
        return item.alias
    if isinstance(item.expr, ColumnRef):
        return item.expr.name
    return f"col{position}"


def _expr_key(expr) -> str:
    from ..sqlengine.expressions import expr_key

    return expr_key(expr)


def _inline_single_cte(query: Query) -> Select | None:
    """Inline ``WITH v AS (<select>) SELECT cols FROM v ORDER BY ... LIMIT n``.

    The optimizer's SQL renderer wraps aggregates this way (the CTE holds
    the GROUP BY, the outer body is a pure column projection), so without
    this inlining nothing it emits would ever scatter.  Returns the merged
    select — the inner body re-projected/aliased per the outer item list,
    with the outer ORDER BY/LIMIT attached — or ``None`` when the shape is
    anything richer than a rename (then serial execution handles it).
    """
    if len(query.ctes) != 1:
        return None
    cte = query.ctes[0]
    outer = query.body
    inner = cte.query
    if not isinstance(outer, Select) or not isinstance(inner, Select):
        return None
    if (outer.joins or outer.where is not None or outer.group_by
            or outer.having is not None or outer.distinct):
        return None
    if len(outer.relations) != 1:
        return None
    rel = outer.relations[0]
    if not isinstance(rel, TableRef) or rel.name != cte.name:
        return None
    if inner.order_by or inner.limit is not None:
        return None
    cte_cols = cte.column_names or [_output_name(it, i)
                                    for i, it in enumerate(inner.items)]
    if len(cte_cols) != len(inner.items):
        return None
    binding = rel.alias or rel.name
    items: list[SelectItem] = []
    for pos, item in enumerate(outer.items):
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            return None
        if expr.table is not None and expr.table != binding:
            return None
        if expr.name not in cte_cols:
            return None
        src = inner.items[cte_cols.index(expr.name)]
        items.append(SelectItem(expr=src.expr, alias=_output_name(item, pos)))
    order_by: list[OrderItem] = []
    for oi in outer.order_by:
        expr = oi.expr
        if not isinstance(expr, ColumnRef):
            return None
        if expr.table is not None and expr.table != binding:
            return None
        order_by.append(OrderItem(expr=ColumnRef(name=expr.name, table=None),
                                  ascending=oi.ascending))
    return replace(inner, items=items, order_by=order_by, limit=outer.limit)


def _shard_select(query: Query) -> Select | None:
    """The Select a scatter would decompose — the body, or the inlined CTE."""
    if query.ctes:
        return _inline_single_cte(query)
    return query.body if isinstance(query.body, Select) else None


def _unwrap_agg(expr) -> tuple[AggCall | None, object]:
    """Match a mergeable aggregate item: a bare AggCall, or the renderer's
    ``COALESCE(<agg>, <numeric literal>)`` wrapper — the fill is applied
    after the merge (an all-NULL group's merged partial is NULL too, so
    post-merge filling equals serial COALESCE)."""
    if isinstance(expr, AggCall):
        return expr, None
    if (isinstance(expr, FuncCall) and expr.name.upper() == "COALESCE"
            and len(expr.args) == 2 and isinstance(expr.args[0], AggCall)
            and isinstance(expr.args[1], Literal)
            and isinstance(expr.args[1].value, (int, float))
            and not isinstance(expr.args[1].value, bool)):
        return expr.args[0], expr.args[1].value
    return None, None


def analyze_shard_query(query: Query, stored: dict) -> ShardQuery | None:
    """Decide whether *query* scatters, returning its recipe or ``None``.

    *stored* maps table name → attached :class:`StoredTable`.  Returning
    ``None`` is always safe (the caller runs serial); returning a recipe
    asserts the scatter/gather result is identical to serial execution.
    """
    select = _shard_select(query)
    if select is None:
        return None
    if select.distinct or select.having is not None:
        return None

    # Relations: plain tables only, INNER/CROSS joins only, and exactly one
    # occurrence of the (largest) stored table that will be partitioned.
    refs: list[TableRef] = []
    for rel in select.relations:
        if not isinstance(rel, TableRef):
            return None
        refs.append(rel)
    for join in select.joins:
        if join.kind not in ("INNER", "CROSS"):
            return None
        if not isinstance(join.relation, TableRef):
            return None
        refs.append(join.relation)
    if not refs:
        return None
    candidates = [r for r in refs if r.name in stored
                  and stored[r.name].nchunks > 0]
    if not candidates:
        return None
    if any(r.name not in stored for r in refs):
        return None  # workers only see store-attached tables
    shard_ref = max(candidates, key=lambda r: stored[r.name].nrows)
    if sum(1 for r in refs if r.name == shard_ref.name) != 1:
        return None  # self-join on the shard table: rows would pair twice

    roots = [it.expr for it in select.items]
    roots += [j.condition for j in select.joins if j.condition is not None]
    roots += list(select.group_by)
    roots += [o.expr for o in select.order_by]
    if select.where is not None:
        roots.append(select.where)
    if _has_forbidden(roots):
        return None

    group_keys = [_expr_key(g) for g in select.group_by]
    names = [_output_name(it, i) for i, it in enumerate(select.items)]

    items: list[tuple[str, int]] = []
    agg_funcs: list[str] = []
    agg_fills: list = []
    agg_item_indices: list[int] = []
    has_agg = False
    for idx, item in enumerate(select.items):
        expr = item.expr
        agg_expr, fill = _unwrap_agg(expr)
        if agg_expr is not None:
            func = agg_expr.func.upper()
            if agg_expr.distinct or func not in _MERGEABLE_AGGS:
                return None
            items.append(("agg", len(agg_funcs)))
            agg_funcs.append(func)
            agg_fills.append(fill)
            agg_item_indices.append(idx)
            has_agg = True
            continue
        key = _expr_key(expr)
        if key in group_keys:
            items.append(("key", group_keys.index(key)))
            continue
        if any(isinstance(n, AggCall) for n in _iter_exprs(expr)):
            return None  # expression over aggregates: no partial form (yet)
        if not select.group_by and not has_agg:
            break  # plain projection: consider the Top-K path below
        return None

    if has_agg or select.group_by:
        if len(items) != len(select.items):
            return None
        order: list[tuple[str, int, bool]] = []
        for oi in select.order_by:
            okey = _expr_key(oi.expr)
            target = None
            if isinstance(oi.expr, ColumnRef) and oi.expr.table is None:
                for pos, name in enumerate(names):
                    if name == oi.expr.name:
                        target = ("item", pos, oi.ascending)
                        break
            if target is None:
                for pos, item in enumerate(select.items):
                    if _expr_key(item.expr) == okey:
                        target = ("item", pos, oi.ascending)
                        break
            if target is None and okey in group_keys:
                target = ("key", group_keys.index(okey), oi.ascending)
            if target is None:
                return None
            order.append(target)
        return ShardQuery(
            kind="agg", table=shard_ref.name, nkeys=len(select.group_by),
            agg_funcs=agg_funcs, agg_fills=agg_fills,
            agg_item_indices=agg_item_indices,
            items=items, order=order, limit=select.limit, names=names,
        )

    # Top-K path: pure scan/filter/join projection + ORDER BY ... LIMIT k.
    if select.group_by or not select.order_by or select.limit is None:
        return None
    if select.limit > _MAX_TOPK_LIMIT:
        return None
    order_cols: list[tuple[str, bool]] = []
    has_star = any(not isinstance(it.expr, ColumnRef) and
                   type(it.expr).__name__ == "Star" for it in select.items)
    for oi in select.order_by:
        resolved = None
        if isinstance(oi.expr, ColumnRef):
            if oi.expr.table is None and oi.expr.name in names:
                resolved = oi.expr.name
            elif has_star:
                resolved = oi.expr.name  # resolved against runtime columns
        if resolved is None:
            okey = _expr_key(oi.expr)
            for pos, item in enumerate(select.items):
                if _expr_key(item.expr) == okey:
                    resolved = names[pos]
                    break
        if resolved is None:
            return None
        order_cols.append((resolved, oi.ascending))
    return ShardQuery(kind="topk", table=shard_ref.name, nkeys=0,
                      order_cols=order_cols, limit=select.limit, names=names)


def build_partial_select(select: Select, agg_item_indices: list[int]) -> Select:
    """The per-worker rewrite of an aggregate select: group keys first,
    then one partial column per aggregate (two for AVG — SUM and COUNT),
    with ORDER BY / LIMIT stripped (they apply after the merge)."""
    items = [SelectItem(expr=g, alias=f"__k{i}")
             for i, g in enumerate(select.group_by)]
    for j, idx in enumerate(agg_item_indices):
        agg, _fill = _unwrap_agg(select.items[idx].expr)
        func = agg.func.upper()
        if func == "AVG":
            items.append(SelectItem(expr=AggCall("SUM", agg.arg), alias=f"__s{j}"))
            items.append(SelectItem(expr=AggCall("COUNT", agg.arg), alias=f"__c{j}"))
        else:
            items.append(SelectItem(expr=AggCall(func, agg.arg), alias=f"__p{j}"))
    return replace(select, items=items, order_by=[], limit=None)


# ---------------------------------------------------------------------------
# Worker side (module-level: must be picklable under fork *and* spawn)
# ---------------------------------------------------------------------------

class _ChunkSlice(StoredTable):
    """A StoredTable view over a subset of another table's chunks.

    Registered in a worker's catalog under the original table name: scans,
    zone-map pruning, and planner sampling all see only this partition,
    reading the very same mmap'd chunk files as every other worker (the
    zero-copy property — the OS page cache is the shared buffer pool).
    """

    def __init__(self, root, name: str, meta: dict, chunk_ids: list[int]):
        sub = dict(meta)
        sub["chunks"] = [meta["chunks"][i] for i in chunk_ids]
        sub["nrows"] = int(sum(int(meta["chunks"][i]["rows"]) for i in chunk_ids))
        super().__init__(root, name, sub)
        self._file_ids = list(chunk_ids)

    def _load(self, col_idx: int, chunk_id: int) -> np.ndarray:
        dtype = self._dtypes[col_idx]
        rows = self.chunk_length(chunk_id)
        path = _chunk_file(self._root, self.name, col_idx,
                           self._file_ids[chunk_id])
        arr = load_chunk_array(path, dtype, rows)
        self.io_stats["chunks_read"] += 1
        self.io_stats["rows_read"] += rows
        self.io_stats["bytes_read"] += int(arr.nbytes)
        return arr


_WORKER_STORE = None
_WORKER_CATALOGS: dict = {}
_WORKER_PLANS: dict = {}


def _shard_worker_init(root: str) -> None:
    global _WORKER_STORE, _WORKER_CATALOGS, _WORKER_PLANS
    _WORKER_STORE = open_store(root)
    _WORKER_CATALOGS = {}
    _WORKER_PLANS = {}


def _worker_db(table: str, chunk_ids: tuple) -> Database:
    key = (table, chunk_ids)
    db = _WORKER_CATALOGS.get(key)
    if db is None:
        db = Database()
        store = _WORKER_STORE
        for name in store.tables():
            if name == table:
                db.catalog.register(
                    _ChunkSlice(store.root, name, store.table_meta(name),
                                list(chunk_ids))
                )
            else:
                db.catalog.register(store.table(name))
        _WORKER_CATALOGS[key] = db
    return db


def _shard_worker_run(task: dict):
    """Execute one scatter task; returns a plain tuple (never raises, so
    no exception ever has to survive pickling):

    * ``("ok", columns, arrays)`` — the partial result,
    * ``("err", exc_class_name, message)`` — a typed failure to rebuild,
    * ``("pong", pid)`` — pool warmup / liveness probe.
    """
    try:
        kind = task["kind"]
        if kind == "ping":
            return ("pong", os.getpid())
        if kind == "exit":  # deliberate crash hook for degradation tests
            os._exit(int(task.get("code", 1)))
        if task.get("delay"):
            time.sleep(float(task["delay"]))
        sql = task["sql"]
        config: EngineConfig = replace(task["config"], shard_workers=0)
        chunk_ids = tuple(task["chunks"])
        db = _worker_db(task["table"], chunk_ids)
        cache_key = (sql, config.plan_fingerprint(), task["table"], chunk_ids)
        entry = _WORKER_PLANS.get(cache_key)
        if entry is None:
            query = parse(sql)
            select = _shard_select(query)
            if select is None:
                raise SQLExecutionError(
                    "statement no longer analyzes as shardable in the worker"
                )
            if kind == "agg":
                worker_select = build_partial_select(select,
                                                     task["agg_items"])
            else:
                worker_select = select
            entry = {
                "query": Query(ctes=[], body=worker_select),
                # Bind against the ORIGINAL statement's signature: the
                # rewrite may drop placeholders (ORDER BY is stripped) and
                # arity checking must still accept the caller's values.
                "signature": signature_of(query),
                "plans": {},
            }
            _WORKER_PLANS[cache_key] = entry
        bound = bind_parameters(entry["signature"], task["params"])
        executor = Executor(db.catalog, config, plans=entry["plans"],
                            params=bound)
        chunk = executor.execute(entry["query"])
        return ("ok", list(chunk.columns),
                [np.asarray(arr) for arr in chunk.arrays])
    except BaseException as exc:
        return ("err", type(exc).__name__, str(exc))


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------

class ShardPool:
    """N engine worker processes over one column store.

    The executor is created lazily and *replaced* after a
    ``BrokenProcessPool`` — the erroring query gets a typed
    :class:`~repro.errors.ShardError`, the next one gets a fresh pool.
    """

    def __init__(self, root, workers: int, *, start_method: str | None = None):
        if workers < 1:
            raise ShardError("shard_workers must be >= 1")
        self.root = str(root)
        self.workers = int(workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self.restarts = 0

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._ctx,
                    initializer=_shard_worker_init,
                    initargs=(self.root,),
                )
            return self._executor

    def submit(self, task: dict):
        try:
            return self._ensure().submit(_shard_worker_run, task)
        except (BrokenProcessPool, RuntimeError) as exc:
            self.mark_broken()
            raise ShardError(f"shard pool unavailable: {exc}") from None

    def warm(self) -> list[int]:
        """Spin up every worker; returns their pids (degradation tests and
        the soak harness kill one of these deliberately)."""
        executor = self._ensure()
        futures = [executor.submit(_shard_worker_run, {"kind": "ping"})
                   for _ in range(self.workers)]
        for f in futures:
            f.result(timeout=120)
        return sorted(p.pid for p in executor._processes.values())

    def worker_pids(self) -> list[int]:
        return self.warm()

    def mark_broken(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            if executor is not None:
                self.restarts += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# Gather / merge
# ---------------------------------------------------------------------------

def _concat_columns(results: list[tuple[list[str], list[np.ndarray]]]):
    """Concatenate per-worker partial chunks column-wise, promoting dtypes
    (a worker whose groups were all-NULL returns float partials where
    another returned ints)."""
    columns = results[0][0]
    ncols = len(columns)
    out: list[np.ndarray] = []
    for i in range(ncols):
        segments = [r[1][i] for r in results]
        target = segments[0].dtype
        for seg in segments[1:]:
            if seg.dtype != target:
                if seg.dtype == object or target == object:
                    target = np.dtype(object)
                else:
                    target = np.promote_types(seg.dtype, target)
        out.append(np.concatenate([s.astype(target, copy=False)
                                   for s in segments])
                   if len(segments) > 1 else segments[0])
    return columns, out


def _merge_minmax_generic(values: np.ndarray, gids: np.ndarray,
                          ngroups: int, func: str) -> np.ndarray:
    """Per-group min/max over dtypes the vector kernel declines (strings,
    dates).  Group counts are small post-aggregation, so a Python loop is
    fine; NULLs are skipped and all-NULL groups stay NULL."""
    better = (lambda a, b: a < b) if func == "MIN" else (lambda a, b: a > b)
    if values.dtype.kind == "M":
        out = np.full(ngroups, np.datetime64("NaT"), dtype=values.dtype)
        valid = ~isna_array(values)
        for g, v, ok in zip(gids.tolist(), values, valid):
            if ok and (np.isnat(out[g]) or better(v, out[g])):
                out[g] = v
        return out
    slots: list = [None] * ngroups
    for g, v in zip(gids.tolist(), values):
        if v is None or (isinstance(v, float) and v != v):
            continue
        if slots[g] is None or better(v, slots[g]):
            slots[g] = v
    out = np.empty(ngroups, dtype=object)
    out[:] = slots
    return out


def _apply_fill(out: np.ndarray, fill) -> np.ndarray:
    """Post-merge COALESCE: NULLs an all-NULL group produced become *fill*."""
    arr = np.asarray(out)
    if arr.dtype.kind == "f":
        mask = np.isnan(arr)
        if mask.any():
            return np.where(mask, fill, arr)
        return arr
    if arr.dtype == object:
        filled = np.empty(len(arr), dtype=object)
        filled[:] = [fill if v is None else v for v in arr]
        return filled
    return arr


def _merge_agg(results, shard_q: ShardQuery, threads: int) -> Chunk:
    _, arrays = _concat_columns(results)
    nk = shard_q.nkeys
    nrows = len(arrays[0]) if arrays else 0
    if nk:
        gids, key_cols, ngroups = factorize_many(arrays[:nk])
    else:
        gids = np.zeros(nrows, dtype=np.int64)
        key_cols, ngroups = [], 1 if nrows else 0
    merged: list[np.ndarray] = []
    cursor = nk
    for j, func in enumerate(shard_q.agg_funcs):
        if func == "AVG":
            sums = parallel_group_reduce(arrays[cursor], gids, ngroups,
                                         "sum", threads, sql_null_empty=True)
            counts = parallel_group_reduce(arrays[cursor + 1], gids, ngroups,
                                           "sum", threads)
            cursor += 2
            with np.errstate(invalid="ignore", divide="ignore"):
                out = (np.asarray(sums, dtype=np.float64)
                       / np.asarray(counts, dtype=np.float64))
        else:
            values = arrays[cursor]
            cursor += 1
            if func in ("SUM", "COUNT"):
                out = parallel_group_reduce(
                    values, gids, ngroups, "sum", threads,
                    sql_null_empty=(func == "SUM"))
                if out is None:
                    raise ShardError(
                        f"no partial merge for {func} over dtype {values.dtype}"
                    )
            else:  # MIN / MAX
                out = parallel_group_reduce(values, gids, ngroups,
                                            func.lower(), threads)
                if out is None:
                    out = _merge_minmax_generic(values, gids, ngroups, func)
        fill = shard_q.agg_fills[j] if j < len(shard_q.agg_fills) else None
        if fill is not None:
            out = _apply_fill(out, fill)
        merged.append(out)
    final = [key_cols[i] if kind == "key" else merged[i]
             for kind, i in shard_q.items]
    return _order_and_limit(shard_q.names, final, shard_q, key_cols, threads)


def _order_and_limit(names, final, shard_q: ShardQuery, key_cols,
                     threads: int) -> Chunk:
    n = len(final[0]) if final else 0
    if shard_q.order and n:
        sort_arrays = [final[i] if kind == "item" else key_cols[i]
                       for kind, i, _ in shard_q.order]
        ascendings = [asc for _, _, asc in shard_q.order]
        k = n if shard_q.limit is None else min(shard_q.limit, n)
        pos = topk_positions(sort_arrays, ascendings, k, threads)
        final = [arr[pos] for arr in final]
    elif shard_q.limit is not None:
        final = [arr[: shard_q.limit] for arr in final]
    return Chunk(list(names), final)


def _merge_topk(results, shard_q: ShardQuery, threads: int) -> Chunk:
    columns, arrays = _concat_columns(results)
    indices = []
    for name, _asc in shard_q.order_cols:
        if name not in columns:
            raise ShardError(
                f"gathered Top-K partials lack ORDER BY column {name!r}"
            )
        indices.append(columns.index(name))
    k = min(shard_q.limit or 0, len(arrays[0]) if arrays else 0)
    pos = topk_positions([arrays[i] for i in indices],
                         [asc for _, asc in shard_q.order_cols], k, threads)
    return Chunk(columns, [arr[pos] for arr in arrays])


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class _ShardPreparedStatement(PreparedStatement):
    """A prepared statement that keeps the scatter path: execution routes
    through :meth:`ShardedDatabase.execute_chunk` whenever the config
    shards (the worker-side plan cache is the hot path there), and uses
    the normal compiled-plan fast path otherwise."""

    def execute_chunk(self, params=None, *, cancel_event=None,
                      deadline=None, trace=None, stats=None):
        cfg = self._config
        if cfg.shard_workers > 0 and trace is None:
            shard_q = self._db._shard_recipe(self.sql, cfg)
            if shard_q is not None:
                return self._db.execute_chunk(
                    self.sql, cfg, params, cancel_event=cancel_event,
                    deadline=deadline, stats=stats,
                )
        return super().execute_chunk(params, cancel_event=cancel_event,
                                     deadline=deadline, trace=trace,
                                     stats=stats)


class ShardedDatabase(Database):
    """A Database over a column store with an optional scatter/gather path.

    ``config.shard_workers`` (also settable per query/config override)
    selects the worker count; analysis decides per statement shape whether
    to scatter, and every non-shardable shape silently runs the ordinary
    serial path — identical behaviour, one code path more.
    """

    def __init__(self, store_root, config: EngineConfig | None = None, *,
                 workers: int | None = None,
                 start_method: str | None = None):
        cfg = config or EngineConfig()
        if workers is not None:
            cfg = replace(cfg, shard_workers=int(workers))
        super().__init__(cfg)
        self._store = open_store(store_root)
        self._stored: dict[str, StoredTable] = {}
        for name in self._store.tables():
            table = self._store.table(name)
            self.catalog.register(table)
            self._stored[name] = table
        self._start_method = start_method
        self._pools: dict[int, ShardPool] = {}
        self._pool_lock = threading.Lock()
        self._recipes: dict[tuple, ShardQuery | None] = {}
        self._recipe_lock = threading.Lock()
        self.shard_stats = {"scattered": 0, "fallbacks": 0,
                            "shard_errors": 0, "restarts": 0, "workers": 0}
        # Test/soak hook: per-task sleep inside the worker, making "kill a
        # worker mid-query" deterministic on fast queries.
        self._test_worker_delay = 0.0

    # -- pools -------------------------------------------------------------
    def pool(self, workers: int) -> ShardPool:
        with self._pool_lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = ShardPool(self._store.root, workers,
                                 start_method=self._start_method)
                self._pools[workers] = pool
            return pool

    def close_pools(self) -> None:
        with self._pool_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    # -- analysis ----------------------------------------------------------
    def _shard_recipe(self, sql: str, cfg: EngineConfig) -> ShardQuery | None:
        key = (sql, cfg.plan_fingerprint())
        with self._recipe_lock:
            if key in self._recipes:
                return self._recipes[key]
        try:
            entry = self._plan_entry(sql, cfg)
            query = entry.query if entry is not None else parse(sql)
            recipe = analyze_shard_query(query, self._stored)
        except ReproError:
            recipe = None  # let the serial path raise the real error
        with self._recipe_lock:
            if len(self._recipes) >= 512:
                self._recipes.clear()
            self._recipes[key] = recipe
        return recipe

    # -- execution ---------------------------------------------------------
    def prepare(self, sql: str, config: EngineConfig | None = None):
        return _ShardPreparedStatement(self, sql, config or self.config)

    def execute_chunk(self, sql: str, config: EngineConfig | None = None,
                      params=None, *, cancel_event=None,
                      deadline: float | None = None, stats=None) -> Chunk:
        cfg = config or self.config
        if cfg.shard_workers > 0:
            recipe = self._shard_recipe(sql, cfg)
            if recipe is not None:
                return self._execute_sharded(recipe, sql, cfg, params,
                                             cancel_event, deadline, stats)
            self.shard_stats["fallbacks"] += 1
        return super().execute_chunk(sql, config, params,
                                     cancel_event=cancel_event,
                                     deadline=deadline, stats=stats)

    def _partition(self, recipe: ShardQuery, workers: int) -> list[tuple[int, int]]:
        nchunks = self._stored[recipe.table].nchunks
        n = max(1, min(workers, nchunks))
        step = (nchunks + n - 1) // n
        return [(lo, min(lo + step, nchunks))
                for lo in range(0, nchunks, step)]

    def _execute_sharded(self, recipe: ShardQuery, sql: str,
                         cfg: EngineConfig, params, cancel_event,
                         deadline, stats) -> Chunk:
        ranges = self._partition(recipe, cfg.shard_workers)
        if cfg.verify_plans:
            from ..analysis import verify_shard_query

            verify_shard_query(recipe, self._stored[recipe.table].nchunks,
                               ranges)
        pool = self.pool(cfg.shard_workers)
        worker_cfg = replace(cfg, shard_workers=0)
        tasks = [{
            "kind": recipe.kind, "sql": sql, "params": params,
            "table": recipe.table, "chunks": tuple(range(lo, hi)),
            "config": worker_cfg, "agg_items": recipe.agg_item_indices,
            "delay": self._test_worker_delay,
        } for lo, hi in ranges]
        try:
            futures = [pool.submit(task) for task in tasks]
            raw = self._gather(pool, futures, cancel_event, deadline)
        except ShardError:
            self.shard_stats["shard_errors"] += 1
            self.shard_stats["restarts"] = sum(
                p.restarts for p in self._pools.values())
            raise
        results = []
        for item in raw:
            if item[0] == "err":
                raise _rebuild_worker_error(item[1], item[2])
            results.append((item[1], item[2]))
        if recipe.kind == "agg":
            chunk = _merge_agg(results, recipe, cfg.threads)
        else:
            chunk = _merge_topk(results, recipe, cfg.threads)
        self.shard_stats["scattered"] += 1
        self.shard_stats["workers"] = cfg.shard_workers
        if stats is not None:
            stats.event(
                f"shard: scattered {recipe.kind} over {len(tasks)} worker "
                f"partition(s) of {recipe.table}"
            )
        return chunk

    def _gather(self, pool: ShardPool, futures, cancel_event, deadline):
        gathered = []
        for future in futures:
            while True:
                try:
                    gathered.append(future.result(timeout=0.05))
                    break
                except _FuturesTimeout:
                    if cancel_event is not None and cancel_event.is_set():
                        for f in futures:
                            f.cancel()
                        raise QueryCancelledError("query cancelled") from None
                    if deadline is not None and time.monotonic() > deadline:
                        for f in futures:
                            f.cancel()
                        raise QueryTimeoutError(
                            "query exceeded its timeout") from None
                except BrokenProcessPool:
                    pool.mark_broken()
                    raise ShardError(
                        "a shard worker died mid-query; the pool was "
                        "rebuilt — resubmit the query"
                    ) from None
        return gathered


def _rebuild_worker_error(class_name: str, message: str) -> ReproError:
    """Rebuild a typed exception from a worker's ``("err", name, msg)``.

    Workers never pickle exception objects (custom constructors make that
    fragile); the name + message round-trip always works and keeps the
    typed hierarchy for everything a client dispatches on.
    """
    import repro.errors as errors_module

    cls = getattr(errors_module, class_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            return SQLExecutionError(f"{class_name}: {message}")
    return exception_for("execution", f"worker {class_name}: {message}")
