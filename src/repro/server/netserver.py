"""Asyncio TCP server fronting the :class:`~repro.server.QueryScheduler`.

One server owns one scheduler over one database.  Each TCP connection gets
a :class:`~repro.server.Session`; frames are length-prefixed JSON (see
:mod:`repro.server.wire`).  The event loop only parses frames and streams
results — queries run on the scheduler's dispatcher threads, bridged back
with ``loop.call_soon_threadsafe`` through
:meth:`~repro.server.QueryTicket.add_done_callback`, so a slow query never
blocks frame processing and ``cancel`` frames for it keep flowing.

Error discipline: every failure a client can cause (malformed frame,
unknown handle, oversized parameter list, bad SQL, admission rejection,
timeout) becomes one typed ``error`` frame; only unrecoverable stream
corruption (bad length prefix, undecodable payload) also closes the
connection, because framing can no longer be trusted.  Ticket hygiene is
absolute: however a query ends — including the client vanishing mid-stream
— its ticket leaves the in-flight table and its session accounting runs.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field

from ..backends.rows import to_python_cell
from ..errors import ReproError, SQLBindError, WireProtocolError
from ..sqlengine.runtime_stats import RuntimeStats
from .scheduler import QueryScheduler
from .session import Session, percentile
from .wire import MAX_FRAME, encode_frame, error_code_for, read_frame_async

__all__ = ["NetServer"]


@dataclass
class _OpRollup:
    """Per-operator-label aggregate across every served query."""

    invocations: int = 0
    rows: int = 0
    ms: float = 0.0


@dataclass(eq=False)
class _Conn:
    """Per-connection state, touched only from the event loop."""

    session: Session
    writer: asyncio.StreamWriter
    handles: dict = field(default_factory=dict)
    next_handle: int = 1
    inflight: dict = field(default_factory=dict)  # request id -> QueryTicket
    wlock: asyncio.Lock = field(default_factory=asyncio.Lock)
    alive: bool = True


class NetServer:
    """Serve a database over TCP; see the module docstring for protocol.

    ``run_in_thread`` starts the event loop on a daemon thread and returns
    once the socket is listening (``self.port`` holds the bound port, so
    ``port=0`` picks a free one) — the shape tests and the load generator
    use.  ``close`` stops the loop, the scheduler, and every connection.
    """

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrent: int = 4,
        queue_limit: int = 64,
        default_timeout: float | None = 30.0,
        max_frame: int = MAX_FRAME,
        max_params: int = 1024,
        batch_rows: int = 1024,
        collect_op_stats: bool = True,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.max_params = max_params
        self.batch_rows = batch_rows
        self.collect_op_stats = collect_op_stats
        self.scheduler = QueryScheduler(
            db,
            max_concurrent=max_concurrent,
            queue_limit=queue_limit,
            default_timeout=default_timeout,
        )
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[_Conn] = set()
        self._conn_seq = 0
        self._inflight = 0
        self._queries_total = 0
        self._closed_sessions: list[dict] = []
        self._closed_latencies: list[float] = []
        self._op_rollup: dict[str, _OpRollup] = {}
        self._op_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "NetServer":
        """Bind and start accepting (call from a running event loop)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            conn.alive = False
            for ticket in list(conn.inflight.values()):
                ticket.cancel()
            conn.writer.close()
        # Let connection handlers observe the closed writers and unwind.
        await asyncio.sleep(0)
        self.scheduler.close()

    async def serve_forever(self) -> None:
        await self.start()
        self._ready.set()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def run_in_thread(self) -> "NetServer":
        """Start the server on a daemon thread; returns once listening."""

        def main() -> None:
            try:
                asyncio.run(self.serve_forever())
            except BaseException as exc:  # surfaced to the starting thread
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(target=main, name="repro-netserver",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(30.0):
            raise WireProtocolError("server failed to start listening",
                                    code="internal")
        if self._startup_error is not None:
            raise WireProtocolError(
                f"server startup failed: {self._startup_error}", code="internal"
            )
        return self

    def close(self) -> None:
        """Thread-safe shutdown for servers started via run_in_thread."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already torn down between the check and the call
        if self._thread is not None:
            self._thread.join(30.0)
            self._thread = None
        self.scheduler.close()

    def __enter__(self) -> "NetServer":
        if self._thread is None and self._server is None:
            self.run_in_thread()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        conn = _Conn(session=Session(self.scheduler,
                                     name=f"net-{self._conn_seq}"),
                     writer=writer)
        self._conns.add(conn)
        tasks: set[asyncio.Task] = set()
        try:
            while conn.alive:
                try:
                    msg = await read_frame_async(reader, self.max_frame)
                except WireProtocolError as exc:
                    # Framing is unrecoverable: report (best effort), close.
                    await self._send(conn, {"type": "error", "id": None,
                                            "code": exc.code,
                                            "error": str(exc)})
                    break
                if msg is None:
                    break  # clean EOF
                task = asyncio.create_task(self._dispatch(conn, msg))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            conn.alive = False
            for ticket in list(conn.inflight.values()):
                ticket.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already reset; nothing left to flush
            self._conns.discard(conn)
            self._closed_sessions.append(conn.session.stats())
            self._closed_latencies.extend(conn.session.snapshot_latencies())
            del self._closed_latencies[:-Session._MAX_LATENCIES]

    async def _send(self, conn: _Conn, msg: dict) -> bool:
        """Write one frame; on transport failure mark the connection dead
        (the caller stops streaming) instead of raising."""
        if not conn.alive:
            return False
        try:
            async with conn.wlock:
                conn.writer.write(encode_frame(msg))
                await conn.writer.drain()
            return True
        except (ConnectionError, OSError, RuntimeError):
            conn.alive = False
            return False

    async def _dispatch(self, conn: _Conn, msg: dict) -> None:
        rid = msg.get("id")
        if not isinstance(rid, int):
            await self._send(conn, {
                "type": "error", "id": None, "code": "protocol",
                "error": "request is missing an integer 'id'",
            })
            return
        cmd = msg.get("cmd")
        try:
            if cmd in ("query", "execute"):
                await self._cmd_query(conn, rid, msg)
            elif cmd == "prepare":
                await self._cmd_prepare(conn, rid, msg)
            elif cmd == "close_stmt":
                conn.handles.pop(msg.get("handle"), None)
                await self._send(conn, {"type": "closed", "id": rid})
            elif cmd == "cancel":
                await self._cmd_cancel(conn, rid, msg)
            elif cmd == "metrics":
                await self._send(conn, {"type": "metrics", "id": rid,
                                        "data": self._metrics()})
            elif cmd == "ping":
                await self._send(conn, {"type": "pong", "id": rid})
            else:
                raise WireProtocolError(f"unknown command {cmd!r}")
        except ReproError as exc:
            await self._send(conn, {"type": "error", "id": rid,
                                    "code": error_code_for(exc),
                                    "error": str(exc)})
        except Exception as exc:  # never let a handler kill the loop
            await self._send(conn, {"type": "error", "id": rid,
                                    "code": "internal", "error": str(exc)})

    # -- commands ----------------------------------------------------------
    def _resolve_statement(self, conn: _Conn, msg: dict):
        if msg.get("cmd") == "execute":
            handle = msg.get("handle")
            stmt = conn.handles.get(handle)
            if stmt is None:
                raise WireProtocolError(
                    f"unknown statement handle {handle!r}", code="handle"
                )
            return stmt
        sql = msg.get("sql")
        if not isinstance(sql, str):
            raise WireProtocolError("'sql' must be a string")
        return sql

    def _check_params(self, params):
        if params is not None and not isinstance(params, (list, dict)):
            raise SQLBindError(
                f"parameters must be a list or mapping, got {type(params).__name__}"
            )
        if params is not None and len(params) > self.max_params:
            raise SQLBindError(
                f"{len(params)} parameters exceed the per-query limit of "
                f"{self.max_params}"
            )
        return params

    async def _cmd_prepare(self, conn: _Conn, rid: int, msg: dict) -> None:
        sql = msg.get("sql")
        if not isinstance(sql, str):
            raise WireProtocolError("'sql' must be a string")
        stmt = conn.session.prepare(sql)
        handle = conn.next_handle
        conn.next_handle += 1
        conn.handles[handle] = stmt
        await self._send(conn, {"type": "prepared", "id": rid,
                                "handle": handle})

    async def _cmd_cancel(self, conn: _Conn, rid: int, msg: dict) -> None:
        target = msg.get("target")
        ticket = conn.inflight.get(target)
        cancelled = ticket.cancel() if ticket is not None else False
        await self._send(conn, {"type": "cancelled", "id": rid,
                                "target": target, "cancelled": cancelled})

    async def _cmd_query(self, conn: _Conn, rid: int, msg: dict) -> None:
        statement = self._resolve_statement(conn, msg)
        params = self._check_params(msg.get("params"))
        timeout = msg.get("timeout")
        stats = RuntimeStats() if self.collect_op_stats else None
        loop = asyncio.get_running_loop()
        done = asyncio.Event()
        # AdmissionError propagates to _dispatch -> one typed error frame.
        ticket = conn.session.submit(statement, params, timeout=timeout,
                                     stats=stats)
        conn.inflight[rid] = ticket
        self._inflight += 1
        self._queries_total += 1

        def wake() -> None:
            try:
                loop.call_soon_threadsafe(done.set)
            except RuntimeError:
                pass  # loop shut down before the query finished

        ticket.add_done_callback(wake)
        try:
            await done.wait()
            chunk = ticket.result_chunk(0)
        finally:
            conn.inflight.pop(rid, None)
            self._inflight -= 1
            if stats is not None:
                self._fold_op_stats(stats)
        await self._stream_chunk(conn, rid, ticket, chunk)

    async def _stream_chunk(self, conn: _Conn, rid: int, ticket, chunk) -> None:
        columns = list(chunk.columns)
        cells = [[to_python_cell(v) for v in arr] for arr in chunk.arrays]
        total = chunk.nrows
        for start in range(0, total, self.batch_rows):
            stop = min(start + self.batch_rows, total)
            batch = [[col[i] for col in cells] for i in range(start, stop)]
            if not await self._send(conn, {"type": "rows", "id": rid,
                                           "columns": columns, "rows": batch}):
                return  # client went away mid-stream; ticket already clean
        await self._send(conn, {"type": "done", "id": rid, "columns": columns,
                                "rows": total, "status": ticket.status,
                                "ms": ticket.total_ms})

    # -- metrics -----------------------------------------------------------
    def _fold_op_stats(self, stats: RuntimeStats) -> None:
        with self._op_lock:
            for op in stats.ops.values():
                roll = self._op_rollup.setdefault(op.label, _OpRollup())
                roll.invocations += op.invocations
                roll.rows += op.actual_rows
                roll.ms += op.elapsed_ms

    def _session_rollup(self) -> dict:
        totals = {"sessions": len(self._conns) + len(self._closed_sessions),
                  "queries": 0, "errors": 0, "timeouts": 0, "cancelled": 0,
                  "rows": 0, "replans": 0}
        latencies = list(self._closed_latencies)
        live = [c.session for c in self._conns]
        for snap in self._closed_sessions + [s.stats() for s in live]:
            for key in ("queries", "errors", "timeouts", "cancelled", "rows",
                        "replans"):
                totals[key] += snap[key]
        for session in live:
            latencies.extend(session.snapshot_latencies())
        p50 = percentile(latencies, 50)
        p99 = percentile(latencies, 99)
        totals["p50_ms"] = None if p50 != p50 else p50
        totals["p99_ms"] = None if p99 != p99 else p99
        return totals

    def _metrics(self) -> dict:
        with self._op_lock:
            operators = sorted(
                ({"label": label, "invocations": r.invocations,
                  "rows": r.rows, "ms": round(r.ms, 3)}
                 for label, r in self._op_rollup.items()),
                key=lambda e: e["ms"], reverse=True,
            )[:32]
        shard = getattr(self.db, "shard_stats", None)
        return {
            "server": {
                "connections": len(self._conns),
                "inflight": self._inflight,
                "queries": self._queries_total,
            },
            "scheduler": self.scheduler.stats(),
            "cache": self.db.cache_stats(),
            "sessions": self._session_rollup(),
            "operators": operators,
            "shard": dict(shard) if shard is not None else None,
        }
