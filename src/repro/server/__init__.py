"""Serving layer: sessions, an admission-controlled scheduler, a TCP wire
protocol, and multi-process sharded execution.

The :mod:`repro.sqlengine` engine plans and executes one query fast; this
package is what sits between that engine and *many* concurrent callers:

* :class:`QueryScheduler` — bounded admission queue, capped concurrency,
  per-query timeouts, cooperative cancellation, serving counters;
* :class:`Session` — a client connection handle with per-session stats
  (counts, rows, p50/p99 latency) and prepared-statement access;
* :class:`NetServer` / :class:`NetClient` — the network serving tier: an
  asyncio TCP server speaking length-prefixed JSON frames (sessions,
  prepared handles, streamed results, in-flight cancellation, a
  ``metrics`` endpoint) and its blocking client;
* :class:`ShardedDatabase` — scatter/gather execution of shardable
  queries across N ``multiprocessing`` engine workers over a column
  store, gated by ``EngineConfig.shard_workers``;
* :func:`run_load` / :func:`run_net_load` — the load generators behind
  ``python -m repro.bench serve``: N clients replaying a parameterized
  TPC-H mix in-process or over real sockets, reporting QPS and tail
  latency.

Prepared statements themselves live on the engine
(:meth:`repro.sqlengine.Database.prepare`): the serving layer consumes
them, the engine compiles them.
"""

from .loadgen import (
    LoadReport,
    QueryTemplate,
    make_sharded_tpch_db,
    make_tpch_db,
    run_load,
    run_net_load,
    tpch_mix,
)
from .netserver import NetServer
from .scheduler import QueryScheduler, QueryTicket
from .session import Session, percentile
from .shard import ShardedDatabase, ShardPool, ShardQuery, analyze_shard_query
from .wire import MAX_FRAME, NetClient, NetResult

__all__ = [
    "QueryScheduler",
    "QueryTicket",
    "Session",
    "percentile",
    "LoadReport",
    "QueryTemplate",
    "tpch_mix",
    "make_tpch_db",
    "make_sharded_tpch_db",
    "run_load",
    "run_net_load",
    "NetServer",
    "NetClient",
    "NetResult",
    "MAX_FRAME",
    "ShardedDatabase",
    "ShardPool",
    "ShardQuery",
    "analyze_shard_query",
]
