"""Serving layer: sessions and an admission-controlled query scheduler.

The :mod:`repro.sqlengine` engine plans and executes one query fast; this
package is what sits between that engine and *many* concurrent callers:

* :class:`QueryScheduler` — bounded admission queue, capped concurrency,
  per-query timeouts, cooperative cancellation, serving counters;
* :class:`Session` — a client connection handle with per-session stats
  (counts, rows, p50/p99 latency) and prepared-statement access;
* :func:`run_load` — the load generator behind ``python -m repro.bench
  serve``: N clients replaying a parameterized TPC-H mix, reporting QPS
  and tail latency.

Prepared statements themselves live on the engine
(:meth:`repro.sqlengine.Database.prepare`): the serving layer consumes
them, the engine compiles them.
"""

from .loadgen import LoadReport, QueryTemplate, make_tpch_db, run_load, tpch_mix
from .scheduler import QueryScheduler, QueryTicket
from .session import Session, percentile

__all__ = [
    "QueryScheduler",
    "QueryTicket",
    "Session",
    "percentile",
    "LoadReport",
    "QueryTemplate",
    "tpch_mix",
    "make_tpch_db",
    "run_load",
]
