"""Load generator: N concurrent clients replaying a TPC-H/hybrid query mix.

Exercises the whole serving stack — prepared statements, the plan cache,
the admission-controlled scheduler, per-session stats — and reports the
numbers an operator cares about: sustained QPS and p50/p99 latency.

Used by ``python -m repro.bench serve`` and by the serving throughput
benchmark; importable directly for custom mixes::

    from repro.server import run_load
    report = run_load(db, clients=8, duration=2.0)
    print(report.summary())
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import AdmissionError, ReproError, SQLBindError
from ..sqlengine.database import Database
from .scheduler import QueryScheduler
from .session import Session, percentile

__all__ = [
    "QueryTemplate",
    "LoadReport",
    "tpch_mix",
    "run_load",
    "run_net_load",
    "make_tpch_db",
    "make_sharded_tpch_db",
]


@dataclass
class QueryTemplate:
    """One parameterized statement of the mix plus its value generator."""

    name: str
    sql: str
    make_params: object  # Callable[[np.random.Generator], list | dict]
    weight: float = 1.0


def make_tpch_db(scale_factor: float = 0.01, seed: int = 42, config=None) -> Database:
    """A Database loaded with the TPC-H dataset at *scale_factor*."""
    from ..sqlengine import connect
    from ..workloads.tpch import generate, register_tpch

    db = connect(config)
    register_tpch(db, generate(scale_factor=scale_factor, seed=seed))
    return db


def make_sharded_tpch_db(scale_factor: float = 0.01, seed: int = 42, *,
                         workers: int = 2, root=None, config=None):
    """A :class:`~repro.server.shard.ShardedDatabase` over a freshly
    written TPC-H column store (a temp directory unless *root* is given),
    with ``shard_workers`` preset to *workers*."""
    import tempfile

    from ..bench.storage import store_tpch
    from ..storage import ColumnStore
    from ..workloads.tpch import generate
    from .shard import ShardedDatabase

    if root is None:
        root = tempfile.mkdtemp(prefix="repro-shard-store-")
    store = ColumnStore(root)
    store_tpch(store, generate(scale_factor=scale_factor, seed=seed),
               chunk_rows=2048)
    return ShardedDatabase(root, config=config, workers=workers)


def tpch_mix() -> list[QueryTemplate]:
    """The default serving mix: point lookups, selective scans, a join, an
    aggregate, and a Top-K — the hybrid OLTP-ish/OLAP shape a dashboard
    fleet generates.  All parameter values stay inside the domains the
    TPC-H generator emits at any scale factor."""
    return [
        QueryTemplate(
            "order_lookup",
            "SELECT o_orderkey, o_totalprice, o_orderstatus "
            "FROM orders WHERE o_orderkey = ?",
            lambda rng: [int(rng.integers(1, 1000))],
            weight=3.0,
        ),
        QueryTemplate(
            "customer_orders",
            "SELECT o_orderkey, o_totalprice FROM orders "
            "WHERE o_custkey = ? AND o_totalprice > ? ORDER BY o_totalprice DESC",
            lambda rng: [int(rng.integers(1, 200)), float(rng.uniform(0, 5e4))],
            weight=2.0,
        ),
        QueryTemplate(
            "lineitem_agg",
            "SELECT l_returnflag, COUNT(*) AS cnt, SUM(l_extendedprice) AS rev "
            "FROM lineitem WHERE l_quantity < :maxqty "
            "GROUP BY l_returnflag ORDER BY l_returnflag",
            lambda rng: {"maxqty": int(rng.integers(5, 50))},
            weight=1.0,
        ),
        QueryTemplate(
            "customer_join",
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > ? "
            "ORDER BY o.o_totalprice DESC LIMIT 10",
            lambda rng: [float(rng.uniform(1e5, 4e5))],
            weight=1.0,
        ),
    ]


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    clients: int
    duration_s: float
    queries: int
    errors: int
    rejected: int
    timeouts: int
    qps: float
    p50_ms: float
    p99_ms: float
    per_template: dict[str, int] = field(default_factory=dict)
    session_stats: list[dict] = field(default_factory=list)
    scheduler_stats: dict = field(default_factory=dict)
    # Populated by run_net_load only: the server's /metrics snapshot taken
    # just before shutdown (cache, operator rollup, shard counters).
    net_metrics: dict | None = None

    def summary(self) -> str:
        lines = [
            f"{self.clients} client(s), {self.duration_s:.2f}s wall clock",
            f"queries   {self.queries:8d}   errors {self.errors}   "
            f"rejected {self.rejected}   timeouts {self.timeouts}",
            f"QPS       {self.qps:10.1f}",
            f"latency   p50 {self.p50_ms:7.2f} ms   p99 {self.p99_ms:7.2f} ms",
        ]
        for name, count in sorted(self.per_template.items()):
            lines.append(f"  mix {name:<16} {count:6d}")
        return "\n".join(lines)


def run_load(
    db: Database,
    *,
    clients: int = 8,
    duration: float = 2.0,
    mix: list[QueryTemplate] | None = None,
    max_concurrent: int | None = None,
    queue_limit: int = 256,
    timeout: float | None = 30.0,
    prepared_fraction: float = 0.75,
    seed: int = 0,
) -> LoadReport:
    """Drive *clients* concurrent sessions against *db* for *duration*
    seconds, mixing prepared executions with ad-hoc SQL (literal values
    interpolated, the un-prepared worst case) at ``prepared_fraction``.

    Every client owns a Session; all sessions share one scheduler, so the
    report also reflects admission behaviour under the offered load.
    """
    mix = mix if mix is not None else tpch_mix()
    weights = np.array([t.weight for t in mix], dtype=np.float64)
    weights /= weights.sum()
    scheduler = QueryScheduler(
        db,
        max_concurrent=max_concurrent or clients,
        queue_limit=queue_limit,
        default_timeout=timeout,
    )
    sessions = [Session(scheduler, name=f"client-{i}") for i in range(clients)]
    prepared = {t.name: db.prepare(t.sql) for t in mix}
    counts_lock = threading.Lock()
    per_template: dict[str, int] = {t.name: 0 for t in mix}
    totals = {"queries": 0, "errors": 0, "rejected": 0}
    latencies: list[float] = []
    stop_at = time.monotonic() + duration

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed * 1000 + idx)
        session = sessions[idx]
        local_counts = {t.name: 0 for t in mix}
        local_lat: list[float] = []
        queries = errors = rejected = 0
        while time.monotonic() < stop_at:
            template = mix[int(rng.choice(len(mix), p=weights))]
            params = template.make_params(rng)
            start = time.perf_counter()
            try:
                if rng.random() < prepared_fraction:
                    session.execute(prepared[template.name], params)
                else:
                    session.execute(_inline(template.sql, params))
                queries += 1
                local_counts[template.name] += 1
                local_lat.append((time.perf_counter() - start) * 1000.0)
            except AdmissionError:
                rejected += 1
                time.sleep(0.001)  # back off, then retry the loop
            except ReproError:
                errors += 1
        with counts_lock:
            totals["queries"] += queries
            totals["errors"] += errors
            totals["rejected"] += rejected
            latencies.extend(local_lat)
            for name, c in local_counts.items():
                per_template[name] += c

    threads = [threading.Thread(target=client, args=(i,), daemon=True) for i in range(clients)]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    scheduler.close()
    sched_stats = scheduler.stats()
    return LoadReport(
        clients=clients,
        duration_s=wall,
        queries=totals["queries"],
        errors=totals["errors"],
        rejected=totals["rejected"],
        timeouts=sched_stats["timeouts"],
        qps=totals["queries"] / wall if wall > 0 else float("nan"),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        per_template=per_template,
        session_stats=[s.stats() for s in sessions],
        scheduler_stats=sched_stats,
    )


def run_net_load(
    db: Database,
    *,
    clients: int = 8,
    duration: float = 2.0,
    mix: list[QueryTemplate] | None = None,
    max_concurrent: int | None = None,
    queue_limit: int = 256,
    timeout: float | None = 30.0,
    prepared_fraction: float = 0.75,
    seed: int = 0,
    host: str = "127.0.0.1",
    batch_rows: int = 1024,
) -> LoadReport:
    """:func:`run_load` over real sockets: starts a
    :class:`~repro.server.netserver.NetServer` around *db*, then drives
    *clients* concurrent TCP connections through the wire protocol —
    length-prefixed frames, prepared-statement handles, streamed results —
    so the measured QPS/latency includes framing, JSON, and loopback TCP.

    Template parameter generators must emit plain Python values (the wire
    is JSON); the built-in :func:`tpch_mix` does.
    """
    from .netserver import NetServer
    from .wire import NetClient

    mix = mix if mix is not None else tpch_mix()
    weights = np.array([t.weight for t in mix], dtype=np.float64)
    weights /= weights.sum()
    server = NetServer(
        db, host=host,
        max_concurrent=max_concurrent or clients,
        queue_limit=queue_limit,
        default_timeout=timeout,
        batch_rows=batch_rows,
    )
    server.run_in_thread()
    counts_lock = threading.Lock()
    per_template: dict[str, int] = {t.name: 0 for t in mix}
    totals = {"queries": 0, "errors": 0, "rejected": 0}
    latencies: list[float] = []
    # Socket reads must outlive the slowest legitimate query: the server
    # bounds those with the scheduler timeout, so pad on top of it.
    sock_timeout = (timeout or 30.0) + 30.0
    stop_at = time.monotonic() + duration

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed * 1000 + idx)
        local_counts = {t.name: 0 for t in mix}
        local_lat: list[float] = []
        queries = errors = rejected = 0
        with NetClient(host, server.port, timeout=sock_timeout) as nc:
            handles = {t.name: nc.prepare(t.sql) for t in mix}
            while time.monotonic() < stop_at:
                template = mix[int(rng.choice(len(mix), p=weights))]
                params = template.make_params(rng)
                start = time.perf_counter()
                try:
                    if rng.random() < prepared_fraction:
                        nc.execute_prepared(handles[template.name], params)
                    else:
                        nc.execute(_inline(template.sql, params))
                    queries += 1
                    local_counts[template.name] += 1
                    local_lat.append((time.perf_counter() - start) * 1000.0)
                except AdmissionError:
                    rejected += 1
                    time.sleep(0.001)  # back off, then retry the loop
                except ReproError:
                    errors += 1
        with counts_lock:
            totals["queries"] += queries
            totals["errors"] += errors
            totals["rejected"] += rejected
            latencies.extend(local_lat)
            for name, c in local_counts.items():
                per_template[name] += c

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    with NetClient(host, server.port, timeout=sock_timeout) as probe:
        metrics = probe.metrics()
    server.close()
    sched_stats = metrics.get("scheduler", {})
    return LoadReport(
        clients=clients,
        duration_s=wall,
        queries=totals["queries"],
        errors=totals["errors"],
        rejected=totals["rejected"],
        timeouts=sched_stats.get("timeouts", 0),
        qps=totals["queries"] / wall if wall > 0 else float("nan"),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        per_template=per_template,
        session_stats=[metrics.get("sessions", {})],
        scheduler_stats=sched_stats,
        net_metrics=metrics,
    )


def _inline(sql: str, params) -> str:
    """Interpolate bound values as SQL literals (the ad-hoc client shape:
    every execution is a distinct statement text, so it re-pays parse+plan).
    Only used with trusted generator values — real clients should bind."""

    def lit(v) -> str:
        if v is None:
            return "NULL"
        if isinstance(v, str):
            return "'" + v.replace("'", "''") + "'"
        if isinstance(v, (bool, np.bool_)):
            return "TRUE" if v else "FALSE"
        if isinstance(v, (int, np.integer)):
            return repr(int(v))
        if isinstance(v, (float, np.floating)):
            return repr(float(v))
        raise SQLBindError(f"cannot inline literal of type {type(v).__name__}")

    if isinstance(params, dict):
        out = sql
        # Longest name first: ':max' must never clobber ':maxqty'.
        for name in sorted(params, key=len, reverse=True):
            out = out.replace(f":{name}", lit(params[name]))
        return out
    parts = sql.split("?")
    assert len(parts) == len(params) + 1, "positional arity mismatch"
    pieces = [parts[0]]
    for piece, v in zip(parts[1:], params):
        pieces.append(lit(v))
        pieces.append(piece)
    return "".join(pieces)
