"""Wire protocol for the network serving tier: framing, error codes, and
the synchronous client.

Frame format — the same in both directions:

* 4-byte big-endian unsigned length ``n`` (1 ≤ n ≤ ``MAX_FRAME``),
* ``n`` bytes of UTF-8 JSON encoding one object.

Requests carry ``{"cmd": ..., "id": <int>, ...}``; the ``id`` multiplexes
concurrent queries over one connection and every response frame echoes it.
Results stream as zero or more ``rows`` frames followed by one ``done``
frame; failures of any kind are a single ``error`` frame whose ``code``
maps 1:1 onto the :mod:`repro.errors` hierarchy (see :data:`ERROR_CODES`),
so a client raises exactly the exception an in-process caller would have
seen.

:class:`NetClient` is the blocking client used by tests, the socket load
generator, and the soak harness; the asyncio server half lives in
:mod:`repro.server.netserver`.
"""

from __future__ import annotations

import itertools
import json
import socket
import struct
import threading

from ..errors import (
    AdmissionError,
    PlanInvariantError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ShardError,
    SQLBindError,
    SQLError,
    SQLExecutionError,
    SQLSyntaxError,
    UnsupportedFeatureError,
    WireProtocolError,
)

__all__ = [
    "MAX_FRAME",
    "ERROR_CODES",
    "NetClient",
    "NetResult",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "error_code_for",
    "exception_for",
]

# Upper bound on one frame's payload; a length prefix beyond it is treated
# as a protocol violation (oversized parameter payloads, corrupt headers)
# rather than an allocation request.
MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Wire error code ↔ typed exception.  Order matters for classification:
# the first isinstance match wins, so subclasses precede their bases.
ERROR_CODES: list[tuple[str, type]] = [
    ("admission", AdmissionError),
    ("timeout", QueryTimeoutError),
    ("cancelled", QueryCancelledError),
    ("syntax", SQLSyntaxError),
    ("bind", SQLBindError),
    ("plan", PlanInvariantError),
    ("shard", ShardError),
    ("unsupported", UnsupportedFeatureError),
    ("execution", SQLExecutionError),
    ("sql", SQLError),
]


def error_code_for(exc: BaseException) -> str:
    """The wire code for an exception (``internal`` for non-repro ones)."""
    if isinstance(exc, WireProtocolError):
        return exc.code
    for code, cls in ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal"


def exception_for(code: str, message: str) -> ReproError:
    """Rebuild the typed exception an error frame encodes."""
    for known, cls in ERROR_CODES:
        if code == known:
            try:
                return cls(message)
            except TypeError:
                # Classes with structured constructors (PlanInvariantError)
                # degrade to the generic SQL error, keeping the message.
                return SQLExecutionError(f"[{code}] {message}")
    return WireProtocolError(message, code=code or "internal")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _decode(payload: bytes) -> dict:
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(msg, dict):
        raise WireProtocolError(
            f"malformed frame: expected an object, got {type(msg).__name__}"
        )
    return msg


def encode_frame(msg: dict) -> bytes:
    """One message as length-prefixed bytes (shared by client and server)."""
    payload = json.dumps(msg, separators=(",", ":"), default=str).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise WireProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def write_frame(sock: socket.socket, msg: dict) -> None:
    sock.sendall(encode_frame(msg))


def _check_length(n: int, max_frame: int) -> None:
    if n == 0 or n > max_frame:
        raise WireProtocolError(
            f"frame length {n} outside (0, {max_frame}] — oversized or corrupt"
        )


def read_frame(rfile, max_frame: int = MAX_FRAME) -> dict | None:
    """Blocking read of one frame from a file-like socket reader.

    Returns ``None`` on clean EOF (peer closed between frames); raises
    :class:`~repro.errors.WireProtocolError` on truncation mid-frame,
    oversized lengths, or undecodable payloads.
    """
    header = rfile.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireProtocolError("connection closed inside a frame header")
    (n,) = _HEADER.unpack(header)
    _check_length(n, max_frame)
    payload = rfile.read(n)
    if payload is None or len(payload) < n:
        raise WireProtocolError("connection closed inside a frame payload")
    return _decode(payload)


async def read_frame_async(reader, max_frame: int = MAX_FRAME) -> dict | None:
    """Async counterpart of :func:`read_frame` for ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF; truncation mid-frame and protocol
    violations raise :class:`~repro.errors.WireProtocolError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError("connection closed inside a frame header") from None
    (n,) = _HEADER.unpack(header)
    _check_length(n, max_frame)
    try:
        payload = await reader.readexactly(n)
    except asyncio.IncompleteReadError:
        raise WireProtocolError("connection closed inside a frame payload") from None
    return _decode(payload)


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------

class NetResult:
    """One query's materialized result: column names + plain-Python rows."""

    def __init__(self, columns: list[str], rows: list[tuple], status: str = "done"):
        self.columns = columns
        self.rows = rows
        self.status = status

    @property
    def nrows(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"NetResult(cols={self.columns}, n={self.nrows})"


class NetClient:
    """Blocking wire-protocol client (one TCP connection, one session).

    Concurrent in-flight queries are supported through the request-id
    multiplexing — :meth:`submit` returns an id, :meth:`collect` drains its
    frames, and frames for *other* ids seen along the way are buffered, so
    a client can keep a slow query in flight while cancelling it from the
    same thread.  A socket-level ``timeout`` bounds every read: a silent
    server surfaces as :class:`~repro.errors.WireProtocolError`, never a
    hang (the property the soak harness leans on).
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self._pending: dict[int, list[dict]] = {}
        self._wlock = threading.Lock()
        self.closed = False

    # -- low-level ---------------------------------------------------------
    def _send(self, msg: dict) -> int:
        rid = next(self._ids)
        msg["id"] = rid
        with self._wlock:
            write_frame(self._sock, msg)
        return rid

    def _read(self) -> dict:
        try:
            frame = read_frame(self._rfile)
        except OSError as exc:  # socket timeout or reset
            raise WireProtocolError(f"socket read failed: {exc}") from None
        if frame is None:
            raise WireProtocolError("server closed the connection")
        return frame

    def _next_for(self, rid: int) -> dict:
        buffered = self._pending.get(rid)
        if buffered:
            return buffered.pop(0)
        while True:
            frame = self._read()
            fid = frame.get("id")
            if fid == rid:
                return frame
            self._pending.setdefault(fid, []).append(frame)

    # -- commands ----------------------------------------------------------
    def submit(self, sql: str, params=None, *, timeout: float | None = None) -> int:
        """Start a query without waiting; returns its request id."""
        return self._send(
            {"cmd": "query", "sql": sql, "params": params, "timeout": timeout}
        )

    def submit_prepared(self, handle: int, params=None, *,
                        timeout: float | None = None) -> int:
        return self._send(
            {"cmd": "execute", "handle": handle, "params": params,
             "timeout": timeout}
        )

    def collect(self, rid: int) -> NetResult:
        """Drain one query's frames; raises its typed error if it failed."""
        columns: list[str] = []
        rows: list[tuple] = []
        while True:
            frame = self._next_for(rid)
            kind = frame.get("type")
            if kind == "rows":
                columns = frame.get("columns", columns)
                rows.extend(tuple(r) for r in frame.get("rows", []))
            elif kind == "done":
                columns = frame.get("columns", columns)
                return NetResult(columns, rows, frame.get("status", "done"))
            elif kind == "error":
                raise exception_for(frame.get("code", "internal"),
                                    frame.get("error", "unknown error"))
            else:
                raise WireProtocolError(
                    f"unexpected frame type {kind!r} for request {rid}"
                )

    def execute(self, sql: str, params=None, *,
                timeout: float | None = None) -> NetResult:
        return self.collect(self.submit(sql, params, timeout=timeout))

    def prepare(self, sql: str) -> int:
        rid = self._send({"cmd": "prepare", "sql": sql})
        frame = self._next_for(rid)
        if frame.get("type") == "error":
            raise exception_for(frame.get("code", "internal"),
                                frame.get("error", "prepare failed"))
        return int(frame["handle"])

    def execute_prepared(self, handle: int, params=None, *,
                         timeout: float | None = None) -> NetResult:
        return self.collect(self.submit_prepared(handle, params, timeout=timeout))

    def close_statement(self, handle: int) -> None:
        rid = self._send({"cmd": "close_stmt", "handle": handle})
        self._next_for(rid)

    def cancel(self, target: int) -> bool:
        """Request cancellation of an in-flight request id on this
        connection; True if the server found it still running."""
        rid = self._send({"cmd": "cancel", "target": target})
        frame = self._next_for(rid)
        if frame.get("type") == "error":
            raise exception_for(frame.get("code", "internal"),
                                frame.get("error", "cancel failed"))
        return bool(frame.get("cancelled"))

    def metrics(self) -> dict:
        rid = self._send({"cmd": "metrics"})
        frame = self._next_for(rid)
        if frame.get("type") == "error":
            raise exception_for(frame.get("code", "internal"),
                                frame.get("error", "metrics failed"))
        return frame.get("data", {})

    def ping(self) -> bool:
        rid = self._send({"cmd": "ping"})
        return self._next_for(rid).get("type") == "pong"

    # -- raw access (protocol tests) ---------------------------------------
    def send_raw(self, data: bytes) -> None:
        """Write raw bytes — lets tests inject malformed frames."""
        with self._wlock:
            self._sock.sendall(data)

    def read_frame(self) -> dict:
        """Read whatever frame arrives next, regardless of id."""
        return self._read()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
