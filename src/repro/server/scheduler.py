"""Concurrent query scheduler: admission control over the shared engine.

Many client threads (or async tasks) submit queries against one
:class:`~repro.sqlengine.Database`.  The scheduler:

* **admits** work through a bounded queue — when ``queue_limit`` tickets are
  already waiting, :meth:`QueryScheduler.submit` raises
  :class:`~repro.errors.AdmissionError` instead of letting latency grow
  without bound (load shedding at the front door);
* **executes** at most ``max_concurrent`` queries at a time on its own
  dispatcher threads; each running query fans its operators out over the
  shared engine worker pools (:mod:`repro.sqlengine.parallel`), so engine
  parallelism and inter-query concurrency compose without oversubscribing
  a new pool per query;
* **bounds** each query with an optional per-query (or scheduler-default)
  timeout and supports cooperative cancellation — both are checked at
  operator boundaries by ``Executor.check_runtime``;
* **accounts** for everything: per-scheduler counters plus per-ticket
  queue/execution timings that sessions aggregate into p50/p99 latency.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from ..errors import AdmissionError, QueryCancelledError, QueryTimeoutError
from ..sqlengine.database import Database, PreparedStatement
from ..sqlengine.runtime_stats import RuntimeStats

__all__ = ["QueryScheduler", "QueryTicket"]

_SHUTDOWN = object()


@dataclass
class _SchedulerCounters:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    timeouts: int = 0
    rejected: int = 0


class QueryTicket:
    """A handle to one admitted query (a minimal Future).

    States: ``queued`` → ``running`` → one of ``done`` / ``failed`` /
    ``cancelled`` / ``timeout``.  :meth:`cancel` is immediate for queued
    tickets and cooperative (next operator boundary) for running ones.
    """

    def __init__(self, statement, params, config, timeout, session, stats=None):
        self.statement = statement
        self.params = params
        self.config = config
        self.timeout = timeout
        self.session = session
        # Caller-provided RuntimeStats sink (the network server attaches one
        # per query for its per-operator metrics rollup); None lets _run
        # decide based on adaptive_execution as before.
        self.stats = stats
        self.status = "queued"
        self.replans = 0
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._chunk = None
        self._error: BaseException | None = None
        self._cb_lock = threading.Lock()
        self._callbacks: list | None = []
        self._callback_error: BaseException | None = None

    # -- caller side -------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns True unless already finished."""
        if self._done.is_set():
            return False
        self._cancel.set()
        return True

    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(self, fn) -> None:
        """Run ``fn()`` when the ticket finishes (immediately if it already
        has).  Callbacks fire on the dispatcher thread — they must be cheap
        and non-blocking (the network server uses one to poke its event
        loop via ``call_soon_threadsafe``)."""
        with self._cb_lock:
            if self._callbacks is not None:
                self._callbacks.append(fn)
                return
        self._invoke_callback(fn)

    def _invoke_callback(self, fn) -> None:
        try:
            fn()
        except Exception as exc:  # a bad callback must not kill a dispatcher
            self._callback_error = exc

    def result_chunk(self, timeout: float | None = None):
        """Block for the raw result chunk; re-raises the query's error."""
        if not self._done.wait(timeout):
            raise TimeoutError("query still pending")
        if self._error is not None:
            raise self._error
        return self._chunk

    def result(self, timeout: float | None = None):
        """Block for the result as a DataFrame; re-raises the query's error."""
        return Database._chunk_to_frame(self.result_chunk(timeout))

    # -- timings -----------------------------------------------------------
    @property
    def queue_ms(self) -> float | None:
        if self.started_at is None:
            return None
        return (self.started_at - self.submitted_at) * 1000.0

    @property
    def total_ms(self) -> float | None:
        if self.finished_at is None:
            return None
        return (self.finished_at - self.submitted_at) * 1000.0

    # -- worker side -------------------------------------------------------
    def _finish(self, status: str, chunk=None, error=None) -> None:
        self.status = status
        self._chunk = chunk
        self._error = error
        self.finished_at = time.monotonic()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks or [], None
            self._done.set()
        for fn in callbacks:
            self._invoke_callback(fn)


class QueryScheduler:
    """Admission-controlled concurrent execution over one Database."""

    def __init__(
        self,
        db: Database,
        *,
        max_concurrent: int = 4,
        queue_limit: int = 64,
        default_timeout: float | None = None,
    ):
        if max_concurrent < 1:
            raise AdmissionError("max_concurrent must be >= 1")
        self.db = db
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._counters = _SchedulerCounters()
        self._lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-sched-{i}",
                daemon=True,
            )
            for i in range(max_concurrent)
        ]
        for w in self._workers:
            w.start()

    # -- client API --------------------------------------------------------
    def submit(
        self,
        statement,
        params=None,
        *,
        config=None,
        timeout: float | None = None,
        session=None,
        stats=None,
    ) -> QueryTicket:
        """Admit one query — a SQL string or a
        :class:`~repro.sqlengine.PreparedStatement` — returning its ticket.

        Raises :class:`~repro.errors.AdmissionError` when the scheduler is
        closed or the admission queue is full (callers should back off or
        shed the request; blocking here would just move the unbounded queue
        into the clients).
        """
        if self._closed:
            raise AdmissionError("scheduler is closed")
        if timeout is None:
            timeout = self.default_timeout
        ticket = QueryTicket(statement, params, config, timeout, session, stats)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            with self._lock:
                self._counters.rejected += 1
            message = f"admission queue full ({self.queue_limit} queries waiting)"
            raise AdmissionError(message) from None
        with self._lock:
            self._counters.submitted += 1
        return ticket

    def execute(
        self,
        statement,
        params=None,
        *,
        config=None,
        timeout: float | None = None,
        session=None,
    ):
        """Submit and block for the DataFrame result (convenience)."""
        ticket = self.submit(
            statement,
            params,
            config=config,
            timeout=timeout,
            session=session,
        )
        return ticket.result()

    def stats(self) -> dict:
        """Scheduler-level counters plus current queue depth."""
        with self._lock:
            c = self._counters
            return {
                "submitted": c.submitted,
                "completed": c.completed,
                "failed": c.failed,
                "cancelled": c.cancelled,
                "timeouts": c.timeouts,
                "rejected": c.rejected,
                "queued": self._queue.qsize(),
                "max_concurrent": self.max_concurrent,
                "queue_limit": self.queue_limit,
            }

    def close(self, wait: bool = True) -> None:
        """Stop admitting work; drain queued queries, then stop workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for w in self._workers:
                w.join()
            # A submit() racing close() may have landed its ticket behind
            # the shutdown sentinels; with every worker gone, fail such
            # stragglers so their result() raises instead of blocking.
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                if ticket is not _SHUTDOWN:
                    ticket._finish("failed", error=AdmissionError("scheduler is closed"))
                    self._account("failed", ticket)

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is _SHUTDOWN:
                return
            self._run(ticket)

    def _run(self, ticket: QueryTicket) -> None:
        if ticket._cancel.is_set():  # cancelled while queued: never starts
            error = QueryCancelledError("cancelled while queued")
            ticket._finish("cancelled", error=error)
            self._account("cancelled", ticket)
            return
        ticket.status = "running"
        ticket.started_at = time.monotonic()
        deadline = None
        if ticket.timeout is not None:
            deadline = ticket.started_at + ticket.timeout
        try:
            stmt = ticket.statement
            if isinstance(stmt, PreparedStatement) and ticket.config is None:
                effective = stmt._config
            else:
                effective = ticket.config or self.db.config
            # Attach runtime stats when the caller supplied a sink (metrics
            # rollups) or under adaptive execution, where the replan counter
            # is meaningful; the stats=None fast path keeps static queries
            # free of per-operator timing overhead.
            stats = ticket.stats
            if stats is None and effective.adaptive_execution:
                stats = RuntimeStats()
            if isinstance(stmt, PreparedStatement) and ticket.config is None:
                chunk = stmt.execute_chunk(
                    ticket.params,
                    cancel_event=ticket._cancel,
                    deadline=deadline,
                    stats=stats,
                )
            else:
                # A per-query config override must not reuse the prepared
                # statement's plans (plans are keyed by config knobs), so
                # route through the Database path, which caches by shape.
                sql = stmt.sql if isinstance(stmt, PreparedStatement) else stmt
                chunk = self.db.execute_chunk(
                    sql,
                    ticket.config,
                    ticket.params,
                    cancel_event=ticket._cancel,
                    deadline=deadline,
                    stats=stats,
                )
            if stats is not None:
                ticket.replans = stats.replans
            ticket._finish("done", chunk=chunk)
            self._account("completed", ticket)
        except QueryTimeoutError as exc:
            ticket._finish("timeout", error=exc)
            self._account("timeouts", ticket)
        except QueryCancelledError as exc:
            ticket._finish("cancelled", error=exc)
            self._account("cancelled", ticket)
        except BaseException as exc:  # surfaced through ticket.result()
            ticket._finish("failed", error=exc)
            self._account("failed", ticket)

    def _account(self, counter: str, ticket: QueryTicket) -> None:
        with self._lock:
            setattr(self._counters, counter, getattr(self._counters, counter) + 1)
        if ticket.session is not None:
            ticket.session._record(ticket)
