"""Static analysis for the engine's two intermediate representations.

Two checkers live here, both pure (no execution, no mutation):

- :mod:`.plan_verifier` — walks a compiled :class:`~repro.sqlengine.plan.
  PhysicalPlan` bottom-up, synthesizes every node's output schema (column
  names, dtype kinds, nullability) and checks per-operator structural
  invariants, raising :class:`~repro.errors.PlanInvariantError` on the
  first violation.  Gated by ``EngineConfig.verify_plans`` (on by
  default), it runs after every planner invocation and over every
  ``EXPLAIN``.
- :mod:`.ir_checker` — well-formedness checks for TondIR programs
  (dangling variable/relation refs, double assignment, union arity),
  raising :class:`~repro.errors.IRInvariantError`.  Run on entry to
  :func:`~repro.core.tondir.optimize.optimize` and again after every
  optimization round, so a pass that breaks an invariant is caught at the
  pass boundary rather than at SQL rendering time.

The invariant catalogue (rule ids, what each one means, how to add one)
is documented in docs/ARCHITECTURE.md under "Static analysis & plan
verification".
"""

from .ir_checker import check_program
from .plan_verifier import ColInfo, verify_plan
from .shard_rules import verify_shard_query

__all__ = ["ColInfo", "check_program", "verify_plan", "verify_shard_query"]
