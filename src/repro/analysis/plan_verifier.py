"""Bottom-up structural verification of compiled physical plans.

:func:`verify_plan` re-derives, from the operator tree alone, the schema
every node will produce at runtime — column names, dtype *kind classes*
(``numeric`` / ``string`` / ``date``, mirroring the planner's
``_KIND_CLASSES``), and nullability — and checks each operator's
preconditions against its children's synthesized schemas.  Any violation
is a planner (or hand-built-plan) bug, never a user error, and raises
:class:`~repro.errors.PlanInvariantError` carrying the rule id and the
``>``-separated path from the plan root to the offending node.

The verifier is deliberately *lenient about the unknown*: a column
reference that does not resolve in the synthesized schema may still
resolve at runtime through an enclosing scope (correlated subqueries in
residual predicates) or legitimately fail with a user-facing
``SQLBindError`` — neither is a plan bug, so unresolved user references
are skipped.  Only planner-generated constructs (``__mark_N`` /
``__scalar_N`` columns, join key pairs whose sides both resolve, SetOp
column lists, zone-map chunk selections) are held to strict rules, which
is what keeps the false-positive rate at zero across the TPC-H suite,
the plan-shape goldens, and the fuzz corpus.

The full invariant table lives in docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import PlanInvariantError
from ..sqlengine import plan as p
from ..sqlengine.expressions import expr_columns
from ..sqlengine.functions import FUNCTION_ALIASES
from ..sqlengine.planner import RelSchema, _chunk_may_match, has_subquery
from ..sqlengine.sqlast import (
    AggCall,
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    ExistsExpr,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    LikeExpr,
    Literal,
    Parameter,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    ValuesClause,
    WindowCall,
    WindowFrame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Iterable, Iterator, NoReturn

    from ..sqlengine.catalog import Catalog
    from ..sqlengine.executor import EngineConfig
    from ..sqlengine.table import Table

_MARK_RE = re.compile(r"^__(mark|scalar)_\d+$")

# numpy dtype kind -> verifier kind class (same partition the planner uses
# for join-key compatibility estimates).
_DTYPE_KINDS = {"i": "numeric", "u": "numeric", "f": "numeric", "b": "numeric",
                "M": "date", "O": "string", "U": "string", "S": "string"}

# Spill partitioning hashes numeric/date keys as one family and object
# (string) keys as another (see repro.storage.spill._key_class).
_SPILL_CLASSES = {"numeric": "num", "date": "num", "string": "obj"}

_FRAME_KIND_RANK = {"unbounded_preceding": 0, "preceding": 1, "current": 2,
                    "following": 3, "unbounded_following": 4}

_NUMERIC_FUNCS = {"ROUND", "ABS", "SQRT", "POWER", "FLOOR", "CEIL", "EXP",
                  "LN", "LENGTH", "STRPOS", "DATEPART"}
_STRING_FUNCS = {"UPPER", "LOWER", "TRIM", "SUBSTR", "CONCAT", "REPLACE",
                 "STRFTIME"}
_DATE_FUNCS = {"MAKEDATE"}

_WINDOW_RANKING = {"ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE"}
_WINDOW_OFFSET = {"LAG", "LEAD"}
_WINDOW_AGG = {"SUM", "AVG", "MIN", "MAX", "COUNT"}


@dataclass(frozen=True)
class ColInfo:
    """One synthesized output column of a plan node."""

    name: str
    binding: Optional[str] = None  # qualifier it resolves under, if any
    kind: Optional[str] = None     # "numeric" | "string" | "date" | None
    nullable: bool = True
    internal: bool = False         # planner-introduced __mark_N/__scalar_N
    # True when the kind is *planner-grade* knowledge: derived from a base
    # catalog column (possibly through bare-reference projections), the
    # same information the planner's own ``_body_kinds`` admission checks
    # see.  Type-agreement violations fire only between direct kinds —
    # anything softer (CTE chunks, derived tables, expressions) is
    # promoted at runtime and is legal to mix, so flagging it would
    # reject executable queries.
    direct: bool = False


@dataclass
class _RelInfo:
    """Synthesized relation shape flowing up the operator tree."""

    cols: list[ColInfo]
    # Window arrays available to the parent (ids of WindowCall nodes);
    # mirrors OpResult.window_values, which only a Window child populates.
    window_ids: frozenset = frozenset()
    # True when the shape is unknowable (hand-built SubqueryScan with
    # neither a subplan nor declared columns): parents skip name checks.
    opaque: bool = False


def _resolve(cols: list[ColInfo], ref: ColumnRef) -> Optional[ColInfo]:
    """Mirror Scope.resolve over synthesized columns; None = unknown."""
    if ref.table is not None:
        matches = [c for c in cols if c.binding == ref.table and c.name == ref.name]
        return matches[-1] if matches else None
    matches = [c for c in cols if c.name == ref.name]
    if len(matches) == 1:
        return matches[0]
    return None  # missing or ambiguous: runtime raises SQLBindError


def _cast_kind(type_name: str) -> Optional[str]:
    t = type_name.upper()
    if any(k in t for k in ("INT", "REAL", "FLOAT", "DOUBLE", "NUMERIC",
                            "DECIMAL", "BOOL")):
        return "numeric"
    if any(k in t for k in ("CHAR", "TEXT", "STRING", "CLOB")):
        return "string"
    if any(k in t for k in ("DATE", "TIME")):
        return "date"
    return None


def _literal_kind(value: object) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, (bool, int, float)):
        return "numeric"
    if isinstance(value, str):
        return "string"
    return "date" if "datetime" in type(value).__name__ else None


def _expr_kind(expr: Expr, cols: list[ColInfo]) -> tuple[Optional[str], bool]:
    """Best-effort (kind, nullable) of *expr* over the given columns.

    Returns ``(None, True)`` whenever the kind cannot be established
    statically — the verifier never guesses.
    """
    if isinstance(expr, Literal):
        return _literal_kind(expr.value), expr.value is None
    if isinstance(expr, Parameter):
        return None, True
    if isinstance(expr, ColumnRef):
        info = _resolve(cols, expr)
        return (info.kind, info.nullable) if info is not None else (None, True)
    if isinstance(expr, CastExpr):
        _, nullable = _expr_kind(expr.operand, cols)
        return _cast_kind(expr.type_name), nullable
    if isinstance(expr, UnaryOp):
        kind, nullable = _expr_kind(expr.operand, cols)
        if expr.op == "NOT":
            return "numeric", nullable
        return (kind if kind == "numeric" else None), nullable
    if isinstance(expr, BinaryOp):
        lk, ln = _expr_kind(expr.left, cols)
        rk, rn = _expr_kind(expr.right, cols)
        nullable = ln or rn
        if expr.op in ("=", "<>", "<", "<=", ">", ">=", "AND", "OR"):
            return "numeric", nullable
        if expr.op == "||":
            return "string", nullable
        if expr.op in ("+", "-", "*", "/", "%"):
            if lk == "numeric" and rk == "numeric":
                # Division can produce NULL (NaN) even over non-null input.
                return "numeric", nullable or expr.op in ("/", "%")
            return None, True  # date arithmetic etc.: leave unknown
        return None, True
    if isinstance(expr, (IsNull, LikeExpr, BetweenExpr, InList, InSubquery,
                         ExistsExpr)):
        return "numeric", True
    if isinstance(expr, ScalarSubquery):
        return None, True
    if isinstance(expr, CaseExpr):
        kinds = set()
        for _, value in expr.branches:
            kinds.add(_expr_kind(value, cols)[0])
        if expr.default is not None:
            kinds.add(_expr_kind(expr.default, cols)[0])
        kinds.discard(None)
        return (kinds.pop() if len(kinds) == 1 else None), True
    if isinstance(expr, AggCall):
        func = expr.func.upper()
        if func == "COUNT":
            return "numeric", False
        if func in ("SUM", "AVG"):
            return "numeric", True
        if func in ("MIN", "MAX") and expr.arg is not None:
            return _expr_kind(expr.arg, cols)[0], True
        return None, True
    if isinstance(expr, WindowCall):
        func = expr.func.upper()
        if func in _WINDOW_RANKING or func == "COUNT":
            return "numeric", False
        if func in ("SUM", "AVG"):
            return "numeric", True
        if func in ("MIN", "MAX", "LAG", "LEAD") and expr.args:
            return _expr_kind(expr.args[0], cols)[0], True
        return None, True
    if isinstance(expr, FuncCall):
        name = FUNCTION_ALIASES.get(expr.name.upper(), expr.name.upper())
        nullable = any(_expr_kind(a, cols)[1] for a in expr.args) or not expr.args
        if name in _NUMERIC_FUNCS:
            return "numeric", nullable
        if name in _STRING_FUNCS:
            return "string", nullable
        if name in _DATE_FUNCS:
            return "date", nullable
        if name in ("COALESCE", "NULLIF") and expr.args:
            return _expr_kind(expr.args[0], cols)[0], True
        return None, True
    return None, True


def _walk_exprs(expr: Expr) -> "Iterator[Expr]":
    """Yield *expr* and every sub-expression, excluding subquery bodies."""
    yield expr
    children: list[Expr] = []
    if isinstance(expr, BinaryOp):
        children = [expr.left, expr.right]
    elif isinstance(expr, UnaryOp):
        children = [expr.operand]
    elif isinstance(expr, (FuncCall,)):
        children = list(expr.args)
    elif isinstance(expr, AggCall):
        children = [expr.arg] if expr.arg is not None else []
    elif isinstance(expr, WindowCall):
        children = list(expr.args) + list(expr.partition_by) + \
            [o.expr for o in expr.order_by]
    elif isinstance(expr, CaseExpr):
        for cond, value in expr.branches:
            children.extend((cond, value))
        if expr.default is not None:
            children.append(expr.default)
    elif isinstance(expr, CastExpr):
        children = [expr.operand]
    elif isinstance(expr, BetweenExpr):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, (IsNull, LikeExpr)):
        children = [expr.operand]
    elif isinstance(expr, (InList,)):
        children = [expr.operand] + list(expr.items)
    elif isinstance(expr, InSubquery):
        children = [expr.operand]
    for child in children:
        yield from _walk_exprs(child)


EnvSchemas = Optional[dict]


class _Verifier:
    def __init__(self, catalog: "Catalog | None", config: "EngineConfig",
                 env: EnvSchemas):
        self.catalog = catalog
        self.config = config
        self.env: dict[str, list[ColInfo]] = {}
        for name, rel in (env or {}).items():
            self.env[name] = _env_cols(rel)
        self.marks: dict[str, str] = {}  # mark/scalar name -> defining path

    # -- helpers ----------------------------------------------------------

    def fail(self, invariant: str, message: str, path: str) -> "NoReturn":
        raise PlanInvariantError(invariant, message, path)

    def check_mark_refs(self, exprs: "Iterable[Expr]", cols: list[ColInfo],
                        path: str) -> None:
        """Planner-introduced __mark_N/__scalar_N refs must be in scope."""
        for expr in exprs:
            for ref in expr_columns(expr):
                if _MARK_RE.match(ref.name) and _resolve(cols, ref) is None:
                    self.fail("mark.scope",
                              f"reference to {ref.name!r} which is not "
                              f"produced by any operator below", path)

    # -- entry points -----------------------------------------------------

    def verify(self, plan: p.PhysicalPlan, path: str = "") -> _RelInfo:
        # type name, not label(): a label can embed the very field the
        # verifier is about to reject (e.g. an unknown SetOp kind).
        rel = self.visit(plan.root, path or type(plan.root).__name__)
        if not rel.opaque:
            names = [c.name for c in rel.cols]
            if names != list(plan.output_columns):
                self.fail("plan.output-columns",
                          f"plan declares output columns "
                          f"{plan.output_columns!r} but the root operator "
                          f"produces {names!r}", path or "root")
        return rel

    def subplan(self, plan: p.PhysicalPlan, path: str) -> _RelInfo:
        # A nested plan executes in its own scope, so its mark counter
        # restarts: __mark_0 in a subplan does not collide with the outer
        # tree's __mark_0.
        outer_marks = self.marks
        self.marks = {}
        try:
            return self.verify(plan, f"{path} > Subplan")
        finally:
            self.marks = outer_marks

    # -- dispatch ---------------------------------------------------------

    def visit(self, op: p.Operator, path: str) -> _RelInfo:
        if op.est_rows is not None and op.est_rows < 0:
            self.fail("est.nonnegative",
                      f"negative cardinality estimate {op.est_rows}", path)
        method = getattr(self, "visit_" + type(op).__name__, None)
        if method is None:
            self.fail("plan.operator",
                      f"unknown operator {type(op).__name__}", path)
        return method(op, path)

    def child(self, op: p.Operator, path: str) -> _RelInfo:
        return self.visit(op, f"{path} > {type(op).__name__}")

    # -- leaves -----------------------------------------------------------

    def visit_Scan(self, op: p.Scan, path: str) -> _RelInfo:
        if op.table in self.env:
            source = self.env[op.table]
            if op.chunk_ids is not None:
                self.fail("zonemap.target",
                          f"chunk pruning on CTE/env relation {op.table!r} "
                          f"(zone maps exist only on stored tables)", path)
        elif self.catalog is None:
            # No catalog supplied: table schemas are unknowable, so only
            # the column list declared on the scan itself is trusted.
            if op.keep_columns is None:
                return _RelInfo([], opaque=True)
            return _RelInfo([ColInfo(c, op.binding)
                             for c in op.keep_columns])
        elif self.catalog.has(op.table):
            table = self.catalog.get(op.table)
            source = [
                ColInfo(name, op.binding, _DTYPE_KINDS.get(dt.kind),
                        nullable=True, direct=True)
                for name, dt in zip(table.columns, table.dtypes)
            ]
            self._check_zone_maps(op, table, path)
        else:
            self.fail("scan.unknown-table",
                      f"scan of unknown table {op.table!r}", path)
        names = [c.name for c in source]
        if op.keep_columns is not None:
            missing = [c for c in op.keep_columns if c not in names]
            if missing:
                self.fail("scan.keep-columns",
                          f"keep_columns {missing!r} not in table "
                          f"{op.table!r} (has {names!r})", path)
            source = [next(c for c in source if c.name == want)
                      for want in op.keep_columns]
        cols = [ColInfo(c.name, op.binding, c.kind, c.nullable,
                        direct=c.direct)
                for c in source]
        return _RelInfo(cols)

    def _check_zone_maps(self, op: p.Scan, table: "Table", path: str) -> None:
        if op.chunk_ids is None:
            return
        if not self.config.zone_map_pruning:
            self.fail("zonemap.config",
                      "chunk pruning present but "
                      "EngineConfig.zone_map_pruning is off", path)
        if not getattr(table, "has_zone_maps", False):
            self.fail("zonemap.target",
                      f"chunk pruning on table {op.table!r} which has no "
                      f"zone maps", path)
        if op.n_chunks != table.nchunks:
            self.fail("zonemap.chunks",
                      f"plan recorded {op.n_chunks} chunk(s) but table "
                      f"{op.table!r} has {table.nchunks}", path)
        bad = [cid for cid in op.chunk_ids
               if not (0 <= cid < op.n_chunks)]
        if bad:
            self.fail("zonemap.chunks",
                      f"chunk ids {bad!r} out of range "
                      f"[0, {op.n_chunks})", path)

    def visit_DualScan(self, op: p.DualScan, path: str) -> _RelInfo:
        return _RelInfo([ColInfo("__one", None, "numeric", nullable=False,
                                 direct=True)])

    def visit_SubqueryScan(self, op: p.SubqueryScan, path: str) -> _RelInfo:
        if op.subplan is not None:
            inner = self.subplan(op.subplan, path)
            if inner.opaque:
                return _RelInfo([], opaque=True)
            source = [ColInfo(c.name, op.binding, c.kind, c.nullable)
                      for c in inner.cols]
        elif isinstance(op.body, ValuesClause):
            width = len(op.body.rows[0]) if op.body.rows else 0
            for i, row in enumerate(op.body.rows):
                if len(row) != width:
                    self.fail("subquery.values-arity",
                              f"VALUES row {i} has {len(row)} column(s), "
                              f"expected {width}", path)
            source = [ColInfo(f"col{i}", op.binding) for i in range(width)]
        else:
            # Hand-built node deferring planning to execution time: the
            # shape is unknowable statically.
            return _RelInfo([], opaque=True)
        if op.column_names is not None:
            if len(op.column_names) != len(source):
                self.fail("subquery.rename-arity",
                          f"derived table declares {len(op.column_names)} "
                          f"column name(s) {op.column_names!r} but its body "
                          f"produces {len(source)}", path)
            source = [ColInfo(name, op.binding, c.kind, c.nullable)
                      for name, c in zip(op.column_names, source)]
        if op.keep_columns is not None:
            names = [c.name for c in source]
            missing = [c for c in op.keep_columns if c not in names]
            if missing:
                self.fail("scan.keep-columns",
                          f"keep_columns {missing!r} not produced by derived "
                          f"table {op.binding!r} (has {names!r})", path)
            source = [next(c for c in source if c.name == want)
                      for want in op.keep_columns]
        return _RelInfo(source)

    # -- filters ----------------------------------------------------------

    def visit_Filter(self, op: p.Filter, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        for pred in op.predicates:
            if has_subquery(pred):
                self.fail("filter.subquery",
                          "subquery predicate pushed below a join boundary "
                          "(must stay in a ResidualFilter)", path)
        self.check_mark_refs(op.predicates, rel.cols, path)
        self._check_prune_soundness(op, path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def _check_prune_soundness(self, op: p.Filter, path: str) -> None:
        """Re-derive the zone-map chunk selection: every chunk whose
        min/max intervals admit all pushdown conjuncts must be kept."""
        scan = op.child
        if not isinstance(scan, p.Scan) or scan.chunk_ids is None:
            return
        if self.catalog is None or not self.catalog.has(scan.table):
            return
        table = self.catalog.get(scan.table)
        if not getattr(table, "has_zone_maps", False):
            return
        kept = set(scan.chunk_ids)
        for cid in range(scan.n_chunks):
            if cid in kept:
                continue
            try:
                may_match = all(
                    _chunk_may_match(pred, table, scan.binding, cid)
                    for pred in op.predicates)
            except Exception:
                may_match = True  # pruning must stay conservative
            if may_match:
                self.fail("zonemap.sound",
                          f"chunk {cid} of {scan.table!r} was pruned but "
                          f"its zone maps admit the filter predicates",
                          path)

    def visit_ResidualFilter(self, op: p.ResidualFilter, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        self.check_mark_refs(op.predicates, rel.cols, path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    # -- joins ------------------------------------------------------------

    def _right_side(self, op: "Any", rel: _RelInfo, path: str) -> None:
        if rel.opaque:
            return
        bad = [c.name for c in rel.cols
               if not c.internal and c.binding != op.right_binding]
        if bad:
            self.fail("join.binding",
                      f"right child columns {bad!r} are not bound to the "
                      f"declared right binding {op.right_binding!r}", path)

    def visit_CrossJoin(self, op: p.CrossJoin, path: str) -> _RelInfo:
        left = self.child(op.left, path)
        right = self.child(op.right, path)
        self._right_side(op, right, path)
        return _RelInfo(left.cols + right.cols,
                        opaque=left.opaque or right.opaque)

    def visit_HashJoin(self, op: p.HashJoin, path: str) -> _RelInfo:
        left = self.child(op.left, path)
        right = self.child(op.right, path)
        self._right_side(op, right, path)
        if not op.pairs:
            self.fail("join.pairs", "hash join with no equi-key pairs "
                      "(planner emits CrossJoin instead)", path)
        if op.how not in ("inner", "left", "right", "full"):
            self.fail("join.how", f"unknown join type {op.how!r}", path)
        if op.residual and op.how != "inner":
            self.fail("join.residual-outer",
                      f"residual ON conjuncts on a {op.how!r} join "
                      f"(planner rejects this as unsupported)", path)
        for i, (lexpr, rexpr) in enumerate(op.pairs):
            self._check_pair(i, lexpr, rexpr, left, right, path)
        self.check_mark_refs(op.residual, left.cols + right.cols, path)
        lcols = left.cols
        rcols = right.cols
        if op.how in ("left", "full"):
            rcols = [ColInfo(c.name, c.binding, c.kind, True, c.internal,
                             c.direct)
                     for c in rcols]
        if op.how in ("right", "full"):
            lcols = [ColInfo(c.name, c.binding, c.kind, True, c.internal,
                             c.direct)
                     for c in lcols]
        return _RelInfo(lcols + rcols,
                        opaque=left.opaque or right.opaque)

    def _check_pair(self, i: int, lexpr: Expr, rexpr: Expr,
                    left: _RelInfo, right: _RelInfo, path: str) -> None:
        # Build/probe side consistency: a key expression is evaluated
        # against its own side's chunk, so a reference resolvable *only*
        # on the opposite side is a mis-sided key.
        for expr, own, other, side in ((lexpr, left, right, "left"),
                                       (rexpr, right, left, "right")):
            if own.opaque or other.opaque:
                continue
            for ref in expr_columns(expr):
                if _resolve(own.cols, ref) is None and \
                        _resolve(other.cols, ref) is not None:
                    self.fail("join.sides",
                              f"key pair {i}: {side} expression references "
                              f"{ref.table + '.' if ref.table else ''}"
                              f"{ref.name} which resolves only on the "
                              f"other side", path)
        # Dtype agreement is enforced only when a planner-generated
        # (internal) column is involved: SQL permits user equalities
        # across kinds (the kernels promote to object), but a mark or
        # scalar column paired against an incompatible kind can only be a
        # planner rewrite bug.
        internal = any(
            (info := _resolve(rel.cols, ref)) is not None and info.internal
            for expr, rel in ((lexpr, left), (rexpr, right))
            for ref in expr_columns(expr))
        if not internal:
            return
        lkind, _ = _expr_kind(lexpr, left.cols)
        rkind, _ = _expr_kind(rexpr, right.cols)
        if lkind is not None and rkind is not None and lkind != rkind:
            self.fail("join.keys",
                      f"key pair {i}: incomparable dtypes "
                      f"({lkind} vs {rkind})", path)
        if self.config.memory_budget is not None and \
                lkind is not None and rkind is not None and \
                _SPILL_CLASSES.get(lkind) != _SPILL_CLASSES.get(rkind):
            self.fail("spill.keys",
                      f"key pair {i}: sides hash in different spill "
                      f"families ({lkind} vs {rkind}) under a memory "
                      f"budget", path)

    def visit_Materialized(self, op: "p.Materialized", path: str) -> _RelInfo:
        # Leaves of an adaptive re-planned chain: the relation shape is the
        # already-executed chunk.  A result-less node (plan shape only) has
        # an unknowable shape.
        if op.result is None:
            return _RelInfo([], opaque=True)
        chunk = op.result.chunk
        return _RelInfo([
            ColInfo(name, op.binding, _DTYPE_KINDS.get(arr.dtype.kind))
            for name, arr in zip(chunk.columns, chunk.arrays)
        ])

    def visit_AdaptiveJoin(self, op: "p.AdaptiveJoin", path: str) -> _RelInfo:
        if not self.config.adaptive_execution:
            self.fail("adaptive.preconditions",
                      "AdaptiveJoin present but "
                      "EngineConfig.adaptive_execution is off", path)
        n = len(op.sources)
        if n < 2:
            self.fail("adaptive.sources",
                      f"AdaptiveJoin over {n} source(s) (a single source "
                      f"needs no join)", path)
        indices = [i for i, _ in op.static_order]
        if sorted(indices) != list(range(n)):
            self.fail("adaptive.order",
                      f"static order {indices!r} is not a permutation of "
                      f"the {n} sources", path)
        if op.static_order[0][1]:
            self.fail("adaptive.order",
                      "first source of the static order carries join "
                      "pairs (nothing to join against yet)", path)
        for (i, j, _le, _re) in op.edges:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                self.fail("adaptive.edges",
                          f"edge ({i}, {j}) does not connect two distinct "
                          f"sources (have {n})", path)
        rels = []
        opaque = False
        for s in op.sources:
            rel = self.child(s.op, path)
            if not rel.opaque:
                bad = [c.name for c in rel.cols
                       if not c.internal and c.binding != s.binding]
                if bad:
                    self.fail("join.binding",
                              f"source columns {bad!r} are not bound to "
                              f"the declared binding {s.binding!r}", path)
            rels.append(rel)
            opaque = opaque or rel.opaque
        # Output layout follows the static order (AdaptiveJoin permutes a
        # re-ordered execution back to this layout).
        cols: list[ColInfo] = []
        for i, _pairs in op.static_order:
            cols.extend(rels[i].cols)
        return _RelInfo(cols, opaque=opaque)

    # -- decorrelated subqueries ------------------------------------------

    def _check_probes(self, op: "Any", rel: _RelInfo, inner: _RelInfo,
                      path: str) -> None:
        if not inner.opaque and op.probe_exprs and \
                len(op.probe_exprs) > len(inner.cols):
            self.fail("subquery.probe-arity",
                      f"{len(op.probe_exprs)} probe expression(s) against a "
                      f"subplan producing {len(inner.cols)} column(s)", path)
        self.check_mark_refs(op.probe_exprs, rel.cols, path)
        if inner.opaque or rel.opaque:
            return
        for i, probe in enumerate(op.probe_exprs[:len(inner.cols)]):
            # As for join pairs, kinds must agree only when the probe rests
            # on a planner-generated column — user IN/EXISTS operands may
            # legally compare across kinds.
            internal = any(
                (info := _resolve(rel.cols, ref)) is not None
                and info.internal for ref in expr_columns(probe))
            if not internal:
                continue
            pkind, _ = _expr_kind(probe, rel.cols)
            ikind = inner.cols[i].kind
            if pkind is not None and ikind is not None and pkind != ikind:
                self.fail("join.keys",
                          f"probe {i}: incomparable dtypes "
                          f"({pkind} vs {ikind})", path)

    def visit_SemiJoin(self, op: p.SemiJoin, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        inner = self.subplan(op.subplan, path)
        self._check_probes(op, rel, inner, path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def visit_AntiJoin(self, op: p.AntiJoin, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        inner = self.subplan(op.subplan, path)
        if op.null_aware and not op.probe_exprs:
            self.fail("subquery.null-aware-probe",
                      "null-aware anti join (NOT IN) requires probe "
                      "expressions", path)
        self._check_probes(op, rel, inner, path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def _define_mark(self, name: str, prefix: str, path: str) -> None:
        if not name.startswith(prefix):
            self.fail("mark.name",
                      f"appended column {name!r} must start with "
                      f"{prefix!r} (star expansion skips that prefix; "
                      f"anything else leaks into SELECT * output)", path)
        if name in self.marks:
            self.fail("mark.unique",
                      f"column {name!r} defined twice (also at "
                      f"{self.marks[name]})", path)
        self.marks[name] = path

    def visit_MarkJoin(self, op: p.MarkJoin, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        inner = self.subplan(op.subplan, path)
        if op.mode not in ("semi", "anti", "anti-null"):
            self.fail("mark.mode", f"unknown mark mode {op.mode!r}", path)
        if op.mode == "anti-null" and not op.probe_exprs:
            self.fail("subquery.null-aware-probe",
                      "null-aware mark join (NOT IN) requires probe "
                      "expressions", path)
        self._check_probes(op, rel, inner, path)
        self._define_mark(op.mark_name, "__mark_", path)
        mark = ColInfo(op.mark_name, None, "numeric", nullable=False,
                       internal=True)
        return _RelInfo(rel.cols + [mark], opaque=rel.opaque)

    def visit_ScalarSubqueryScan(self, op: p.ScalarSubqueryScan,
                                 path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        inner = self.subplan(op.subplan, path)
        if not inner.opaque and len(inner.cols) != 1:
            self.fail("subquery.scalar-arity",
                      f"scalar subquery produces {len(inner.cols)} "
                      f"column(s), expected exactly 1", path)
        self._define_mark(op.scalar_name, "__scalar_", path)
        kind = inner.cols[0].kind if not inner.opaque and inner.cols else None
        scalar = ColInfo(op.scalar_name, None, kind, nullable=True,
                         internal=True)
        return _RelInfo(rel.cols + [scalar], opaque=rel.opaque)

    # -- window -----------------------------------------------------------

    def visit_Window(self, op: p.Window, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        for call in op.calls:
            self._check_window_call(call, path)
        ids = frozenset(id(c) for c in op.calls)
        return _RelInfo(rel.cols, window_ids=ids, opaque=rel.opaque)

    def _check_window_call(self, call: WindowCall, path: str) -> None:
        func = call.func.upper()
        what = f"window function {call.func}"
        if func == "NTILE":
            if not call.args:
                self.fail("window.args", f"{what} requires an argument", path)
            arg = call.args[0]
            if isinstance(arg, Literal) and \
                    (not isinstance(arg.value, int) or arg.value <= 0):
                self.fail("window.ntile",
                          f"NTILE bucket count must be a positive integer, "
                          f"got {arg.value!r}", path)
        elif func in _WINDOW_OFFSET and not call.args:
            self.fail("window.args", f"{what} requires an argument", path)
        elif func in ("SUM", "AVG", "MIN", "MAX") and len(call.args) != 1:
            self.fail("window.args",
                      f"{what} takes exactly one argument, got "
                      f"{len(call.args)}", path)
        if call.frame is not None:
            self._check_frame(call.frame, what, path)

    def _check_frame(self, frame: WindowFrame, what: str, path: str) -> None:
        if frame.unit not in ("rows", "range"):
            self.fail("window.frame",
                      f"{what}: unknown frame unit {frame.unit!r}", path)
        for kind, offset, end in ((frame.start_kind, frame.start_offset,
                                   "start"),
                                  (frame.end_kind, frame.end_offset, "end")):
            if kind not in _FRAME_KIND_RANK:
                self.fail("window.frame",
                          f"{what}: unknown frame bound {kind!r}", path)
            if kind in ("preceding", "following") and \
                    (not isinstance(offset, int) or offset < 0):
                self.fail("window.frame",
                          f"{what}: negative {end} offset {offset!r}", path)
        if _FRAME_KIND_RANK[frame.start_kind] > \
                _FRAME_KIND_RANK[frame.end_kind]:
            self.fail("window.frame",
                      f"{what}: frame start {frame.start_kind!r} is after "
                      f"its end {frame.end_kind!r}", path)
        if frame.unit == "range" and not (
                frame.start_kind == "unbounded_preceding"
                and frame.end_kind in ("current", "unbounded_following")):
            self.fail("window.frame",
                      f"{what}: the engine evaluates RANGE frames only as "
                      f"UNBOUNDED PRECEDING .. CURRENT ROW/UNBOUNDED "
                      f"FOLLOWING", path)

    # -- projection / aggregation -----------------------------------------

    def _expand_items(self, select: Select,
                      rel: _RelInfo) -> Optional[list[SelectItem]]:
        """Mirror Executor._expand_items over the synthesized schema."""
        items: list[SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                if rel.opaque:
                    return None
                for col in rel.cols:
                    if col.internal or col.name.startswith(("__mark_",
                                                            "__scalar_")):
                        continue
                    if item.expr.table is not None and not any(
                            c.binding == item.expr.table
                            and c.name == col.name for c in rel.cols):
                        continue
                    items.append(SelectItem(
                        expr=ColumnRef(name=col.name, table=item.expr.table),
                        alias=col.name))
            else:
                items.append(item)
        return items

    @staticmethod
    def _output_name(item: SelectItem, position: int) -> str:
        if item.alias is not None:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"col{position}"

    @staticmethod
    def _all_direct(rel: _RelInfo) -> bool:
        """Mirror of the planner's admission-check precondition: kinds are
        planner-grade only when every input relation is a base catalog
        table (CTE or derived-table columns poison the whole body)."""
        return not rel.opaque and all(
            c.direct for c in rel.cols if not c.internal)

    def _planner_kind(self, expr: Expr, cols: list[ColInfo],
                      all_direct: bool) -> tuple[Optional[str], bool]:
        """(kind, planner-grade?) of *expr*, no more knowing than
        ``Planner._item_kind`` — the contract that keeps type-agreement
        rules free of false positives."""
        if isinstance(expr, ColumnRef):
            info = _resolve(cols, expr)
            if info is None:
                return None, False
            return info.kind, info.direct and all_direct
        if isinstance(expr, Literal):
            kind = _literal_kind(expr.value)
            return kind, all_direct and kind in ("numeric", "string")
        if isinstance(expr, AggCall):
            if expr.func.upper() in ("COUNT", "SUM", "AVG", "STDDEV", "VAR"):
                return "numeric", all_direct
            if expr.arg is not None:
                return self._planner_kind(expr.arg, cols, all_direct)
        kind, _ = _expr_kind(expr, cols)
        return kind, False

    def _projected(self, select: Select, rel: _RelInfo,
                   path: str) -> _RelInfo:
        items = self._expand_items(select, rel)
        if items is None:
            return _RelInfo([], opaque=True)
        exprs = [it.expr for it in items]
        self.check_mark_refs(exprs, rel.cols, path)
        all_direct = self._all_direct(rel)
        cols = []
        for i, it in enumerate(items):
            kind, nullable = _expr_kind(it.expr, rel.cols)
            _, direct = self._planner_kind(it.expr, rel.cols, all_direct)
            cols.append(ColInfo(self._output_name(it, i), None, kind,
                                nullable, direct=direct))
        return _RelInfo(cols, opaque=rel.opaque)

    def visit_Project(self, op: p.Project, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        for item in op.select.items:
            for sub in _walk_exprs(item.expr):
                if isinstance(sub, WindowCall) and \
                        id(sub) not in rel.window_ids:
                    self.fail("window.placement",
                              f"projection uses window function "
                              f"{sub.func} but no Window child below "
                              f"computes it", path)
        return self._projected(op.select, rel, path)

    def visit_HashAggregate(self, op: p.HashAggregate, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        select = op.select
        all_exprs = [it.expr for it in select.items] + list(select.group_by)
        if select.having is not None:
            all_exprs.append(select.having)
        self.check_mark_refs(all_exprs, rel.cols, path)
        all_direct = self._all_direct(rel)
        for expr in all_exprs:
            for sub in _walk_exprs(expr):
                if isinstance(sub, WindowCall):
                    self.fail("window.in-aggregate",
                              f"window function {sub.func} inside a "
                              f"HashAggregate (windows evaluate over the "
                              f"post-aggregate relation)", path)
                if isinstance(sub, AggCall) and sub.arg is not None and \
                        sub.func.upper() in ("SUM", "AVG", "STDDEV", "VAR"):
                    kind, direct = self._planner_kind(sub.arg, rel.cols,
                                                      all_direct)
                    # "string" kind from a column is object dtype, which
                    # legally holds all-NULL / promoted-numeric data — only
                    # the planner's bind-time data probe can confirm
                    # string-ness.  Statically certain cases: date columns
                    # (their own dtype) and string literals.
                    definite = kind == "date" or (
                        kind == "string" and isinstance(sub.arg, Literal)
                    )
                    if direct and definite:
                        self.fail("agg.input",
                                  f"{sub.func} over a {kind} argument", path)
        return self._projected(select, rel, path)

    # -- reshaping / ordering ---------------------------------------------

    def visit_Distinct(self, op: p.Distinct, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def visit_Sort(self, op: p.Sort, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        if not op.order_by:
            self.fail("sort.keys", "Sort with no order keys", path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def visit_TopK(self, op: p.TopK, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        if not op.order_by:
            self.fail("topk.preconditions", "TopK with no order keys", path)
        if not isinstance(op.n, int) or op.n < 0:
            self.fail("topk.preconditions",
                      f"TopK with invalid row count {op.n!r}", path)
        if not self.config.topk_rewrite:
            self.fail("topk.preconditions",
                      "TopK present but EngineConfig.topk_rewrite is off "
                      "(the rewrite must not fire)", path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def visit_Limit(self, op: p.Limit, path: str) -> _RelInfo:
        rel = self.child(op.child, path)
        if not isinstance(op.n, int) or op.n < 0:
            self.fail("limit.n", f"invalid limit {op.n!r}", path)
        return _RelInfo(rel.cols, opaque=rel.opaque)

    def visit_SetOp(self, op: p.SetOp, path: str) -> _RelInfo:
        left = self.child(op.left, path)
        right = self.child(op.right, path)
        if op.op not in ("union", "intersect", "except"):
            self.fail("setop.op", f"unknown set operation {op.op!r}", path)
        width = len(op.columns)
        for side, rel in (("left", left), ("right", right)):
            if not rel.opaque and len(rel.cols) != width:
                self.fail("setop.arity",
                          f"{side} operand produces {len(rel.cols)} "
                          f"column(s), set operation declares {width}", path)
        kinds = [None] * width
        if not left.opaque and not right.opaque:
            for i, (lc, rc) in enumerate(zip(left.cols, right.cols)):
                # Planner-grade kinds only: runtime promotion makes mixed
                # CTE/derived/expression columns legal, and the planner's
                # own _check_type_compatibility already rejected every
                # statically-known mismatch — so one here is a bug.
                if lc.direct and rc.direct and lc.kind is not None and \
                        rc.kind is not None and lc.kind != rc.kind:
                    self.fail("setop.types",
                              f"column {i}: incomparable dtypes "
                              f"({lc.kind} vs {rc.kind})", path)
                kinds[i] = lc.kind if lc.kind == rc.kind else None
            names = [c.name for c in left.cols]
            alt = [c.name for c in right.cols]
            # The planner may swap INTERSECT operands by cardinality, so
            # the declared columns can come from either written side.
            if op.columns != names and not (op.op == "intersect"
                                            and op.columns == alt):
                self.fail("setop.columns",
                          f"declared columns {op.columns!r} match neither "
                          f"operand ({names!r} / {alt!r})", path)
        cols = [ColInfo(name, None, kind)
                for name, kind in zip(op.columns, kinds)]
        return _RelInfo(cols)


def _env_cols(rel: "Any") -> list[ColInfo]:
    """Normalize an env entry (Chunk or RelSchema) to ColInfo columns."""
    if isinstance(rel, RelSchema):
        return [ColInfo(name, None) for name in rel.columns]
    arrays = getattr(rel, "arrays", None)
    if arrays is not None:
        return [
            ColInfo(name, None, _DTYPE_KINDS.get(arr.dtype.kind))
            for name, arr in zip(rel.columns, arrays)
        ]
    return [ColInfo(name, None) for name in rel.columns]


def verify_plan(plan: p.PhysicalPlan, catalog: "Catalog | None" = None,
                config: "EngineConfig | None" = None,
                env: EnvSchemas = None) -> None:
    """Check every structural invariant of *plan*; raise on the first
    violation.

    ``catalog`` supplies base-table schemas (dtype kinds, zone maps);
    ``env`` maps CTE names to their materialized chunks (execution path)
    or :class:`~repro.sqlengine.planner.RelSchema` (explain path).
    Either may be ``None``, in which case the corresponding checks relax
    to unknown-dtype leniency rather than failing.
    """
    from ..sqlengine.executor import EngineConfig

    _Verifier(catalog, config or EngineConfig(), env).verify(plan)
