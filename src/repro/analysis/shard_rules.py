"""Structural invariants for shard plans (scatter/gather recipes).

:func:`verify_shard_query` is the sharding counterpart of the physical
plan verifier: it checks the :class:`~repro.server.shard.ShardQuery` a
coordinator is about to scatter, together with the chunk partition it
computed, and raises :class:`~repro.errors.PlanInvariantError` on the
first violation.  Every rule guards a property the merge-correctness
argument depends on — a recipe that passes these checks either produces
the serial answer or fails loudly; it cannot silently drop or double-count
rows.

Rule ids (``shard.*``), like the plan-verifier's, are catalogued in
docs/ARCHITECTURE.md:

- ``shard.kind``                — recipe kind is ``agg`` or ``topk``
- ``shard.partition.cover``     — chunk ranges tile ``range(nchunks)``
                                  exactly: contiguous, ascending, no gap,
                                  no overlap (gap ⇒ dropped rows, overlap
                                  ⇒ double-counted rows)
- ``shard.partition.nonempty``  — no empty worker range
- ``shard.agg.mergeable``       — every aggregate is in the mergeable set
- ``shard.items.resolved``      — every output item maps to a group key
                                  or an aggregate, with in-range indices
- ``shard.order.resolved``      — every ORDER BY target is a valid item
                                  or key reference (``agg``) / a named
                                  output column (``topk``)
- ``shard.topk.bounded``        — Top-K recipes carry a LIMIT and at
                                  least one sort column
"""

from __future__ import annotations

from ..errors import PlanInvariantError

__all__ = ["verify_shard_query"]

_MERGEABLE = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


def _fail(invariant: str, message: str, table: str) -> None:
    raise PlanInvariantError(invariant, message, path=f"shard({table})")


def verify_shard_query(shard_q, nchunks: int,
                       ranges: list[tuple[int, int]]) -> None:
    """Validate a scatter recipe and its partition; raise on violation."""
    table = getattr(shard_q, "table", "?")
    if shard_q.kind not in ("agg", "topk"):
        _fail("shard.kind", f"unknown shard kind {shard_q.kind!r}", table)
    if not isinstance(table, str) or not table:
        _fail("shard.kind", "shard table name must be a non-empty string",
              table)

    if not ranges:
        _fail("shard.partition.cover", "no worker ranges computed", table)
    expect = 0
    for lo, hi in ranges:
        if lo >= hi:
            _fail("shard.partition.nonempty",
                  f"empty worker range [{lo}, {hi})", table)
        if lo != expect:
            _fail("shard.partition.cover",
                  f"range [{lo}, {hi}) breaks coverage at chunk {expect} "
                  "(a gap drops rows; an overlap double-counts them)",
                  table)
        expect = hi
    if expect != nchunks:
        _fail("shard.partition.cover",
              f"ranges cover {expect} of {nchunks} chunks", table)

    if shard_q.kind == "agg":
        for func in shard_q.agg_funcs:
            if func not in _MERGEABLE:
                _fail("shard.agg.mergeable",
                      f"aggregate {func} has no partial/merge decomposition",
                      table)
        if len(shard_q.agg_item_indices) != len(shard_q.agg_funcs):
            _fail("shard.items.resolved",
                  "aggregate item indices do not match aggregate functions",
                  table)
        if len(shard_q.items) != len(shard_q.names):
            _fail("shard.items.resolved",
                  f"{len(shard_q.items)} item mappings for "
                  f"{len(shard_q.names)} output columns", table)
        for kind, idx in shard_q.items:
            if kind == "key":
                if not 0 <= idx < shard_q.nkeys:
                    _fail("shard.items.resolved",
                          f"group-key index {idx} out of range "
                          f"(nkeys={shard_q.nkeys})", table)
            elif kind == "agg":
                if not 0 <= idx < len(shard_q.agg_funcs):
                    _fail("shard.items.resolved",
                          f"aggregate index {idx} out of range", table)
            else:
                _fail("shard.items.resolved",
                      f"unknown item mapping kind {kind!r}", table)
        for kind, idx, _asc in shard_q.order:
            if kind == "item" and not 0 <= idx < len(shard_q.items):
                _fail("shard.order.resolved",
                      f"ORDER BY item index {idx} out of range", table)
            if kind == "key" and not 0 <= idx < shard_q.nkeys:
                _fail("shard.order.resolved",
                      f"ORDER BY key index {idx} out of range", table)
            if kind not in ("item", "key"):
                _fail("shard.order.resolved",
                      f"unknown ORDER BY mapping kind {kind!r}", table)
    else:  # topk
        if shard_q.limit is None or shard_q.limit < 0:
            _fail("shard.topk.bounded",
                  "Top-K scatter requires a non-negative LIMIT", table)
        if not shard_q.order_cols:
            _fail("shard.topk.bounded",
                  "Top-K scatter requires at least one ORDER BY column",
                  table)
        for name, _asc in shard_q.order_cols:
            if not isinstance(name, str) or not name:
                _fail("shard.order.resolved",
                      f"unresolved ORDER BY column {name!r}", table)
