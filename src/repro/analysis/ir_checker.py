"""Well-formedness checks for TondIR programs.

:func:`check_program` validates the structural invariants every
optimization pass must preserve — run on entry to
:func:`~repro.core.tondir.optimize.optimize` (covering the translator's
raw output and the O0 identity level) and again after every pass round,
so a pass that leaves a dangling reference behind is caught at the pass
boundary rather than when SQL rendering or execution trips over it.

Checked invariants (rule ids raised in :class:`~repro.errors.
IRInvariantError`):

- ``ir.sink`` — the sink relation is defined by some rule (or is a known
  base relation).
- ``ir.dangling-rel`` — every relation a rule reads is defined by a rule
  or is a base relation.  The base-relation set is *inferred at entry*
  (reads with no defining rule) and then frozen, so a pass that deletes
  a still-referenced rule cannot re-classify the orphan as "base".
- ``ir.union-arity`` — all rules defining one head relation (the UNION
  ALL encoding) agree on arity.
- ``ir.head-bound`` — head variables, group keys, and sort keys are
  bound in the rule body.
- ``ir.dangling-var`` — filter/assign/exists terms only use bound
  variables (an exists body may additionally use its own local bindings).
- ``ir.single-assignment`` — no variable is assigned by two AssignAtoms
  in one scope.
- ``ir.const-arity`` — ConstRelAtom rows match their variable list.
- ``ir.outer-rel`` — OuterAtom relation indices point at distinct
  RelAtoms of the same body, with a known join kind.
- ``ir.recursion`` — no relation (transitively) reads itself; the SQL
  renderer emits non-recursive CTEs only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core.tondir.analysis import references
from ..core.tondir.ir import (
    AssignAtom,
    Atom,
    ConstRelAtom,
    ExistsAtom,
    FilterAtom,
    OuterAtom,
    Program,
    RelAtom,
    Rule,
    term_vars,
)
from ..errors import IRInvariantError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import NoReturn


def _fail(invariant: str, message: str, stage: str) -> "NoReturn":
    raise IRInvariantError(invariant, message, stage)


def _check_atoms(atoms: Iterable[Atom], outer_bound: set[str], where: str,
                 stage: str) -> None:
    """Check one atom list (a rule body or an exists body)."""
    atoms = list(atoms)
    bound = set(outer_bound)
    assigned: set[str] = set()
    rel_count = 0
    for atom in atoms:
        if isinstance(atom, (RelAtom, ConstRelAtom)):
            bound.update(atom.vars)
            rel_count += 1
        elif isinstance(atom, AssignAtom):
            if atom.var in assigned:
                _fail("ir.single-assignment",
                      f"{where}: variable {atom.var!r} assigned twice",
                      stage)
            assigned.add(atom.var)
            bound.add(atom.var)

    for atom in atoms:
        if isinstance(atom, ConstRelAtom):
            for i, row in enumerate(atom.rows):
                if len(row) != len(atom.vars):
                    _fail("ir.const-arity",
                          f"{where}: const row {i} has {len(row)} value(s) "
                          f"for {len(atom.vars)} variable(s)", stage)
        elif isinstance(atom, AssignAtom):
            dangling = term_vars(atom.term) - bound
            if dangling:
                _fail("ir.dangling-var",
                      f"{where}: assignment of {atom.var!r} uses unbound "
                      f"variable(s) {sorted(dangling)!r}", stage)
        elif isinstance(atom, FilterAtom):
            dangling = term_vars(atom.term) - bound
            if dangling:
                _fail("ir.dangling-var",
                      f"{where}: filter uses unbound variable(s) "
                      f"{sorted(dangling)!r}", stage)
        elif isinstance(atom, ExistsAtom):
            _check_atoms(atom.body, bound, where + " exists", stage)
        elif isinstance(atom, OuterAtom):
            if atom.kind not in ("left", "right", "full"):
                _fail("ir.outer-rel",
                      f"{where}: unknown outer join kind {atom.kind!r}",
                      stage)
            for idx in (atom.left_rel, atom.right_rel):
                if not (0 <= idx < rel_count):
                    _fail("ir.outer-rel",
                          f"{where}: outer join relation index {idx} out "
                          f"of range (body has {rel_count} relation "
                          f"atom(s))", stage)
            if atom.left_rel == atom.right_rel:
                _fail("ir.outer-rel",
                      f"{where}: outer join of relation atom "
                      f"{atom.left_rel} with itself", stage)
            dangling = {v for pair in atom.pairs for v in pair} - bound
            if dangling:
                _fail("ir.dangling-var",
                      f"{where}: outer join keys use unbound variable(s) "
                      f"{sorted(dangling)!r}", stage)


def _check_rule(rule: Rule, stage: str) -> None:
    where = f"rule {rule.head.rel!r}"
    _check_atoms(rule.body, set(), where, stage)
    bound = rule.bound_vars()
    for label, keys in (("head", rule.head.vars),
                       ("group", rule.head.group or []),
                       ("sort", [v for v, _asc in rule.head.sort.keys]
                        if rule.head.sort is not None else [])):
        dangling = set(keys) - bound
        if dangling:
            _fail("ir.head-bound",
                  f"{where}: {label} variable(s) {sorted(dangling)!r} are "
                  f"not bound in the body", stage)


def check_program(program: Program,
                  base_rels: Optional[set[str]] = None,
                  stage: str = "") -> set[str]:
    """Validate *program*; raise :class:`IRInvariantError` on the first
    violation.

    Returns the base-relation set: ``base_rels`` unchanged when given,
    otherwise inferred as every relation read but defined by no rule.
    Callers running a pass pipeline should capture the entry-time result
    and pass it back after each pass, freezing the base set.
    """
    defined: dict[str, int] = {}
    for rule in program.rules:
        arity = len(rule.head.vars)
        if rule.head.rel in defined and defined[rule.head.rel] != arity:
            _fail("ir.union-arity",
                  f"rules for {rule.head.rel!r} disagree on arity "
                  f"({defined[rule.head.rel]} vs {arity})", stage)
        defined.setdefault(rule.head.rel, arity)

    if base_rels is None:
        base_rels = set()
        for rule in program.rules:
            base_rels |= references(rule) - set(defined)

    for rule in program.rules:
        _check_rule(rule, stage)
        dangling = references(rule) - set(defined) - base_rels
        if dangling:
            _fail("ir.dangling-rel",
                  f"rule {rule.head.rel!r} reads undefined relation(s) "
                  f"{sorted(dangling)!r}", stage)

    if program.rules and program.sink not in defined \
            and program.sink not in base_rels:
        _fail("ir.sink",
              f"sink relation {program.sink!r} is defined by no rule",
              stage)

    # Recursion: depth-first over the defined-relation read graph.
    graph = {rel: set() for rel in defined}
    for rule in program.rules:
        graph[rule.head.rel] |= references(rule) & set(defined)
    state: dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(rel: str, trail: list[str]) -> None:
        state[rel] = 1
        for dep in sorted(graph[rel]):
            if state.get(dep) == 1:
                cycle = trail[trail.index(dep):] + [dep] \
                    if dep in trail else [rel, dep]
                _fail("ir.recursion",
                      f"recursive relation definition: "
                      f"{' -> '.join(cycle)}", stage)
            if state.get(dep) is None:
                visit(dep, trail + [dep])
        state[rel] = 2

    for rel in defined:
        if state.get(rel) is None:
            visit(rel, [rel])

    return base_rels
