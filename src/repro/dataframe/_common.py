"""Shared helpers for the DataFrame library: dtype and null handling."""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_string_array",
    "is_datetime_array",
    "isna_array",
    "coerce_array",
    "take_with_nulls",
    "combine_dtypes",
]

_MISSING = None


def coerce_array(values) -> np.ndarray:
    """Convert arbitrary python values into a canonical numpy column.

    Strings become ``object`` arrays, dates stay ``datetime64[D]``, bools /
    ints / floats keep their natural numpy dtype.
    """
    if isinstance(values, np.ndarray):
        arr = values
    elif np.isscalar(values) or values is None:
        arr = np.asarray(values if values is not None else np.nan)
    else:
        values = list(values) if not isinstance(values, (list, tuple)) else values
        arr = np.asarray(values)
    if arr.dtype.kind == "U":
        arr = arr.astype(object)
    if arr.dtype.kind == "M":
        arr = arr.astype("datetime64[D]")
    if arr.dtype == object and len(arr):
        # Promote homogeneous numeric object arrays to numeric dtype.
        sample = next((v for v in arr if v is not None), None)
        if isinstance(sample, bool):
            if all(v is None or isinstance(v, bool) for v in arr):
                if not any(v is None for v in arr):
                    arr = arr.astype(bool)
        elif isinstance(sample, (int, float, np.integer, np.floating)):
            if all(v is None or isinstance(v, (int, float, np.integer, np.floating)) for v in arr):
                if any(v is None for v in arr):
                    arr = np.array([np.nan if v is None else float(v) for v in arr], dtype=np.float64)
                elif all(isinstance(v, (int, np.integer)) for v in arr):
                    arr = arr.astype(np.int64)
                else:
                    arr = arr.astype(np.float64)
    return arr


def is_string_array(arr: np.ndarray) -> bool:
    return arr.dtype == object


def is_datetime_array(arr: np.ndarray) -> bool:
    return arr.dtype.kind == "M"


def isna_array(arr: np.ndarray) -> np.ndarray:
    """Element-wise missingness mask for any canonical column array."""
    if arr.dtype.kind == "f":
        return np.isnan(arr)
    if arr.dtype.kind == "M":
        return np.isnat(arr)
    if arr.dtype == object:
        try:
            # Vectorized elementwise comparisons (C loops): None compares
            # equal only to None, and NaN is the one value not equal to
            # itself — an order of magnitude faster than a Python loop.
            neq_self = np.asarray(arr != arr, dtype=bool)
            is_none = np.asarray(arr == None, dtype=bool)  # noqa: E711
            return neq_self | is_none
        except (TypeError, ValueError):  # exotic elements (arrays, etc.)
            return np.fromiter(
                (v is None or (isinstance(v, float) and v != v) for v in arr),
                dtype=bool, count=len(arr),
            )
    return np.zeros(len(arr), dtype=bool)


def take_with_nulls(arr: np.ndarray, positions: np.ndarray, missing: np.ndarray) -> np.ndarray:
    """Gather *positions* from *arr*, writing nulls where *missing* is true.

    Used by outer merges: integer columns are promoted to float so that NaN
    can represent the unmatched side, matching Pandas behaviour.
    """
    if not missing.any():
        return arr[positions]
    if len(arr) == 0:
        # Every row is padding: build an all-null column of the right type.
        if arr.dtype == object:
            return np.full(len(positions), None, dtype=object)
        if arr.dtype.kind == "M":
            return np.full(len(positions), np.datetime64("NaT"), dtype="datetime64[D]")
        return np.full(len(positions), np.nan)
    safe = np.where(missing, 0, positions)
    out = arr[safe]
    if out.dtype.kind in ("i", "u", "b"):
        out = out.astype(np.float64)
    if out.dtype.kind == "f":
        out[missing] = np.nan
    elif out.dtype.kind == "M":
        out[missing] = np.datetime64("NaT")
    else:
        out = out.astype(object)
        out[missing] = None
    return out


def combine_dtypes(a: np.ndarray, b: np.ndarray) -> np.dtype:
    """Result dtype when concatenating two column arrays."""
    if a.dtype == b.dtype:
        return a.dtype
    if a.dtype == object or b.dtype == object:
        return np.dtype(object)
    return np.promote_types(a.dtype, b.dtype)
