"""The ``Series.str`` accessor: vectorized string operations.

Only operations used by the paper's workloads (TPC-H LIKE predicates, the
Kaggle notebooks, Birth Analysis) are provided, with Pandas-compatible
semantics: missing values propagate through every operation.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .series import Series

__all__ = ["StringAccessor", "like_to_regex"]


def like_to_regex(pattern: str, escape: str | None = None) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex.

    *escape*, when given, is the single character of an ``ESCAPE 'c'``
    clause: the character following it matches literally (including ``%``,
    ``_``, and the escape character itself).  A trailing bare escape
    character matches itself, like sqlite.
    """
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


class StringAccessor:
    """Implements ``series.str.<method>`` for object-dtype Series."""

    def __init__(self, series: "Series"):
        self._series = series

    # -- internals ----------------------------------------------------------
    def _map_bool(self, func: Callable[[str], bool]) -> "Series":
        data = self._series.values
        out = np.zeros(len(data), dtype=bool)
        for i, v in enumerate(data):
            if v is not None and not (isinstance(v, float) and np.isnan(v)):
                out[i] = func(v)
        return self._wrap(out)

    def _map_obj(self, func: Callable[[str], object]) -> "Series":
        data = self._series.values
        out = np.empty(len(data), dtype=object)
        for i, v in enumerate(data):
            out[i] = None if v is None or (isinstance(v, float) and np.isnan(v)) else func(v)
        return self._wrap(out)

    def _wrap(self, values: np.ndarray) -> "Series":
        from .series import Series

        return Series(values, index=self._series.index, name=self._series.name)

    # -- predicates ----------------------------------------------------------
    def contains(self, pat: str, regex: bool = False) -> "Series":
        if regex:
            compiled = re.compile(pat)
            return self._map_bool(lambda s: compiled.search(s) is not None)
        return self._map_bool(lambda s: pat in s)

    def startswith(self, prefix: str) -> "Series":
        return self._map_bool(lambda s: s.startswith(prefix))

    def endswith(self, suffix: str) -> "Series":
        return self._map_bool(lambda s: s.endswith(suffix))

    def match(self, pat: str) -> "Series":
        compiled = re.compile(pat)
        return self._map_bool(lambda s: compiled.match(s) is not None)

    def like(self, pattern: str) -> "Series":
        """SQL LIKE semantics; convenience used by tests and workloads."""
        compiled = like_to_regex(pattern)
        return self._map_bool(lambda s: compiled.match(s) is not None)

    def isin_substrings(self, substrings: list[str]) -> "Series":
        return self._map_bool(lambda s: any(sub in s for sub in substrings))

    # -- transforms ----------------------------------------------------------
    def upper(self) -> "Series":
        return self._map_obj(str.upper)

    def lower(self) -> "Series":
        return self._map_obj(str.lower)

    def strip(self) -> "Series":
        return self._map_obj(str.strip)

    def len(self) -> "Series":
        data = self._series.values
        out = np.full(len(data), -1, dtype=np.int64)
        for i, v in enumerate(data):
            if v is not None:
                out[i] = len(v)
        return self._wrap(out)

    def slice(self, start: int | None = None, stop: int | None = None) -> "Series":
        return self._map_obj(lambda s: s[start:stop])

    def __getitem__(self, key: slice) -> "Series":
        return self.slice(key.start, key.stop)

    def replace(self, pat: str, repl: str, regex: bool = False) -> "Series":
        if regex:
            compiled = re.compile(pat)
            return self._map_obj(lambda s: compiled.sub(repl, s))
        return self._map_obj(lambda s: s.replace(pat, repl))

    def split(self, sep: str) -> "Series":
        return self._map_obj(lambda s: s.split(sep))

    def get(self, i: int) -> "Series":
        return self._map_obj(lambda s: s[i] if isinstance(s, str) else s[i])

    def cat(self, other: "Series", sep: str = "") -> "Series":
        left = self._series.values
        right = other.values if hasattr(other, "values") else np.asarray(other)
        out = np.empty(len(left), dtype=object)
        for i in range(len(left)):
            a, b = left[i], right[i]
            out[i] = None if a is None or b is None else f"{a}{sep}{b}"
        return self._wrap(out)

    def zfill(self, width: int) -> "Series":
        return self._map_obj(lambda s: s.zfill(width))

    def title(self) -> "Series":
        return self._map_obj(str.title)
