"""GroupBy machinery: factorize group keys, reduce columns per group."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import DataFrameError
from ._common import isna_array
from .index import Index, MultiIndex
from .series import Series

if TYPE_CHECKING:  # pragma: no cover
    from .frame import DataFrame

__all__ = ["GroupBy", "SeriesGroupBy", "factorize_keys", "group_reduce",
           "group_transform", "group_cumsum", "group_rank", "group_shift"]


def factorize_keys(arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray], int]:
    """Map rows of *arrays* to dense group ids (first-appearance order).

    Returns ``(group_ids, unique_key_arrays, n_groups)``.
    """
    n = len(arrays[0]) if arrays else 0
    ids = np.empty(n, dtype=np.int64)
    seen: dict[tuple, int] = {}
    uniques: list[tuple] = []
    for i in range(n):
        key = tuple(a[i] for a in arrays)
        gid = seen.get(key)
        if gid is None:
            gid = len(uniques)
            seen[key] = gid
            uniques.append(key)
        ids[i] = gid
    key_arrays = []
    for level in range(len(arrays)):
        vals = [u[level] for u in uniques]
        arr = np.empty(len(vals), dtype=arrays[level].dtype if arrays[level].dtype != object else object)
        for i, v in enumerate(vals):
            arr[i] = v
        key_arrays.append(arr)
    return ids, key_arrays, len(uniques)


def group_reduce(values: np.ndarray, gids: np.ndarray, ngroups: int, func: str) -> np.ndarray:
    """Reduce *values* per group id with aggregate *func* (null-skipping)."""
    valid = ~isna_array(values)
    if func == "size":
        return np.bincount(gids, minlength=ngroups).astype(np.int64)
    if func == "count":
        return np.bincount(gids[valid], minlength=ngroups).astype(np.int64)

    if values.dtype == object or values.dtype.kind == "M":
        return _group_reduce_python(values, gids, ngroups, func, valid)

    vals = values.astype(np.float64) if func in ("mean", "std", "var") else values
    if func == "sum":
        # bincount-with-weights is an order of magnitude faster than
        # np.add.at and releases the GIL.
        out = np.bincount(gids[valid], weights=vals[valid].astype(np.float64),
                          minlength=ngroups)
        if vals.dtype.kind in ("i", "u", "b") and np.abs(out).max(initial=0) < 2**52:
            return out.astype(np.int64)
        return out
    if func == "mean":
        sums = np.bincount(gids[valid], weights=vals[valid], minlength=ngroups)
        counts = np.bincount(gids[valid], minlength=ngroups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if func in ("min", "max"):
        fill = np.inf if func == "min" else -np.inf
        v = vals[valid].astype(np.float64)
        g = gids[valid]
        out = np.full(ngroups, fill, dtype=np.float64)
        if len(g):
            order = np.argsort(g, kind="stable")
            sorted_g = g[order]
            boundaries = np.empty(len(sorted_g), dtype=bool)
            boundaries[0] = True
            boundaries[1:] = sorted_g[1:] != sorted_g[:-1]
            starts = np.nonzero(boundaries)[0]
            ufunc = np.minimum if func == "min" else np.maximum
            reduced = ufunc.reduceat(v[order], starts)
            out[sorted_g[starts]] = reduced
        if values.dtype.kind in ("i", "u") and np.isfinite(out).all():
            return out.astype(values.dtype)
        out[out == fill] = np.nan  # empty groups aggregate to NULL
        return out
    if func in ("std", "var"):
        sums = np.bincount(gids[valid], weights=vals[valid], minlength=ngroups)
        sq = np.bincount(gids[valid], weights=vals[valid] ** 2, minlength=ngroups)
        counts = np.bincount(gids[valid], minlength=ngroups).astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            var = (sq - sums**2 / counts) / (counts - 1)
        var = np.where(var < 0, 0.0, var)
        return np.sqrt(var) if func == "std" else var
    if func == "nunique":
        return _group_reduce_python(values, gids, ngroups, "nunique", valid)
    if func == "first":
        return _group_reduce_python(values, gids, ngroups, "first", valid)
    raise DataFrameError(f"unsupported aggregate: {func!r}")


def _group_reduce_python(values: np.ndarray, gids: np.ndarray, ngroups: int, func: str, valid: np.ndarray) -> np.ndarray:
    buckets: list[list] = [[] for _ in range(ngroups)]
    for i in range(len(values)):
        if valid[i]:
            buckets[gids[i]].append(values[i])
    out = np.empty(ngroups, dtype=object)
    for g, bucket in enumerate(buckets):
        if not bucket:
            out[g] = None
        elif func == "min":
            out[g] = min(bucket)
        elif func == "max":
            out[g] = max(bucket)
        elif func == "sum":
            out[g] = sum(bucket)
        elif func == "mean":
            out[g] = sum(bucket) / len(bucket)
        elif func == "nunique":
            out[g] = len(set(bucket))
        elif func == "first":
            out[g] = bucket[0]
        else:
            raise DataFrameError(f"unsupported aggregate {func!r} for object column")
    if func == "nunique":
        return np.array([0 if v is None else v for v in out], dtype=np.int64)
    if values.dtype.kind == "M" and all(v is not None for v in out):
        return np.array(out.tolist(), dtype="datetime64[D]")
    return out


def group_transform(values: np.ndarray, gids: np.ndarray, ngroups: int,
                    func: str) -> np.ndarray:
    """Per-group aggregate broadcast back to member rows (original order)."""
    if func == "size":
        return np.bincount(gids, minlength=ngroups).astype(np.int64)[gids]
    reduced = group_reduce(values, gids, ngroups, func)
    return reduced[gids]


def _group_layout(gids: np.ndarray):
    from ..sqlengine.window import build_layout

    return build_layout(len(gids), [gids], [], [])


def group_cumsum(values: np.ndarray, gids: np.ndarray) -> np.ndarray:
    """Running sum within each group, rows kept in original order."""
    from ..sqlengine.window import framed_aggregate

    frame = ("rows", "unbounded_preceding", 0, "current", 0)
    out = framed_aggregate(_group_layout(gids), values, "SUM", frame)
    if values.dtype.kind in ("i", "u", "b") and not np.isnan(out).any():
        return out.astype(np.int64)
    return out


def group_rank(values: np.ndarray, gids: np.ndarray, method: str = "min",
               ascending: bool = True) -> np.ndarray:
    """Within-group rank (1-based), rows kept in original order.

    NaN/None values receive NaN ranks and do not displace valid rows,
    matching pandas and :meth:`Series.rank`.
    """
    from ..sqlengine.window import _rank, _row_number, build_layout

    if method not in ("first", "min", "dense"):
        raise DataFrameError(f"unsupported rank method {method!r}")
    na = isna_array(values)
    if na.any():
        valid = group_rank(values[~na], gids[~na], method, ascending)
        out = np.full(len(values), np.nan)
        out[~na] = valid
        return out
    layout = build_layout(len(gids), [gids], [values], [ascending])
    if method == "first":
        return _row_number(layout, 1)
    return _rank(layout, 1, dense=(method == "dense"))


def group_shift(values: np.ndarray, gids: np.ndarray, periods: int = 1,
                fill_value=None) -> np.ndarray:
    """Within-group shift (positive = toward later rows), original order."""
    from ..sqlengine.window import shift

    return shift(_group_layout(gids), values, int(periods), fill_value)


_AGG_ALIASES = {"nunique": "nunique", "size": "size", "count": "count", "std": "std", "var": "var",
                "sum": "sum", "mean": "mean", "min": "min", "max": "max", "first": "first", "avg": "mean"}


def _normalize_func(func) -> str:
    if isinstance(func, str):
        if func not in _AGG_ALIASES:
            raise DataFrameError(f"unknown aggregate function {func!r}")
        return _AGG_ALIASES[func]
    if callable(func):
        name = getattr(func, "__name__", "")
        if name in ("sum", "amin", "min", "amax", "max", "mean", "len"):
            return {"amin": "min", "amax": "max", "len": "size"}.get(name, name)
    raise DataFrameError(f"unsupported aggregate function {func!r}")


class GroupBy:
    """Result of ``DataFrame.groupby(keys)``."""

    def __init__(self, frame: "DataFrame", keys: list[str], as_index: bool = True, sort: bool = True):
        for k in keys:
            if k not in frame.columns:
                raise DataFrameError(f"groupby key {k!r} not found")
        self._frame = frame
        self._keys = keys
        self._as_index = as_index
        self._sort = sort
        arrays = [frame[k].values for k in keys]
        self._gids, self._key_arrays, self._ngroups = factorize_keys(arrays)

    # -- selection -----------------------------------------------------------
    def __getitem__(self, item):
        if isinstance(item, str):
            return SeriesGroupBy(self, item)
        return GroupBy._with_columns(self, list(item))

    @staticmethod
    def _with_columns(gb: "GroupBy", cols: list[str]) -> "GroupBy":
        sub = gb._frame[cols + [k for k in gb._keys if k not in cols]]
        out = GroupBy.__new__(GroupBy)
        out._frame = sub
        out._keys = gb._keys
        out._as_index = gb._as_index
        out._sort = gb._sort
        out._gids = gb._gids
        out._key_arrays = gb._key_arrays
        out._ngroups = gb._ngroups
        return out

    # -- core aggregation ------------------------------------------------------
    def _result_order(self) -> np.ndarray:
        if not self._sort:
            return np.arange(self._ngroups)
        arrays = self._key_arrays
        if any(a.dtype == object for a in arrays):
            def sort_key(g):
                return tuple((a[g] is None, a[g]) for a in arrays)

            return np.array(sorted(range(self._ngroups), key=sort_key), dtype=np.int64)
        return np.lexsort(tuple(reversed(arrays)))

    def _build_frame(self, agg_cols: dict[str, np.ndarray]) -> "DataFrame":
        from .frame import DataFrame

        order = self._result_order()
        keys = [a[order] for a in self._key_arrays]
        data = {name: col[order] for name, col in agg_cols.items()}
        if self._as_index:
            index = Index(keys[0], name=self._keys[0]) if len(keys) == 1 else MultiIndex(keys, self._keys)
            return DataFrame(data, index=index)
        out: dict[str, np.ndarray] = {k: arr for k, arr in zip(self._keys, keys)}
        out.update(data)
        return DataFrame(out)

    def _value_columns(self) -> list[str]:
        return [c for c in self._frame.columns if c not in self._keys]

    def _agg_single(self, col: str, func: str) -> np.ndarray:
        return group_reduce(self._frame[col].values, self._gids, self._ngroups, func)

    def aggregate(self, spec=None, **named):
        cols: dict[str, np.ndarray] = {}
        if named:
            for out_name, how in named.items():
                if isinstance(how, tuple):
                    src, func = how
                else:
                    raise DataFrameError("named aggregation expects (column, func) tuples")
                cols[out_name] = self._agg_single(src, _normalize_func(func))
            return self._build_frame(cols)
        if isinstance(spec, dict):
            for src, how in spec.items():
                if isinstance(how, (list, tuple)):
                    for f in how:
                        func = _normalize_func(f)
                        cols[f"{src}_{func}" if len(how) > 1 else src] = self._agg_single(src, func)
                else:
                    cols[src] = self._agg_single(src, _normalize_func(how))
            return self._build_frame(cols)
        if isinstance(spec, str) or callable(spec):
            func = _normalize_func(spec)
            for src in self._value_columns():
                cols[src] = self._agg_single(src, func)
            return self._build_frame(cols)
        raise DataFrameError(f"unsupported aggregation spec: {spec!r}")

    agg = aggregate

    # -- shorthand reductions ----------------------------------------------------
    def _all_columns(self, func: str) -> "DataFrame":
        cols = {c: self._agg_single(c, func) for c in self._value_columns()}
        return self._build_frame(cols)

    def sum(self):
        return self._all_columns("sum")

    def mean(self):
        return self._all_columns("mean")

    def min(self):
        return self._all_columns("min")

    def max(self):
        return self._all_columns("max")

    def count(self):
        return self._all_columns("count")

    def nunique(self):
        return self._all_columns("nunique")

    def first(self):
        return self._all_columns("first")

    def size(self) -> Series:
        order = self._result_order()
        counts = np.bincount(self._gids, minlength=self._ngroups)[order]
        keys = [a[order] for a in self._key_arrays]
        index = Index(keys[0], name=self._keys[0]) if len(keys) == 1 else MultiIndex(keys, self._keys)
        return Series(counts.astype(np.int64), index=index, name="size")

    @property
    def ngroups(self) -> int:
        return self._ngroups

    # -- window-style (row-preserving) operations --------------------------------
    def transform(self, func) -> "DataFrame":
        """Broadcast a per-group aggregate back to every member row."""
        from .frame import DataFrame

        name = _normalize_func(func)
        out = {c: group_transform(self._frame[c].values, self._gids,
                                  self._ngroups, name)
               for c in self._value_columns()}
        return DataFrame(out, index=self._frame.index)

    def cumsum(self) -> "DataFrame":
        """Per-group running sum in original row order."""
        from .frame import DataFrame

        out = {c: group_cumsum(self._frame[c].values, self._gids)
               for c in self._value_columns()}
        return DataFrame(out, index=self._frame.index)

    def rank(self, method: str = "min", ascending: bool = True) -> "DataFrame":
        """Per-group rank of each value column, in original row order."""
        from .frame import DataFrame

        out = {c: group_rank(self._frame[c].values, self._gids, method, ascending)
               for c in self._value_columns()}
        return DataFrame(out, index=self._frame.index)

    def shift(self, periods: int = 1, fill_value=None) -> "DataFrame":
        """Per-group shift of each value column, in original row order."""
        from .frame import DataFrame

        out = {c: group_shift(self._frame[c].values, self._gids, periods, fill_value)
               for c in self._value_columns()}
        return DataFrame(out, index=self._frame.index)

    def cumcount(self) -> Series:
        """0-based position of each row within its group (original order)."""
        from ..sqlengine.window import build_layout, _row_number

        layout = build_layout(len(self._gids), [self._gids], [], [])
        return Series(_row_number(layout, 1) - 1, index=self._frame.index)


class SeriesGroupBy:
    """Result of ``df.groupby(keys)[column]``."""

    def __init__(self, parent: GroupBy, column: str):
        if column not in parent._frame.columns:
            raise DataFrameError(f"column {column!r} not found")
        self._parent = parent
        self._column = column

    def _reduce(self, func: str) -> Series:
        parent = self._parent
        vals = group_reduce(parent._frame[self._column].values, parent._gids, parent._ngroups, func)
        order = parent._result_order()
        keys = [a[order] for a in parent._key_arrays]
        index = (
            Index(keys[0], name=parent._keys[0])
            if len(keys) == 1
            else MultiIndex(keys, parent._keys)
        )
        result = Series(vals[order], index=index, name=self._column)
        if parent._as_index:
            return result
        return result.reset_index()

    def sum(self):
        return self._reduce("sum")

    def mean(self):
        return self._reduce("mean")

    def min(self):
        return self._reduce("min")

    def max(self):
        return self._reduce("max")

    def count(self):
        return self._reduce("count")

    def nunique(self):
        return self._reduce("nunique")

    def size(self):
        return self._reduce("size")

    def first(self):
        return self._reduce("first")

    def std(self):
        return self._reduce("std")

    def var(self):
        return self._reduce("var")

    def aggregate(self, func):
        if isinstance(func, (list, tuple)):
            from .frame import DataFrame

            parts = {_normalize_func(f): self._reduce(_normalize_func(f)) for f in func}
            first = next(iter(parts.values()))
            data = {name: s.values for name, s in parts.items()}
            return DataFrame(data, index=first.index)
        return self._reduce(_normalize_func(func))

    agg = aggregate

    # -- window-style (row-preserving) operations --------------------------------
    def _column_values(self) -> np.ndarray:
        return self._parent._frame[self._column].values

    def transform(self, func) -> Series:
        """Per-group aggregate broadcast back to every member row."""
        parent = self._parent
        out = group_transform(self._column_values(), parent._gids,
                              parent._ngroups, _normalize_func(func))
        return Series(out, index=parent._frame.index, name=self._column)

    def cumsum(self) -> Series:
        """Per-group running sum in original row order."""
        out = group_cumsum(self._column_values(), self._parent._gids)
        return Series(out, index=self._parent._frame.index, name=self._column)

    def rank(self, method: str = "min", ascending: bool = True) -> Series:
        """Per-group rank (1-based) in original row order."""
        out = group_rank(self._column_values(), self._parent._gids,
                         method, ascending)
        return Series(out, index=self._parent._frame.index, name=self._column)

    def shift(self, periods: int = 1, fill_value=None) -> Series:
        """Per-group shift in original row order."""
        out = group_shift(self._column_values(), self._parent._gids,
                          periods, fill_value)
        return Series(out, index=self._parent._frame.index, name=self._column)

    def cumcount(self) -> Series:
        """0-based position of each row within its group."""
        return self._parent.cumcount()
