"""The Series class: a named, indexed 1-D column.

This is the Pandas-substitute used both as the "Python" baseline competitor
in the paper's benchmarks and as the surface API that ``@pytond`` functions
are written against.  Semantics follow Pandas for the operation subset the
paper's workloads exercise.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..errors import DataFrameError
from ._common import coerce_array, isna_array
from .datetimes import DatetimeAccessor
from .index import Index, RangeIndex, ensure_index
from .strings import StringAccessor

__all__ = ["Series"]

_BINARY_NUMPY_OPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "truediv": np.true_divide,
    "floordiv": np.floor_divide,
    "mod": np.mod,
    "pow": np.power,
}

_COMPARE_OPS = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


class Series:
    """A 1-D labelled array of homogeneous values."""

    def __init__(self, data, index: Index | Iterable | None = None, name: str | None = None):
        self._data = coerce_array(data)
        if self._data.ndim != 1:
            raise DataFrameError("Series data must be one-dimensional")
        self._index = ensure_index(index, len(self._data))
        if len(self._index) != len(self._data):
            raise DataFrameError("index length does not match data length")
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self._data

    @property
    def index(self) -> Index:
        return self._index

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def shape(self) -> tuple[int]:
        return (len(self._data),)

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def empty(self) -> bool:
        return len(self._data) == 0

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __array__(self, dtype=None):
        arr = self._data
        return arr.astype(dtype) if dtype is not None else arr

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self._data[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Series([{head}{suffix}], name={self.name!r}, n={len(self)})"

    def copy(self) -> "Series":
        return Series(self._data.copy(), index=self._index, name=self.name)

    def rename(self, name: str) -> "Series":
        return Series(self._data, index=self._index, name=name)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return Series(self._data[key], index=self._index[key], name=self.name)
        if isinstance(key, (list, np.ndarray)):
            positions = np.asarray(key)
            return Series(self._data[positions], index=self._index.take(positions), name=self.name)
        if isinstance(key, slice):
            return Series(self._data[key], index=Index(self._index.values[key]), name=self.name)
        if isinstance(key, (int, np.integer, str)):
            # Label-based lookup on the index, falling back to positional for
            # the default range index with integer keys.
            if isinstance(self._index, RangeIndex) and not isinstance(key, str):
                return self._data[key]
            matches = np.nonzero(self._index.values == key)[0]
            if len(matches) == 0:
                raise KeyError(key)
            return self._data[matches[0]]
        raise DataFrameError(f"unsupported Series key: {key!r}")

    @property
    def iloc(self) -> "_SeriesILoc":
        return _SeriesILoc(self)

    def head(self, n: int = 5) -> "Series":
        return Series(self._data[:n], index=Index(self._index.values[:n], name=self._index.name), name=self.name)

    def take(self, positions: np.ndarray) -> "Series":
        positions = np.asarray(positions)
        return Series(self._data[positions], index=self._index.take(positions), name=self.name)

    # ------------------------------------------------------------------
    # Arithmetic / comparison operators
    # ------------------------------------------------------------------
    def _coerce_other(self, other):
        if isinstance(other, Series):
            if len(other) != len(self):
                raise DataFrameError("Series length mismatch in binary operation")
            return other.values
        return other

    def _binary(self, other, ufunc) -> "Series":
        other = self._coerce_other(other)
        left = self._data
        if left.dtype == object or (isinstance(other, np.ndarray) and other.dtype == object):
            out = np.empty(len(left), dtype=object)
            rvals = other if isinstance(other, np.ndarray) else np.full(len(left), other, dtype=object)
            for i in range(len(left)):
                a, b = left[i], rvals[i]
                out[i] = None if a is None or b is None else ufunc(a, b)
            return Series(out, index=self._index, name=self.name)
        return Series(ufunc(left, other), index=self._index, name=self.name)

    def __add__(self, other):
        if self._data.dtype == object:
            return self._binary(other, lambda a, b: a + b)
        return self._binary(other, np.add)

    def __radd__(self, other):
        if self._data.dtype == object:
            other_arr = self._coerce_other(other)
            out = np.empty(len(self._data), dtype=object)
            rvals = other_arr if isinstance(other_arr, np.ndarray) else np.full(len(self._data), other_arr, dtype=object)
            for i in range(len(self._data)):
                a, b = rvals[i], self._data[i]
                out[i] = None if a is None or b is None else a + b
            return Series(out, index=self._index, name=self.name)
        return self._binary(other, np.add)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        other = self._coerce_other(other)
        return Series(np.subtract(other, self._data), index=self._index, name=self.name)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary(other, np.true_divide)

    def __rtruediv__(self, other):
        other = self._coerce_other(other)
        return Series(np.true_divide(other, self._data), index=self._index, name=self.name)

    def __floordiv__(self, other):
        return self._binary(other, np.floor_divide)

    def __mod__(self, other):
        return self._binary(other, np.mod)

    def __pow__(self, other):
        return self._binary(other, np.power)

    def __neg__(self):
        return Series(-self._data, index=self._index, name=self.name)

    def _compare(self, other, ufunc) -> "Series":
        other = self._coerce_other(other)
        left = self._data
        if left.dtype.kind == "M" and isinstance(other, str):
            other = np.datetime64(other, "D")
        if left.dtype == object or (isinstance(other, np.ndarray) and other.dtype == object):
            rvals = other if isinstance(other, np.ndarray) else None
            out = np.zeros(len(left), dtype=bool)
            py_op = {
                np.equal: lambda a, b: a == b,
                np.not_equal: lambda a, b: a != b,
                np.less: lambda a, b: a < b,
                np.less_equal: lambda a, b: a <= b,
                np.greater: lambda a, b: a > b,
                np.greater_equal: lambda a, b: a >= b,
            }[ufunc]
            for i in range(len(left)):
                a = left[i]
                b = rvals[i] if rvals is not None else other
                if a is None or b is None:
                    out[i] = False
                else:
                    out[i] = py_op(a, b)
            return Series(out, index=self._index, name=self.name)
        result = ufunc(left, other)
        if left.dtype.kind == "f":
            # NaN never compares true, matching both Pandas and SQL NULL.
            nan_mask = np.isnan(left)
            if nan_mask.any():
                result = result & ~nan_mask
        return Series(result, index=self._index, name=self.name)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other, np.equal)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other, np.not_equal)

    def __lt__(self, other):
        return self._compare(other, np.less)

    def __le__(self, other):
        return self._compare(other, np.less_equal)

    def __gt__(self, other):
        return self._compare(other, np.greater)

    def __ge__(self, other):
        return self._compare(other, np.greater_equal)

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._binary(other, np.logical_and)

    def __or__(self, other):
        return self._binary(other, np.logical_or)

    def __invert__(self):
        return Series(~self._data.astype(bool), index=self._index, name=self.name)

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def isna(self) -> "Series":
        return Series(isna_array(self._data), index=self._index, name=self.name)

    isnull = isna

    def notna(self) -> "Series":
        return Series(~isna_array(self._data), index=self._index, name=self.name)

    notnull = notna

    def fillna(self, value) -> "Series":
        mask = isna_array(self._data)
        if not mask.any():
            return self.copy()
        out = self._data.copy()
        if out.dtype == object:
            out[mask] = value
        elif out.dtype.kind == "f":
            out[mask] = float(value)
        elif out.dtype.kind == "M":
            out[mask] = np.datetime64(value, "D")
        return Series(out, index=self._index, name=self.name)

    def dropna(self) -> "Series":
        mask = ~isna_array(self._data)
        return Series(self._data[mask], index=self._index[mask], name=self.name)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _valid(self) -> np.ndarray:
        mask = isna_array(self._data)
        return self._data[~mask] if mask.any() else self._data

    def sum(self, *args, **kwargs):
        # Extra arguments tolerated for numpy protocol compatibility
        # (np.sum(series) dispatches here with axis/out/...).
        vals = self._valid()
        if len(vals) == 0:
            return 0
        return vals.sum()

    def mean(self):
        vals = self._valid()
        return float(np.mean(vals)) if len(vals) else float("nan")

    def min(self):
        vals = self._valid()
        if len(vals) == 0:
            return None
        if vals.dtype == object:
            return min(vals)
        return vals.min()

    def max(self):
        vals = self._valid()
        if len(vals) == 0:
            return None
        if vals.dtype == object:
            return max(vals)
        return vals.max()

    def count(self) -> int:
        return int((~isna_array(self._data)).sum())

    def nunique(self) -> int:
        vals = self._valid()
        if vals.dtype == object:
            return len(set(vals))
        return len(np.unique(vals))

    def std(self, ddof: int = 1):
        vals = self._valid()
        return float(np.std(vals, ddof=ddof)) if len(vals) > ddof else float("nan")

    def var(self, ddof: int = 1):
        vals = self._valid()
        return float(np.var(vals, ddof=ddof)) if len(vals) > ddof else float("nan")

    def median(self):
        vals = self._valid()
        return float(np.median(vals)) if len(vals) else float("nan")

    def prod(self):
        vals = self._valid()
        return vals.prod() if len(vals) else 1

    def any(self) -> bool:
        return bool(np.any(self._data.astype(bool)))

    def all(self) -> bool:
        return bool(np.all(self._data.astype(bool)))

    def idxmax(self):
        return self._index.values[int(np.argmax(self._data))]

    def idxmin(self):
        return self._index.values[int(np.argmin(self._data))]

    def aggregate(self, func):
        if isinstance(func, str):
            return getattr(self, func)()
        return func(self)

    agg = aggregate

    # ------------------------------------------------------------------
    # Element-wise methods
    # ------------------------------------------------------------------
    def abs(self) -> "Series":
        return Series(np.abs(self._data), index=self._index, name=self.name)

    def round(self, decimals: int = 0) -> "Series":
        return Series(np.round(self._data.astype(np.float64), decimals), index=self._index, name=self.name)

    def astype(self, dtype) -> "Series":
        if dtype in (str, "str"):
            out = np.array([None if v is None else str(v) for v in self._data], dtype=object)
            return Series(out, index=self._index, name=self.name)
        return Series(self._data.astype(dtype), index=self._index, name=self.name)

    def between(self, low, high, inclusive: str = "both") -> "Series":
        if self._data.dtype.kind == "M":
            low = np.datetime64(low, "D") if isinstance(low, str) else low
            high = np.datetime64(high, "D") if isinstance(high, str) else high
        if inclusive == "both":
            return Series((self._data >= low) & (self._data <= high), index=self._index, name=self.name)
        if inclusive == "left":
            return Series((self._data >= low) & (self._data < high), index=self._index, name=self.name)
        if inclusive == "right":
            return Series((self._data > low) & (self._data <= high), index=self._index, name=self.name)
        return Series((self._data > low) & (self._data < high), index=self._index, name=self.name)

    def isin(self, values) -> "Series":
        """Membership of each element in *values* (a list, array, Series, or
        single-column frame).  Rides the SQL engine's vectorized membership
        kernel; unlike SQL's ``IN``, pandas semantics make a missing
        element match a missing value in *values*.
        """
        from ..sqlengine.joins import semi_join_flags
        from ._common import coerce_array, isna_array

        if isinstance(values, Series):
            values = values.values
        if hasattr(values, "values") and not isinstance(values, np.ndarray):
            values = values.values
        if not isinstance(values, np.ndarray):
            values = coerce_array(np.array(list(values), dtype=object))
        flags = semi_join_flags([self._data], [values])
        null_values = isna_array(values)
        if null_values.any():
            flags = flags | isna_array(self._data)
        return Series(flags, index=self._index, name=self.name)

    def map(self, func: Callable | dict) -> "Series":
        if isinstance(func, dict):
            getter = func.get
            out = np.array([getter(v, None) for v in self._data], dtype=object)
        else:
            out = np.array([func(v) for v in self._data], dtype=object)
        return Series(coerce_array(out), index=self._index, name=self.name)

    def apply(self, func: Callable) -> "Series":
        return self.map(func)

    def clip(self, lower=None, upper=None) -> "Series":
        return Series(np.clip(self._data, lower, upper), index=self._index, name=self.name)

    def cumsum(self) -> "Series":
        return Series(np.cumsum(self._data), index=self._index, name=self.name)

    def cummax(self) -> "Series":
        return Series(np.maximum.accumulate(self._data), index=self._index, name=self.name)

    def cummin(self) -> "Series":
        return Series(np.minimum.accumulate(self._data), index=self._index, name=self.name)

    def shift(self, periods: int = 1, fill_value=None) -> "Series":
        """Shift values by *periods* positions (positive = toward the end),
        filling vacated slots with *fill_value* (NaN/None by default)."""
        from ..sqlengine.window import _null_fillable

        n = len(self._data)
        k = int(periods)
        if k == 0:
            return Series(self._data.copy(), index=self._index, name=self.name)
        out, fill = _null_fillable(self._data, fill_value)
        result = np.full(n, fill, dtype=out.dtype)
        if abs(k) < n:
            if k > 0:
                result[k:] = out[: n - k]
            else:
                result[:k] = out[-k:]
        return Series(result, index=self._index, name=self.name)

    def diff(self, periods: int = 1) -> "Series":
        """First discrete difference: ``s - s.shift(periods)``."""
        return self - self.shift(periods)

    def rank(self, method: str = "min", ascending: bool = True) -> "Series":
        """Rank values (1-based).  ``method`` is ``min`` (SQL RANK),
        ``dense`` (DENSE_RANK), or ``first`` (ROW_NUMBER order of appearance).
        NaN/None values receive NaN ranks, matching pandas."""
        from ..sqlengine.window import build_layout, _rank, _row_number

        if method not in ("first", "min", "dense"):
            raise DataFrameError(f"unsupported rank method {method!r}")
        n = len(self._data)
        na = isna_array(self._data)
        if na.any():
            # Nulls sort last in the layout and would displace ranks; rank
            # only the valid subset and leave NaN for the nulls.
            valid = Series(self._data[~na]).rank(method=method, ascending=ascending)
            ranks = np.full(n, np.nan)
            ranks[~na] = valid.values
            return Series(ranks, index=self._index, name=self.name)
        layout = build_layout(n, [], [self._data], [ascending])
        if method == "first":
            ranks = _row_number(layout, 1).astype(np.float64)
        else:
            ranks = _rank(layout, 1, dense=(method == "dense")).astype(np.float64)
        return Series(ranks, index=self._index, name=self.name)

    def rolling(self, window: int, min_periods: int | None = None) -> "_Rolling":
        """A minimal rolling-window view: ``s.rolling(n).sum()/mean()/min()/max()``."""
        return _Rolling(self, int(window), min_periods)

    # ------------------------------------------------------------------
    # Order / distinct
    # ------------------------------------------------------------------
    def unique(self) -> np.ndarray:
        if self._data.dtype == object:
            seen: dict = {}
            for v in self._data:
                seen.setdefault(v, None)
            return np.array(list(seen.keys()), dtype=object)
        _, first = np.unique(self._data, return_index=True)
        return self._data[np.sort(first)]

    def value_counts(self, ascending: bool = False) -> "Series":
        if self._data.dtype == object:
            counts: dict = {}
            for v in self._data:
                if v is None:
                    continue
                counts[v] = counts.get(v, 0) + 1
            keys = np.array(list(counts.keys()), dtype=object)
            vals = np.array(list(counts.values()), dtype=np.int64)
        else:
            keys, vals = np.unique(self._valid(), return_counts=True)
        order = np.argsort(vals, kind="stable")
        if not ascending:
            order = order[::-1]
        return Series(vals[order], index=Index(keys[order], name=self.name), name="count")

    def sort_values(self, ascending: bool = True) -> "Series":
        if self._data.dtype == object:
            order = np.array(sorted(range(len(self._data)), key=lambda i: (self._data[i] is None, self._data[i])), dtype=np.int64)
        else:
            order = np.argsort(self._data, kind="stable")
        if not ascending:
            order = order[::-1]
        return self.take(order)

    def nlargest(self, n: int) -> "Series":
        from ..sqlengine.topk import topk_positions

        return self.take(topk_positions([self._data], [False], n))

    def nsmallest(self, n: int) -> "Series":
        from ..sqlengine.topk import topk_positions

        return self.take(topk_positions([self._data], [True], n))

    def reset_index(self, drop: bool = False):
        if drop:
            return Series(self._data, name=self.name)
        from .frame import DataFrame

        cols = self._index.to_frame_columns()
        cols[self.name if self.name is not None else "values"] = self._data
        return DataFrame(cols)

    def drop_duplicates(self) -> "Series":
        vals = self.unique()
        return Series(vals, name=self.name)

    # ------------------------------------------------------------------
    # Conversion & accessors
    # ------------------------------------------------------------------
    def to_numpy(self, dtype=None) -> np.ndarray:
        arr = self._data
        return arr.astype(dtype) if dtype is not None else arr.copy()

    def tolist(self) -> list:
        return self._data.tolist()

    to_list = tolist

    def to_frame(self, name: str | None = None):
        from .frame import DataFrame

        return DataFrame({name or self.name or "values": self._data}, index=self._index)

    @property
    def str(self) -> StringAccessor:
        return StringAccessor(self)

    @property
    def dt(self) -> DatetimeAccessor:
        return DatetimeAccessor(self)


class _Rolling:
    """Fixed-size trailing window over a Series (``rolling(n)``).

    Windows cover the current row and the ``window - 1`` preceding rows;
    positions with fewer than ``min_periods`` (default: ``window``) valid
    observations yield NaN, matching pandas.
    """

    def __init__(self, series: Series, window: int, min_periods: int | None = None):
        if window <= 0:
            raise DataFrameError("rolling window must be positive")
        self._series = series
        self._window = window
        self._min_periods = window if min_periods is None else int(min_periods)

    def _frame(self) -> tuple:
        return ("rows", "preceding", self._window - 1, "current", 0)

    def _apply(self, func: str) -> Series:
        from ..sqlengine.window import build_layout, framed_aggregate

        s = self._series
        n = len(s)
        values = s.values
        kind = values.dtype.kind
        if kind in ("i", "u", "b"):
            values = values.astype(np.float64)
        elif kind == "M":
            if func not in ("MIN", "MAX"):
                raise DataFrameError(
                    f"rolling {func.lower()}() is not supported on "
                    f"{values.dtype} columns (datetimes support only min/max)"
                )
        elif kind != "f":
            raise DataFrameError(
                f"rolling {func.lower()}() is not supported on "
                f"{values.dtype} columns"
            )
        layout = build_layout(n, [], [], [])
        out = framed_aggregate(layout, values, func, self._frame(), threads=1)
        counts = framed_aggregate(layout, values, "COUNT", self._frame(), threads=1)
        below = counts < self._min_periods
        if out.dtype.kind == "M":
            out = out.copy()
            out[below] = np.datetime64("NaT")
        else:
            out = out.astype(np.float64)
            out[below] = np.nan
        return Series(out, index=s.index, name=s.name)

    def sum(self) -> Series:
        return self._apply("SUM")

    def mean(self) -> Series:
        return self._apply("AVG")

    def min(self) -> Series:
        return self._apply("MIN")

    def max(self) -> Series:
        return self._apply("MAX")

    def count(self) -> Series:
        from ..sqlengine.window import build_layout, framed_aggregate

        s = self._series
        layout = build_layout(len(s), [], [], [])
        counts = framed_aggregate(layout, s.values, "COUNT", self._frame(),
                                  threads=1).astype(np.float64)
        # Pandas (2.x) applies min_periods to count like any other aggregate.
        counts[counts < self._min_periods] = np.nan
        return Series(counts, index=s.index, name=s.name)


class _SeriesILoc:
    """Positional selection for Series (``s.iloc[i]`` / ``s.iloc[a:b]``)."""

    def __init__(self, series: Series):
        self._series = series

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self._series.values[key]
        if isinstance(key, slice):
            return Series(
                self._series.values[key],
                index=Index(self._series.index.values[key]),
                name=self._series.name,
            )
        positions = np.asarray(key)
        return self._series.take(positions)
