"""The ``Series.dt`` accessor: vectorized calendar field extraction."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .series import Series

__all__ = ["DatetimeAccessor", "to_datetime"]


def to_datetime(values) -> np.ndarray:
    """Parse ISO date strings / date objects into a datetime64[D] array."""
    arr = np.asarray(values)
    if arr.dtype.kind == "M":
        return arr.astype("datetime64[D]")
    return np.array([np.datetime64(v, "D") if v is not None else np.datetime64("NaT") for v in arr], dtype="datetime64[D]")


class DatetimeAccessor:
    """Implements ``series.dt.<field>`` for datetime64 Series."""

    def __init__(self, series: "Series"):
        self._series = series

    def _wrap(self, values: np.ndarray) -> "Series":
        from .series import Series

        return Series(values, index=self._series.index, name=self._series.name)

    def _days(self) -> np.ndarray:
        return self._series.values.astype("datetime64[D]")

    @property
    def year(self) -> "Series":
        years = self._days().astype("datetime64[Y]").astype(np.int64) + 1970
        return self._wrap(years)

    @property
    def month(self) -> "Series":
        months = self._days().astype("datetime64[M]").astype(np.int64)
        return self._wrap(months % 12 + 1)

    @property
    def day(self) -> "Series":
        days = self._days()
        month_start = days.astype("datetime64[M]").astype("datetime64[D]")
        return self._wrap((days - month_start).astype(np.int64) + 1)

    @property
    def dayofweek(self) -> "Series":
        # 1970-01-01 was a Thursday (weekday 3).
        epoch_days = self._days().astype(np.int64)
        return self._wrap((epoch_days + 3) % 7)

    @property
    def quarter(self) -> "Series":
        months = self._days().astype("datetime64[M]").astype(np.int64) % 12
        return self._wrap(months // 3 + 1)

    def strftime(self, fmt: str) -> "Series":
        out = np.empty(len(self._series), dtype=object)
        for i, v in enumerate(self._days()):
            out[i] = None if np.isnat(v) else v.astype("datetime64[D]").item().strftime(fmt)
        return self._wrap(out)
