"""Index objects for the Pandas-substitute DataFrame library.

Only the index behaviour exercised by the paper's workloads is implemented:
a default integer range index, a value index produced by ``groupby`` /
``set_index``, and a multi-level index for multi-key group-bys.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Index", "RangeIndex", "MultiIndex", "ensure_index"]


class Index:
    """An immutable 1-D labelling of DataFrame/Series rows."""

    def __init__(self, values: Iterable, name: str | None = None):
        self._values = np.asarray(values)
        self.name = name

    # -- basic protocol ----------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def nlevels(self) -> int:
        return 1

    @property
    def names(self) -> list[str | None]:
        return [self.name]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            return self._values[item]
        return Index(self._values[item], name=self.name)

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, Index):
            return NotImplemented
        return (
            self.nlevels == other.nlevels
            and len(self) == len(other)
            and bool(np.all(self._values == other._values))
        )

    def __hash__(self):  # Index is conceptually immutable
        return id(self)

    def __repr__(self) -> str:
        return f"Index({self._values.tolist()!r}, name={self.name!r})"

    # -- helpers used by DataFrame/Series ----------------------------------
    def take(self, positions: np.ndarray) -> "Index":
        return Index(self._values[positions], name=self.name)

    def to_frame_columns(self) -> dict[str, np.ndarray]:
        """Columns created when this index is reset into a DataFrame."""
        return {self.name if self.name is not None else "index": self._values}

    def argsort(self, ascending: bool = True) -> np.ndarray:
        order = np.argsort(self._values, kind="stable")
        return order if ascending else order[::-1]


class RangeIndex(Index):
    """The default 0..n-1 positional index."""

    def __init__(self, n: int):
        super().__init__(np.arange(n, dtype=np.int64), name=None)
        self._n = n

    def take(self, positions: np.ndarray) -> Index:
        return Index(self._values[positions], name=None)

    def __repr__(self) -> str:
        return f"RangeIndex({self._n})"

    def to_frame_columns(self) -> dict[str, np.ndarray]:
        return {"index": self._values}


class MultiIndex(Index):
    """A multi-level index produced by multi-key group-bys."""

    def __init__(self, arrays: Sequence[np.ndarray], names: Sequence[str | None]):
        arrays = [np.asarray(a) for a in arrays]
        if not arrays:
            raise ValueError("MultiIndex requires at least one level")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError("MultiIndex levels must have equal length")
        self._arrays = list(arrays)
        self._names = list(names)
        # A tuple-per-row object array keeps __getitem__/values simple.
        tuples = np.empty(len(arrays[0]), dtype=object)
        for i in range(len(arrays[0])):
            tuples[i] = tuple(a[i] for a in arrays)
        super().__init__(tuples, name=None)

    @property
    def nlevels(self) -> int:
        return len(self._arrays)

    @property
    def names(self) -> list[str | None]:
        return list(self._names)

    @property
    def levels_arrays(self) -> list[np.ndarray]:
        return list(self._arrays)

    def take(self, positions: np.ndarray) -> "MultiIndex":
        return MultiIndex([a[positions] for a in self._arrays], self._names)

    def to_frame_columns(self) -> dict[str, np.ndarray]:
        cols: dict[str, np.ndarray] = {}
        for i, (arr, name) in enumerate(zip(self._arrays, self._names)):
            cols[name if name is not None else f"level_{i}"] = arr
        return cols

    def argsort(self, ascending: bool = True) -> np.ndarray:
        order = np.lexsort(tuple(reversed(self._arrays)))
        return order if ascending else order[::-1]

    def __repr__(self) -> str:
        return f"MultiIndex(names={self._names!r}, n={len(self)})"


def ensure_index(obj, n: int | None = None) -> Index:
    """Coerce *obj* into an Index; ``None`` becomes a RangeIndex of *n*."""
    if obj is None:
        if n is None:
            raise ValueError("need a length to build a default index")
        return RangeIndex(n)
    if isinstance(obj, Index):
        return obj
    return Index(np.asarray(obj))
