"""Pandas-substitute DataFrame library (substrate #1 of the reproduction).

Provides the eager, single-threaded "Python" baseline of the paper's
benchmarks and the surface API that ``@pytond`` functions are written
against.
"""

from .datetimes import to_datetime
from .frame import DataFrame, concat
from .index import Index, MultiIndex, RangeIndex
from .io import read_csv, to_csv
from .series import Series

__all__ = [
    "DataFrame",
    "Series",
    "Index",
    "MultiIndex",
    "RangeIndex",
    "concat",
    "read_csv",
    "to_csv",
    "to_datetime",
]
