"""DataFrame merge (join) implementation.

A hash join supporting inner / left / right / outer / cross joins with the
Pandas suffix-renaming rules described in Section III-C of the paper
(implicit renaming of overlapping column names to ``_x`` / ``_y``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import DataFrameError
from ._common import take_with_nulls

if TYPE_CHECKING:  # pragma: no cover
    from .frame import DataFrame

__all__ = ["merge", "resolve_merged_columns"]


def _key_rows(frame: "DataFrame", keys: list[str]) -> list[tuple]:
    arrays = [frame[k].values for k in keys]
    n = len(frame)
    return [tuple(a[i] for a in arrays) for i in range(n)]


def resolve_merged_columns(
    left_cols: list[str],
    right_cols: list[str],
    left_on: list[str],
    right_on: list[str],
    suffixes: tuple[str, str],
) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
    """Compute output column names following Pandas implicit renaming.

    Returns ``(left_pairs, right_pairs)`` where each pair is
    ``(source_column, output_column)``.  When the join key has the same name
    on both sides, only the left copy is kept.  Other overlapping names get
    the suffixes.
    """
    shared_keys = {l for l, r in zip(left_on, right_on) if l == r}
    overlap = (set(left_cols) & set(right_cols)) - shared_keys
    left_pairs = []
    for col in left_cols:
        out = col + suffixes[0] if col in overlap else col
        left_pairs.append((col, out))
    right_pairs = []
    for col in right_cols:
        if col in shared_keys:
            continue
        out = col + suffixes[1] if col in overlap else col
        right_pairs.append((col, out))
    return left_pairs, right_pairs


def _resolve_keys(left: "DataFrame", right: "DataFrame", on, left_on,
                  right_on) -> tuple[list[str], list[str]]:
    """Resolve and validate join keys (explicit `on`/`left_on`/`right_on`,
    or the Pandas common-column inference).  Shared by every merge kind."""
    if on is not None:
        left_on = right_on = on
    if left_on is None or right_on is None:
        common = [c for c in left.columns if c in set(right.columns)]
        if not common:
            raise DataFrameError("no common columns to merge on")
        left_on = right_on = common
    left_keys = [left_on] if isinstance(left_on, str) else list(left_on)
    right_keys = [right_on] if isinstance(right_on, str) else list(right_on)
    if len(left_keys) != len(right_keys):
        raise DataFrameError("left_on and right_on must have equal length")
    for k in left_keys:
        if k not in left.columns:
            raise DataFrameError(f"left merge key {k!r} not found")
    for k in right_keys:
        if k not in right.columns:
            raise DataFrameError(f"right merge key {k!r} not found")
    return left_keys, right_keys


def merge(
    left: "DataFrame",
    right: "DataFrame",
    how: str = "inner",
    on: str | list[str] | None = None,
    left_on: str | list[str] | None = None,
    right_on: str | list[str] | None = None,
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> "DataFrame":
    from .frame import DataFrame

    if how == "cross":
        return _cross_join(left, right, suffixes)

    if how in ("semi", "anti"):
        return _filtering_merge(left, right, how, on, left_on, right_on)

    left_keys, right_keys = _resolve_keys(left, right, on, left_on, right_on)

    lrows = _key_rows(left, left_keys)
    rrows = _key_rows(right, right_keys)

    table: dict[tuple, list[int]] = {}
    for j, key in enumerate(rrows):
        if any(k is None or (isinstance(k, float) and np.isnan(k)) for k in key):
            continue
        table.setdefault(key, []).append(j)

    left_pos: list[int] = []
    right_pos: list[int] = []
    right_missing: list[bool] = []
    left_missing: list[bool] = []
    matched_right = np.zeros(len(right), dtype=bool) if how in ("right", "outer") else None

    for i, key in enumerate(lrows):
        null_key = any(k is None or (isinstance(k, float) and np.isnan(k)) for k in key)
        matches = table.get(key, []) if not null_key else []
        if matches:
            for j in matches:
                left_pos.append(i)
                right_pos.append(j)
                right_missing.append(False)
                left_missing.append(False)
                if matched_right is not None:
                    matched_right[j] = True
        elif how in ("left", "outer"):
            left_pos.append(i)
            right_pos.append(0)
            right_missing.append(True)
            left_missing.append(False)

    if matched_right is not None:
        for j in np.nonzero(~matched_right)[0]:
            left_pos.append(0)
            right_pos.append(int(j))
            right_missing.append(False)
            left_missing.append(True)

    lp = np.asarray(left_pos, dtype=np.int64)
    rp = np.asarray(right_pos, dtype=np.int64)
    lmiss = np.asarray(left_missing, dtype=bool)
    rmiss = np.asarray(right_missing, dtype=bool)

    left_pairs, right_pairs = resolve_merged_columns(
        list(left.columns), list(right.columns), left_keys, right_keys, suffixes
    )

    data: dict[str, np.ndarray] = {}
    key_name_map = dict(zip(left_keys, right_keys))
    for src, out in left_pairs:
        col = take_with_nulls(left[src].values, lp, lmiss)
        # For shared join keys, rows that come only from the right side must
        # carry the right key value.
        if src in key_name_map and lmiss.any():
            rcol = right[key_name_map[src]].values
            col = col.copy() if col.dtype == object else col
            filler = rcol[rp[lmiss]]
            if col.dtype.kind == "f" and filler.dtype.kind in ("i", "u"):
                filler = filler.astype(np.float64)
            col[lmiss] = filler
        data[out] = col
    for src, out in right_pairs:
        data[out] = take_with_nulls(right[src].values, rp, rmiss)
    return DataFrame(data)


def _filtering_merge(left: "DataFrame", right: "DataFrame", how: str,
                     on, left_on, right_on) -> "DataFrame":
    """``how="semi"`` / ``how="anti"``: filter *left* to rows that do (or
    don't) have a key match in *right*, keeping only left columns and never
    duplicating rows.  Rides the SQL engine's vectorized membership kernel
    (:func:`repro.sqlengine.joins.semi_join_flags`); a NULL key on either
    side never matches, so anti keeps NULL-keyed left rows.
    """
    from ..sqlengine.joins import semi_join_flags
    from .frame import DataFrame

    left_keys, right_keys = _resolve_keys(left, right, on, left_on, right_on)
    flags = semi_join_flags([left[k].values for k in left_keys],
                            [right[k].values for k in right_keys])
    if how == "anti":
        flags = ~flags
    return DataFrame({c: left[c].values[flags] for c in left.columns})


def _cross_join(left: "DataFrame", right: "DataFrame", suffixes: tuple[str, str]) -> "DataFrame":
    from .frame import DataFrame

    nl, nr = len(left), len(right)
    lp = np.repeat(np.arange(nl, dtype=np.int64), nr)
    rp = np.tile(np.arange(nr, dtype=np.int64), nl)
    left_pairs, right_pairs = resolve_merged_columns(list(left.columns), list(right.columns), [], [], suffixes)
    data: dict[str, np.ndarray] = {}
    for src, out in left_pairs:
        data[out] = left[src].values[lp]
    for src, out in right_pairs:
        data[out] = right[src].values[rp]
    return DataFrame(data)
