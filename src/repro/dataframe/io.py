"""CSV input/output for the DataFrame library."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .frame import DataFrame

__all__ = ["read_csv", "to_csv"]


def _infer_column(values: list[str]):
    """Infer int / float / date / string dtype from raw CSV strings."""
    def non_empty():
        return (v for v in values if v != "")

    try:
        out = np.array([int(v) if v != "" else 0 for v in values], dtype=np.int64)
        if any(v == "" for v in values):
            return np.array([float(v) if v != "" else np.nan for v in values], dtype=np.float64)
        return out
    except ValueError:
        pass
    try:
        return np.array([float(v) if v != "" else np.nan for v in values], dtype=np.float64)
    except ValueError:
        pass
    sample = next(non_empty(), None)
    if sample is not None and len(sample) == 10 and sample[4] == "-" and sample[7] == "-":
        try:
            return np.array(
                [np.datetime64(v, "D") if v != "" else np.datetime64("NaT") for v in values],
                dtype="datetime64[D]",
            )
        except ValueError:
            pass
    return np.array([v if v != "" else None for v in values], dtype=object)


def read_csv(path: str | Path, sep: str = ",", names: list[str] | None = None) -> DataFrame:
    """Read a delimited text file into a DataFrame with dtype inference."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=sep)
        rows = list(reader)
    if not rows:
        return DataFrame({})
    if names is None:
        header, rows = rows[0], rows[1:]
    else:
        header = names
    columns: dict[str, list[str]] = {name: [] for name in header}
    for row in rows:
        for name, value in zip(header, row):
            columns[name].append(value)
    return DataFrame({name: _infer_column(vals) for name, vals in columns.items()})


def to_csv(frame: DataFrame, path: str | Path, sep: str = ",", index: bool = False) -> None:
    """Write a DataFrame to a delimited text file."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=sep)
        writer.writerow(frame.columns)
        for row in frame.itertuples(index=False):
            writer.writerow(["" if v is None else v for v in row])
