"""The DataFrame class: a columnar, eagerly-evaluated 2-D table.

Implements the Pandas API subset listed in Table II of the paper plus the
operations required by the TPC-H queries and the hybrid data-science
workloads of Section V.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from ..errors import DataFrameError
from ._common import coerce_array, combine_dtypes, isna_array
from .groupby import GroupBy
from .index import Index, MultiIndex, RangeIndex, ensure_index
from .merge import merge as _merge
from .pivot import pivot_table as _pivot_table
from .series import Series

__all__ = ["DataFrame", "concat"]


class DataFrame:
    """A dict of named, equal-length numpy columns plus a row index."""

    def __init__(self, data: Mapping | None = None, index=None, columns: Iterable[str] | None = None):
        self._data: dict[str, np.ndarray] = {}
        n: int | None = None
        if data is None:
            data = {}
        if isinstance(data, DataFrame):
            self._data = {k: v.copy() for k, v in data._data.items()}
            self._index = data._index
            return
        if isinstance(data, np.ndarray):
            if data.ndim != 2:
                raise DataFrameError("DataFrame from ndarray requires a 2-D array")
            names = list(columns) if columns is not None else [f"c{i}" for i in range(data.shape[1])]
            data = {name: data[:, i] for i, name in enumerate(names)}
            columns = None
        for name, col in data.items():
            if isinstance(col, Series):
                col = col.values
            arr = coerce_array(col)
            if arr.ndim == 0:
                arr = arr.reshape(1)
            if n is None:
                n = len(arr)
            elif len(arr) == 1 and n > 1:
                arr = np.repeat(arr, n)
            elif len(arr) != n:
                raise DataFrameError(f"column {name!r} length {len(arr)} != {n}")
            self._data[str(name)] = arr
        if columns is not None:
            ordered = {}
            for name in columns:
                ordered[str(name)] = self._data.get(str(name), np.empty(n or 0, dtype=object))
            self._data = ordered
        self._index = ensure_index(index, n if n is not None else 0)
        if len(self._index) != (n if n is not None else 0):
            raise DataFrameError("index length does not match data length")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._data.keys())

    @property
    def index(self) -> Index:
        return self._index

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self._index), len(self._data))

    @property
    def empty(self) -> bool:
        return len(self._index) == 0 or not self._data

    @property
    def dtypes(self) -> dict[str, np.dtype]:
        return {k: v.dtype for k, v in self._data.items()}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, col: str) -> bool:
        return col in self._data

    def __repr__(self) -> str:
        parts = []
        for name, col in list(self._data.items())[:12]:
            parts.append(f"{name}={col[:4].tolist()!r}...")
        return f"DataFrame(n={len(self)}, {', '.join(parts)})"

    def copy(self) -> "DataFrame":
        out = DataFrame.__new__(DataFrame)
        out._data = {k: v.copy() for k, v in self._data.items()}
        out._index = self._index
        return out

    def _column(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise KeyError(name)
        return self._data[name]

    # ------------------------------------------------------------------
    # Selection / assignment
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, str):
            return Series(self._column(key), index=self._index, name=key)
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            if len(key) != len(self):
                raise DataFrameError("boolean mask length mismatch")
            return self._take_mask(key)
        if isinstance(key, (list, tuple)):
            missing = [k for k in key if k not in self._data]
            if missing:
                raise KeyError(missing[0])
            out = DataFrame.__new__(DataFrame)
            out._data = {k: self._data[k] for k in key}
            out._index = self._index
            return out
        raise DataFrameError(f"unsupported DataFrame key: {key!r}")

    def __getattr__(self, name: str):
        data = object.__getattribute__(self, "_data")
        if name in data:
            return Series(data[name], index=object.__getattribute__(self, "_index"), name=name)
        raise AttributeError(name)

    def __setitem__(self, key: str, value):
        if isinstance(value, Series):
            value = value.values
        arr = coerce_array(value)
        if arr.ndim == 0:
            arr = np.repeat(arr.reshape(1), max(len(self), 1))
        if not self._data:
            self._index = RangeIndex(len(arr))
        elif len(arr) == 1 and len(self) > 1:
            arr = np.repeat(arr, len(self))
        elif len(arr) != len(self):
            raise DataFrameError(f"assigned column length {len(arr)} != {len(self)}")
        self._data[str(key)] = arr

    def _take_mask(self, mask: np.ndarray) -> "DataFrame":
        out = DataFrame.__new__(DataFrame)
        out._data = {k: v[mask] for k, v in self._data.items()}
        out._index = self._index[mask]
        return out

    def take(self, positions: np.ndarray) -> "DataFrame":
        positions = np.asarray(positions)
        out = DataFrame.__new__(DataFrame)
        out._data = {k: v[positions] for k, v in self._data.items()}
        out._index = self._index.take(positions)
        return out

    @property
    def loc(self) -> "_Loc":
        return _Loc(self)

    @property
    def iloc(self) -> "_ILoc":
        return _ILoc(self)

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, len(self))))

    def tail(self, n: int = 5) -> "DataFrame":
        start = max(len(self) - n, 0)
        return self.take(np.arange(start, len(self)))

    # ------------------------------------------------------------------
    # Column-level mutation helpers
    # ------------------------------------------------------------------
    def drop(self, labels=None, axis: int = 0, columns=None) -> "DataFrame":
        if columns is None:
            if axis != 1:
                raise DataFrameError("drop only supports axis=1 / columns=")
            columns = labels
        if isinstance(columns, str):
            columns = [columns]
        out = DataFrame.__new__(DataFrame)
        out._data = {k: v for k, v in self._data.items() if k not in set(columns)}
        out._index = self._index
        return out

    def rename(self, columns: Mapping[str, str]) -> "DataFrame":
        out = DataFrame.__new__(DataFrame)
        out._data = {columns.get(k, k): v for k, v in self._data.items()}
        out._index = self._index
        return out

    def assign(self, **kwargs) -> "DataFrame":
        out = self.copy()
        for name, value in kwargs.items():
            if callable(value):
                value = value(out)
            out[name] = value
        return out

    def astype(self, mapping) -> "DataFrame":
        out = self.copy()
        if not isinstance(mapping, Mapping):
            mapping = {c: mapping for c in out.columns}
        for col, dtype in mapping.items():
            out[col] = Series(out._data[col]).astype(dtype).values
        return out

    def fillna(self, value) -> "DataFrame":
        out = self.copy()
        for col in out.columns:
            out[col] = Series(out._data[col]).fillna(value).values
        return out

    def dropna(self, subset: list[str] | None = None) -> "DataFrame":
        cols = subset if subset is not None else self.columns
        mask = np.ones(len(self), dtype=bool)
        for col in cols:
            mask &= ~isna_array(self._data[col])
        return self._take_mask(mask)

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def merge(self, right: "DataFrame", how: str = "inner", on=None, left_on=None,
              right_on=None, suffixes: tuple[str, str] = ("_x", "_y")) -> "DataFrame":
        return _merge(self, right, how=how, on=on, left_on=left_on, right_on=right_on, suffixes=suffixes)

    def groupby(self, by, as_index: bool = True, sort: bool = True) -> GroupBy:
        keys = [by] if isinstance(by, str) else list(by)
        return GroupBy(self, keys, as_index=as_index, sort=sort)

    def pivot_table(self, index: str, columns: str, values: str, aggfunc: str = "sum", fill_value=0) -> "DataFrame":
        return _pivot_table(self, index=index, columns=columns, values=values, aggfunc=aggfunc, fill_value=fill_value)

    def sort_values(self, by, ascending=True) -> "DataFrame":
        keys = [by] if isinstance(by, str) else list(by)
        orders = [ascending] * len(keys) if isinstance(ascending, bool) else list(ascending)
        if len(orders) != len(keys):
            raise DataFrameError("ascending list length must match sort keys")
        order = np.arange(len(self))
        # Stable sort from last key to first implements lexicographic order.
        for key, asc in reversed(list(zip(keys, orders))):
            col = self._data[key][order]
            if col.dtype == object:
                sub = np.array(
                    sorted(range(len(col)), key=lambda i: (col[i] is None, col[i])),
                    dtype=np.int64,
                )
            else:
                sub = np.argsort(col, kind="stable")
            if not asc:
                sub = _reverse_stable(col, sub)
            order = order[sub]
        return self.take(order)

    def drop_duplicates(self, subset=None) -> "DataFrame":
        from ..sqlengine.setops import dedup_positions

        cols = self.columns if subset is None else ([subset] if isinstance(subset, str) else list(subset))
        if not len(self):
            return self.copy()
        return self.take(dedup_positions([self._data[c] for c in cols]))

    def _topk(self, n: int, columns, ascending: bool) -> "DataFrame":
        from ..sqlengine.topk import topk_positions

        keys = [columns] if isinstance(columns, str) else list(columns)
        arrays = [self._data[k] for k in keys]
        return self.take(topk_positions(arrays, [ascending] * len(keys), n))

    def nlargest(self, n: int, columns) -> "DataFrame":
        return self._topk(n, columns, ascending=False)

    def nsmallest(self, n: int, columns) -> "DataFrame":
        return self._topk(n, columns, ascending=True)

    def isin(self, other) -> "DataFrame":
        out = DataFrame.__new__(DataFrame)
        out._data = {}
        for col in self.columns:
            values = other[col] if (hasattr(other, "columns") and col in other.columns) else other
            out._data[col] = self[col].isin(values).values
        out._index = self._index
        return out

    # ------------------------------------------------------------------
    # Reductions / iteration
    # ------------------------------------------------------------------
    def aggregate(self, func) -> Series:
        if isinstance(func, dict):
            names, vals = [], []
            for col, f in func.items():
                names.append(col)
                vals.append(self[col].aggregate(f))
            return Series(np.array(vals, dtype=object), index=Index(np.array(names, dtype=object)), name=None)
        names = self.columns
        vals = [self[c].aggregate(func) for c in names]
        return Series(np.array(vals, dtype=object), index=Index(np.array(names, dtype=object)), name=None)

    agg = aggregate

    def sum(self) -> Series:
        return self.aggregate("sum")

    def mean(self) -> Series:
        return self.aggregate("mean")

    def count(self) -> Series:
        return self.aggregate("count")

    def apply(self, func: Callable, axis: int = 0):
        if axis == 1:
            rows = [_Row(self, i) for i in range(len(self))]
            out = np.array([func(r) for r in rows], dtype=object)
            return Series(coerce_array(out), index=self._index)
        return self.aggregate(func)

    def itertuples(self, index: bool = True):
        cols = self.columns
        arrays = [self._data[c] for c in cols]
        for i in range(len(self)):
            values = tuple(a[i] for a in arrays)
            yield (self._index.values[i],) + values if index else values

    def iterrows(self):
        for i in range(len(self)):
            yield self._index.values[i], _Row(self, i)

    # ------------------------------------------------------------------
    # Index handling / conversion
    # ------------------------------------------------------------------
    def reset_index(self, drop: bool = False) -> "DataFrame":
        out = DataFrame.__new__(DataFrame)
        if drop or isinstance(self._index, RangeIndex):
            out._data = dict(self._data)
        else:
            out._data = {}
            for name, col in self._index.to_frame_columns().items():
                out._data[name] = col
            out._data.update(self._data)
        out._index = RangeIndex(len(self))
        return out

    def set_index(self, keys) -> "DataFrame":
        names = [keys] if isinstance(keys, str) else list(keys)
        out = DataFrame.__new__(DataFrame)
        out._data = {k: v for k, v in self._data.items() if k not in set(names)}
        if len(names) == 1:
            out._index = Index(self._data[names[0]], name=names[0])
        else:
            out._index = MultiIndex([self._data[n] for n in names], names)
        return out

    def to_numpy(self, dtype=None) -> np.ndarray:
        if not self._data:
            return np.empty((0, 0))
        cols = list(self._data.values())
        target = dtype
        if target is None:
            target = cols[0].dtype
            for c in cols[1:]:
                target = combine_dtypes(np.empty(0, dtype=target), c)
        return np.column_stack([c.astype(target) for c in cols])

    values = property(to_numpy)

    def to_dict(self, orient: str = "list") -> dict:
        if orient == "list":
            return {k: v.tolist() for k, v in self._data.items()}
        if orient == "records":
            cols = self.columns
            return [dict(zip(cols, row)) for row in zip(*self._data.values())]
        raise DataFrameError(f"unsupported orient {orient!r}")

    def equals(self, other: "DataFrame") -> bool:
        if self.columns != other.columns or len(self) != len(other):
            return False
        for col in self.columns:
            a, b = self._data[col], other._data[col]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True


class _Row:
    """Light row view used by ``apply(axis=1)`` and ``iterrows``."""

    def __init__(self, frame: DataFrame, i: int):
        self._frame = frame
        self._i = i

    def __getitem__(self, col: str):
        return self._frame._data[col][self._i]

    def __getattr__(self, col: str):
        try:
            return self._frame._data[col][self._i]
        except KeyError:
            raise AttributeError(col) from None

    def keys(self):
        return self._frame.columns


class _Loc:
    def __init__(self, frame: DataFrame):
        self._frame = frame

    def __getitem__(self, key):
        if isinstance(key, tuple):
            rows, cols = key
            sub = self._frame[rows] if not isinstance(rows, slice) else self._frame
            if isinstance(cols, str):
                return sub[cols]
            return sub[list(cols)]
        return self._frame[key]


class _ILoc:
    def __init__(self, frame: DataFrame):
        self._frame = frame

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return _Row(self._frame, int(key))
        if isinstance(key, slice):
            return self._frame.take(np.arange(len(self._frame))[key])
        return self._frame.take(np.asarray(key))


def _reverse_stable(col: np.ndarray, ascending_order: np.ndarray) -> np.ndarray:
    """Descending stable order: reverse runs of equal keys keep stability."""
    reversed_order = ascending_order[::-1]
    sorted_vals = col[reversed_order]
    # Restore stability within equal-key runs (ties must keep original order).
    out = reversed_order.copy()
    start = 0
    n = len(sorted_vals)
    for i in range(1, n + 1):
        if i == n or sorted_vals[i] != sorted_vals[i - 1]:
            if i - start > 1:
                out[start:i] = out[start:i][::-1]
            start = i
    return out


def _null_fill(n: int, like: list[np.ndarray]) -> np.ndarray:
    """An all-null column of length *n*, typed after the arrays that do
    carry the column (NaT for dates, None for strings, NaN otherwise)."""
    kinds = {a.dtype.kind for a in like}
    if kinds == {"M"}:
        return np.full(n, np.datetime64("NaT"), dtype="datetime64[D]")
    if "O" in kinds:
        return np.full(n, None, dtype=object)
    return np.full(n, np.nan)


def concat(frames: list[DataFrame], ignore_index: bool = True) -> DataFrame:
    """Row-wise concatenation, aligning mismatched column sets with nulls.

    Like pandas, columns missing from a frame are null-filled (which also
    promotes integer columns to float); the result's column order is the
    first frame's columns followed by extras in order of appearance.  A
    frame sharing no column with the rest is almost certainly a bug, so
    zero overlap stays a hard error.  Concatenation itself runs through the
    engine's UNION ALL kernel (:func:`repro.sqlengine.setops.combine_arrays`).
    """
    from ..sqlengine.setops import combine_arrays

    if not frames:
        return DataFrame({})
    columns: list[str] = list(frames[0].columns)
    seen = set(columns)
    for f in frames[1:]:
        for c in f.columns:
            if c not in seen:
                seen.add(c)
                columns.append(c)
    if len(frames) > 1:
        for i, f in enumerate(frames):
            others: set = set()
            for j, g in enumerate(frames):
                if j != i:
                    others.update(g.columns)
            if f.columns and others and not (set(f.columns) & others):
                raise DataFrameError(
                    "concat requires overlapping column sets "
                    f"(frame {i} shares no column with the others)"
                )
    data = {}
    for c in columns:
        present = [f._data[c] for f in frames if c in f._data]
        parts = [
            f._data[c] if c in f._data else _null_fill(len(f), present)
            for f in frames
        ]
        data[c] = combine_arrays(parts)
    return DataFrame(data)
