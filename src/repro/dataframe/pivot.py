"""``pivot_table`` implementation (Section II-A of the paper).

The translation target in TondIR is a group-by with one conditional
aggregate per distinct value of the ``columns`` argument; this eager
implementation mirrors those semantics (missing combinations fill with 0 by
default, as in the paper's worked example).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import DataFrameError
from .groupby import factorize_keys
from .index import Index

if TYPE_CHECKING:  # pragma: no cover
    from .frame import DataFrame

__all__ = ["pivot_table"]

_SUPPORTED = {"sum", "mean", "count", "min", "max"}


def pivot_table(
    frame: "DataFrame",
    index: str,
    columns: str,
    values: str,
    aggfunc: str = "sum",
    fill_value=0,
) -> "DataFrame":
    from .frame import DataFrame

    if aggfunc not in _SUPPORTED:
        raise DataFrameError(f"unsupported pivot aggfunc {aggfunc!r}")
    for col in (index, columns, values):
        if col not in frame.columns:
            raise DataFrameError(f"pivot column {col!r} not found")

    row_ids, row_keys, n_rows = factorize_keys([frame[index].values])
    col_ids, col_keys, n_cols = factorize_keys([frame[columns].values])
    vals = frame[values].values.astype(np.float64)

    sums = np.zeros((n_rows, n_cols), dtype=np.float64)
    counts = np.zeros((n_rows, n_cols), dtype=np.int64)
    mins = np.full((n_rows, n_cols), np.inf)
    maxs = np.full((n_rows, n_cols), -np.inf)
    np.add.at(sums, (row_ids, col_ids), vals)
    np.add.at(counts, (row_ids, col_ids), 1)
    np.minimum.at(mins, (row_ids, col_ids), vals)
    np.maximum.at(maxs, (row_ids, col_ids), vals)

    if aggfunc == "sum":
        table = sums
    elif aggfunc == "count":
        table = counts.astype(np.float64)
    elif aggfunc == "mean":
        with np.errstate(invalid="ignore", divide="ignore"):
            table = sums / counts
    elif aggfunc == "min":
        table = mins
    else:
        table = maxs
    empty = counts == 0
    table = np.where(empty, float(fill_value), table)

    row_labels = row_keys[0]
    col_labels = col_keys[0]
    row_order = _stable_sort(row_labels)
    col_order = _stable_sort(col_labels)
    table = table[np.ix_(row_order, col_order)]

    data = {}
    for j, cj in enumerate(col_order):
        data[str(col_labels[cj])] = table[:, j]
    return DataFrame(data, index=Index(row_labels[row_order], name=index))


def _stable_sort(labels: np.ndarray) -> np.ndarray:
    if labels.dtype == object:
        return np.array(
            sorted(range(len(labels)), key=lambda i: (labels[i] is None, labels[i])),
            dtype=np.int64,
        )
    return np.argsort(labels, kind="stable")
