"""Storage benchmark: ingest / reload / prune / spill report.

``python -m repro.bench storage`` exercises the persistent column store
end to end on the TPC-H dataset:

1. **ingest** — generate TPC-H at ``--sf`` and write every table into a
   column store (lineitem clustered on ``l_shipdate``, orders on
   ``o_orderdate`` so zone maps are selective);
2. **reload** — reopen the store from its manifest alone and attach it to
   a fresh database (the restart-without-reload path);
3. **prune** — run a selective shipdate range scan with zone-map pruning
   on and off, reporting chunk files actually read and the reduction
   factor;
4. **spill** — run TPC-H Q1 under ``--budget`` and verify the grace-
   partitioned result matches the in-memory rows, reporting spill events.

``--report`` writes the numbers as JSON (the CI artifact).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from ..backends.rows import chunk_rows as _rows_of
from ..backends.rows import normalize_rows, rows_equal
from ..sqlengine import Database, EngineConfig
from ..storage import ColumnStore, open_store
from ..workloads.tpch import PRIMARY_KEYS, QUERIES, generate
from ..workloads.tpch.schema import TABLE_ORDER

__all__ = ["store_tpch", "storage_report", "TPCH_SORT_KEYS"]

# Ingest-time clustering: zone maps only prune when values correlate with
# row position, and the paper's selective TPC-H predicates are date ranges.
TPCH_SORT_KEYS = {"lineitem": "l_shipdate", "orders": "o_orderdate"}

_PRUNE_SQL = ("SELECT COUNT(*) AS n, SUM(l_quantity) AS qty FROM lineitem "
              "WHERE l_shipdate BETWEEN DATE '1994-01-01' "
              "AND DATE '1994-03-31'")


def store_tpch(store: ColumnStore, dataset: dict,
               chunk_rows: int = 4096) -> None:
    """Write a generated TPC-H dataset into *store*, clustered for pruning."""
    for name in TABLE_ORDER:
        store.write_table(
            name, dataset[name],
            primary_key=PRIMARY_KEYS[name],
            chunk_rows=chunk_rows,
            sort_by=TPCH_SORT_KEYS.get(name),
        )


def _measure_scan(db: Database, table, sql: str,
                  config: EngineConfig | None) -> dict:
    # Warm the plan cache and the planner's sampling probe first, so the
    # measured pass counts pure scan IO.
    db.execute(sql, config=config)
    table.reset_io_stats()
    t0 = time.perf_counter()
    db.execute(sql, config=config)
    elapsed = (time.perf_counter() - t0) * 1e3
    stats = dict(table.io_stats)
    stats["ms"] = round(elapsed, 3)
    return stats


def storage_report(sf: float = 0.005, chunk_rows: int = 4096,
                   budget: int = 65536, root: str | None = None,
                   report_path: str | None = None) -> str:
    report: dict = {"sf": sf, "chunk_rows": chunk_rows, "budget": budget}
    lines = [f"Storage report: TPC-H SF={sf}, chunk_rows={chunk_rows}, "
             f"budget={budget} bytes"]

    root = root or tempfile.mkdtemp(prefix="repro-store-")
    dataset = generate(scale_factor=sf, seed=42)

    t0 = time.perf_counter()
    store = ColumnStore(root)
    store_tpch(store, dataset, chunk_rows=chunk_rows)
    ingest_ms = (time.perf_counter() - t0) * 1e3
    nrows = sum(len(next(iter(t.values()))) for t in dataset.values())
    report["ingest"] = {"ms": round(ingest_ms, 1), "rows": nrows,
                        "tables": len(TABLE_ORDER)}
    lines.append(f"ingest:  {nrows} rows / {len(TABLE_ORDER)} tables "
                 f"in {ingest_ms:.1f} ms -> {root}")

    t0 = time.perf_counter()
    db = Database()
    reopened = open_store(root)
    reopened.attach(db)
    reload_ms = (time.perf_counter() - t0) * 1e3
    report["reload"] = {"ms": round(reload_ms, 3),
                        "catalog_version": reopened.catalog_version}
    lines.append(f"reload:  manifest-only reopen + attach in {reload_ms:.2f} ms "
                 f"(catalog_version={reopened.catalog_version})")

    lineitem = db.catalog.get("lineitem")
    pruned = _measure_scan(db, lineitem, _PRUNE_SQL, None)
    unpruned = _measure_scan(db, lineitem, _PRUNE_SQL,
                             EngineConfig(zone_map_pruning=False))
    factor = (unpruned["chunks_read"] / pruned["chunks_read"]
              if pruned["chunks_read"] else float("inf"))
    report["prune"] = {"pruned": pruned, "unpruned": unpruned,
                       "scan_reduction": round(factor, 2)}
    lines.append(f"prune:   shipdate range scan reads "
                 f"{pruned['chunks_read']}/{unpruned['chunks_read']} chunks "
                 f"({factor:.1f}x scan reduction), "
                 f"{pruned['ms']:.2f} ms vs {unpruned['ms']:.2f} ms")

    q1 = QUERIES[1].sql("duckdb", level="O4", db=db)
    base = normalize_rows(_rows_of(db.execute_chunk(q1)))
    spill_cfg = EngineConfig(memory_budget=budget)
    spilled = normalize_rows(_rows_of(db.execute_chunk(q1, spill_cfg)))
    ok, why = rows_equal(base, spilled)
    trace = db.explain(q1, config=spill_cfg)
    events = [ln.strip() for ln in trace.splitlines() if "spill:" in ln]
    report["spill"] = {"query": "tpch_q1", "matches_in_memory": ok,
                       "events": events}
    lines.append(f"spill:   Q1 under budget: "
                 f"{'rows match in-memory' if ok else 'MISMATCH: ' + why}, "
                 f"{len(events)} spill event(s)")
    lines.extend(f"         {e}" for e in events)

    if report_path:
        Path(report_path).parent.mkdir(parents=True, exist_ok=True)
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
        lines.append(f"report:  {report_path}")
    return "\n".join(lines)
