"""Reporting helpers: figure-style series tables and Table I."""

from __future__ import annotations


from .harness import Measurement, geomean

__all__ = ["format_series", "capability_matrix", "speedup_summary", "scalability_table"]


def format_series(title: str, measurements: list[Measurement]) -> str:
    """Render measurements as the per-workload series a paper figure plots."""
    workloads: list[str] = []
    labels: list[str] = []
    table: dict[tuple[str, str], Measurement] = {}
    for m in measurements:
        if m.workload not in workloads:
            workloads.append(m.workload)
        if m.label not in labels:
            labels.append(m.label)
        table[(m.workload, m.label)] = m

    width = max(len(w) for w in workloads) + 2
    lines = [title, "=" * len(title)]
    header = " " * width + "".join(f"{label:>20}" for label in labels)
    lines.append(header)
    for w in workloads:
        cells = []
        for label in labels:
            m = table.get((w, label))
            if m is None:
                cells.append(f"{'-':>20}")
            elif m.excluded:
                cells.append(f"{'excluded':>20}")
            else:
                cells.append(f"{m.ms:>18.2f}ms")
        lines.append(f"{w:<{width}}" + "".join(cells))
    return "\n".join(lines)


def speedup_summary(measurements: list[Measurement], base: str = "Python") -> str:
    """Geometric-mean speedups over the *base* series (paper Section V-B)."""
    by_workload: dict[str, dict[str, float]] = {}
    for m in measurements:
        if not m.excluded and m.ms == m.ms:
            by_workload.setdefault(m.workload, {})[m.label] = m.ms
    labels = sorted({m.label for m in measurements if m.label != base})
    lines = ["Geometric-mean speedup vs " + base]
    for label in labels:
        ratios = []
        for w, series in by_workload.items():
            if base in series and label in series and series[label] > 0:
                ratios.append(series[base] / series[label])
        if ratios:
            lines.append(f"  {label:<20} {geomean(ratios):6.2f}x  (n={len(ratios)})")
    return "\n".join(lines)


def scalability_table(measurements: list[Measurement]) -> str:
    """Speedup over each configuration's own single-thread time (Fig. 7/8)."""
    base: dict[tuple[str, str], float] = {}
    for m in measurements:
        if m.threads == 1 and not m.excluded:
            base[(m.workload, m.label)] = m.ms
    lines = ["workload, system, threads, speedup_vs_1t"]
    for m in measurements:
        if m.excluded or m.ms != m.ms:
            continue
        b = base.get((m.workload, m.label))
        if not b:
            continue
        lines.append(f"{m.workload}, {m.label}, {m.threads}, {b / m.ms:.2f}")
    return "\n".join(lines)


def capability_matrix() -> str:
    """Table I: capabilities of in-database Python execution approaches."""
    rows = [
        ("Approach", "GenericPy", "Pandas", "NumPy", "MultiLayout", "SQLRewrite"),
        ("ByePy [5]", "yes", "no", "no", "partial", "no"),
        ("Blatcher et al. [4]", "no", "no", "partial", "no", "no"),
        ("Grizzly [6]", "partial", "partial", "no", "partial", "no"),
        ("PyFroid [8]", "no", "yes", "no", "partial", "partial"),
        ("PyTond (this repro)", "no", "yes", "yes", "yes", "yes"),
    ]
    widths = [max(len(r[i]) for r in rows) + 2 for i in range(len(rows[0]))]
    lines = []
    for r in rows:
        lines.append("".join(f"{c:<{w}}" for c, w in zip(r, widths)))
    return "\n".join(lines)
