"""Differential testing harness: our engine vs independent oracle backends.

Historically this module owned the sqlite3 mirror loader, the dialect
rewrites, and the row-normalization helpers.  Those now live in
:mod:`repro.backends` (``SqliteBackend`` and friends) — the sqlite oracle is
a first-class registered backend, and the rewrites are derived from its
:class:`~repro.backends.Dialect` template so there is a single source of
truth for e.g. STRFTIME argument order.  This module keeps the
test-friendly assertion helpers and re-exports the moved names for
compatibility.

Two entry points:

* :func:`assert_same_results` — the original connection-based API: caller
  owns a sqlite3 connection (from :func:`load_sqlite`) and we compare
  against it.
* :func:`assert_matches_backend` — the registry path: name any registered
  oracle backend (``sqlite``, ``duckdb_real``) and the comparison runs
  through its ``compile``/``execute`` Protocol methods, including mirror
  caching.
"""

from __future__ import annotations

import sqlite3

from ..backends import get_backend, load_sqlite, to_sqlite_sql
from ..backends.rows import (  # noqa: F401 - _to_python is a compat re-export
    chunk_rows,
    normalize_rows,
    rows_equal,
    to_python_cell as _to_python,
)
from ..sqlengine import Database

__all__ = ["load_sqlite", "to_sqlite_sql", "run_differential", "rows_equal",
           "normalize_rows", "assert_same_results", "assert_matches_backend"]


def run_differential(db: Database, conn: sqlite3.Connection, sql: str,
                     config=None, oracle_sql: str | None = None
                     ) -> tuple[list[tuple], list[tuple]]:
    """Execute *sql* on both engines, returning normalized row lists.

    *oracle_sql*, when given, replaces the query run on sqlite (still
    dialect-rewritten).  Used for statements sqlite cannot express directly
    — e.g. ``INTERSECT ALL``/``EXCEPT ALL``, which the caller rewrites into
    an equivalent ROW_NUMBER-tagged DISTINCT set operation.
    """
    chunk = db.execute_chunk(sql, config)
    ours = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    theirs = normalize_rows(conn.execute(to_sqlite_sql(oracle_sql or sql)).fetchall())
    return ours, theirs


def assert_same_results(db: Database, conn: sqlite3.Connection, sql: str,
                        config=None, context: str = "",
                        oracle_sql: str | None = None) -> None:
    ours, theirs = run_differential(db, conn, sql, config, oracle_sql=oracle_sql)
    ok, detail = rows_equal(ours, theirs)
    assert ok, (
        f"{context or 'query'} diverged from sqlite3: {detail}\n"
        f"sql: {sql}\nsqlite sql: {to_sqlite_sql(oracle_sql or sql)}\n"
        f"ours[:3]={ours[:3]}\ntheirs[:3]={theirs[:3]}"
    )


def assert_matches_backend(db: Database, sql: str, backend: str = "sqlite",
                           config=None, context: str = "",
                           oracle_sql: str | None = None) -> None:
    """Registry-path differential check: our engine vs a named oracle backend.

    The oracle backend compiles *sql* (dialect rewrite) and executes it
    against its own mirror of *db* (cached across calls, invalidated when
    the catalog version changes), so repeated assertions on one database
    don't re-load the data each time.
    """
    oracle = get_backend(backend)
    chunk = db.execute_chunk(sql, config)
    ours = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    artifact = oracle.compile(oracle_sql or sql)
    theirs = oracle.execute(db, artifact).normalized()
    ok, detail = rows_equal(ours, theirs)
    assert ok, (
        f"{context or 'query'} diverged from backend {backend!r}: {detail}\n"
        f"sql: {sql}\noracle sql: {artifact.sql}\n"
        f"ours[:3]={ours[:3]}\ntheirs[:3]={theirs[:3]}"
    )
