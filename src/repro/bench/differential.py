"""Differential testing harness: our engine vs the stdlib ``sqlite3`` oracle.

Loads the contents of a :class:`~repro.sqlengine.Database` into an in-memory
sqlite3 database, rewrites generated SQL into sqlite's dialect (``DATE``
literals, ``EXTRACT``, ``STRFTIME`` argument order), runs the query on both
engines, and compares row sets cell by cell.  This is the safety net behind
the physical-plan refactor: any planner/operator bug that changes results
shows up as a divergence from an independent, battle-tested engine.
"""

from __future__ import annotations

import math
import re
import sqlite3

import numpy as np

from ..sqlengine import Database

__all__ = ["load_sqlite", "to_sqlite_sql", "run_differential", "rows_equal",
           "normalize_rows", "assert_same_results"]


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

def _sqlite_type(dtype: np.dtype) -> str:
    kind = dtype.kind
    if kind in ("i", "u", "b"):
        return "INTEGER"
    if kind == "f":
        return "REAL"
    return "TEXT"  # strings and dates (ISO text compares/sorts correctly)


def _to_python(value):
    """Convert a numpy cell into something sqlite3 can bind."""
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            return None
        return str(np.datetime64(value, "D"))
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and math.isnan(value):
        return None  # our engine treats NaN as SQL NULL
    return value


def load_sqlite(db: Database) -> sqlite3.Connection:
    """Mirror every table of *db* into a fresh in-memory sqlite database."""
    conn = sqlite3.connect(":memory:")
    for name in db.tables():
        table = db.catalog.get(name)
        decls = ", ".join(
            f'"{col}" {_sqlite_type(arr.dtype)}'
            for col, arr in zip(table.columns, table.arrays)
        )
        conn.execute(f'CREATE TABLE "{name}" ({decls})')
        placeholders = ", ".join("?" for _ in table.columns)
        rows = zip(*[[_to_python(v) for v in arr.tolist()] if arr.dtype.kind != "M"
                     else [_to_python(v) for v in arr]
                     for arr in table.arrays])
        conn.executemany(f'INSERT INTO "{name}" VALUES ({placeholders})', rows)
    conn.commit()
    return conn


# ---------------------------------------------------------------------------
# Dialect rewriting
# ---------------------------------------------------------------------------

def _rewrite_extract_year(sql: str) -> str:
    """EXTRACT(YEAR FROM <expr>) -> CAST(STRFTIME('%Y', <expr>) AS INTEGER)."""
    out = []
    i = 0
    pattern = re.compile(r"EXTRACT\s*\(\s*YEAR\s+FROM\s+", re.IGNORECASE)
    while True:
        m = pattern.search(sql, i)
        if m is None:
            out.append(sql[i:])
            break
        out.append(sql[i:m.start()])
        # Scan to the matching close paren of EXTRACT(.
        depth = 1
        j = m.end()
        while j < len(sql) and depth:
            if sql[j] == "(":
                depth += 1
            elif sql[j] == ")":
                depth -= 1
            j += 1
        inner = sql[m.end():j - 1]
        out.append(f"CAST(STRFTIME('%Y', {inner}) AS INTEGER)")
        i = j
    return "".join(out)


def _swap_two_args(sql: str, func: str) -> str:
    """FUNC(a, b) -> STRFTIME(b, a) — sqlite's strftime takes format first."""
    out = []
    i = 0
    pattern = re.compile(rf"{func}\s*\(", re.IGNORECASE)
    while True:
        m = pattern.search(sql, i)
        if m is None:
            out.append(sql[i:])
            break
        out.append(sql[i:m.start()])
        depth = 1
        j = m.end()
        comma = None
        while j < len(sql) and depth:
            ch = sql[j]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 1 and comma is None:
                comma = j
            j += 1
        if comma is None:
            out.append(sql[m.start():j])
        else:
            first = sql[m.end():comma].strip()
            second = sql[comma + 1:j - 1].strip()
            out.append(f"STRFTIME({second}, {first})")
        i = j
    return "".join(out)


def to_sqlite_sql(sql: str) -> str:
    """Rewrite our generated (duckdb-dialect) SQL into sqlite's dialect."""
    out = re.sub(r"\bDATE\s+('(?:[^'])*')", r"\1", sql)  # DATE 'x' -> 'x'
    # Swap pre-existing STRFTIME/TO_CHAR arguments BEFORE rewriting EXTRACT
    # (which emits already-sqlite-ordered STRFTIME calls).
    out = _swap_two_args(out, "STRFTIME")
    out = _swap_two_args(out, "TO_CHAR")
    out = _rewrite_extract_year(out)
    out = re.sub(r"\bSUBSTRING\s*\(", "SUBSTR(", out, flags=re.IGNORECASE)
    return out


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def _norm_cell(value):
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        return None if np.isnat(value) else str(np.datetime64(value, "D"))
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        if math.isnan(value):
            return None
        return value
    if isinstance(value, bool):
        return int(value)
    return value


def _sort_key(row: tuple) -> tuple:
    key = []
    for cell in row:
        if cell is None:
            key.append((0, ""))
        elif isinstance(cell, float):
            # Coarse rounding so float-association noise can't reorder rows.
            key.append((1, f"{cell:.3f}"))
        elif isinstance(cell, (int,)):
            key.append((1, f"{float(cell):.3f}"))
        else:
            key.append((2, str(cell)))
    return tuple(key)


def normalize_rows(rows) -> list[tuple]:
    return sorted((tuple(_norm_cell(c) for c in row) for row in rows),
                  key=_sort_key)


def _cells_equal(a, b, rel_tol: float, abs_tol: float) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)
    return a == b


def rows_equal(ours: list[tuple], theirs: list[tuple],
               rel_tol: float = 1e-6, abs_tol: float = 1e-6) -> tuple[bool, str]:
    if len(ours) != len(theirs):
        return False, f"row count {len(ours)} != {len(theirs)}"
    for i, (ra, rb) in enumerate(zip(ours, theirs)):
        if len(ra) != len(rb):
            return False, f"row {i}: arity {len(ra)} != {len(rb)}"
        for j, (a, b) in enumerate(zip(ra, rb)):
            if not _cells_equal(a, b, rel_tol, abs_tol):
                return False, f"row {i} col {j}: {a!r} != {b!r}"
    return True, ""


def run_differential(db: Database, conn: sqlite3.Connection, sql: str,
                     config=None, oracle_sql: str | None = None
                     ) -> tuple[list[tuple], list[tuple]]:
    """Execute *sql* on both engines, returning normalized row lists.

    *oracle_sql*, when given, replaces the query run on sqlite (still
    dialect-rewritten).  Used for statements sqlite cannot express directly
    — e.g. ``INTERSECT ALL``/``EXCEPT ALL``, which the caller rewrites into
    an equivalent ROW_NUMBER-tagged DISTINCT set operation.
    """
    chunk = db.execute_chunk(sql, config)
    ours = normalize_rows(zip(*[arr.tolist() if arr.dtype.kind != "M" else list(arr)
                                for arr in chunk.arrays])) if chunk.ncols else []
    theirs = normalize_rows(conn.execute(to_sqlite_sql(oracle_sql or sql)).fetchall())
    return ours, theirs


def assert_same_results(db: Database, conn: sqlite3.Connection, sql: str,
                        config=None, context: str = "",
                        oracle_sql: str | None = None) -> None:
    ours, theirs = run_differential(db, conn, sql, config, oracle_sql=oracle_sql)
    ok, detail = rows_equal(ours, theirs)
    assert ok, (
        f"{context or 'query'} diverged from sqlite3: {detail}\n"
        f"sql: {sql}\nsqlite sql: {to_sqlite_sql(oracle_sql or sql)}\n"
        f"ours[:3]={ours[:3]}\ntheirs[:3]={theirs[:3]}"
    )
