"""Benchmark harness: runs {Python, Grizzly-sim, PyTond} x backends x threads.

Follows the paper's methodology (Section V-A/B): data is pre-loaded into
the database (load time excluded), SQL is generated once per configuration,
warm-up rounds precede the timed rounds, and the mean of the timed rounds
is reported.  The *Grizzly-simulated* competitor is PyTond's translation
with optimizations disabled (level O0), exactly as in the paper.

Repeated executions of the same (sql, config) pair hit the Database's
physical-plan cache, so warm-up rounds also warm the planner — timed rounds
measure pure execution, mirroring prepared-statement benchmarking.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..backends import Backend, get_backend
from ..dataframe import DataFrame
from ..errors import ReproError, UnsupportedFeatureError
from ..sqlengine import connect
from ..workloads import WORKLOADS
from ..workloads.tpch import QUERIES, QUERY_TABLES, generate, register_tpch

__all__ = [
    "Measurement", "time_callable", "TpchBench", "WorkloadBench",
    "SYSTEMS", "geomean",
]

SYSTEMS = ["python", "grizzly", "pytond"]
_SYSTEM_LEVEL = {"grizzly": "O0", "pytond": "O4"}


@dataclass
class Measurement:
    workload: str
    system: str           # python | grizzly | pytond
    backend: str | None   # None for python
    threads: int
    ms: float
    excluded: bool = False
    note: str = ""

    @property
    def label(self) -> str:
        if self.system == "python":
            return "Python"
        return f"{self.system.capitalize()}/{self.backend}"


def time_callable(fn: Callable, warmups: int = 1, repeats: int = 3) -> float:
    """Mean wall-clock milliseconds over *repeats* runs after warm-up."""
    for _ in range(warmups):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    return float(np.mean(times))


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))


class TpchBench:
    """TPC-H experiment driver (Figures 3, 4, 7, 10)."""

    def __init__(self, scale_factor: float | None = None, seed: int = 42):
        if scale_factor is None:
            scale_factor = float(os.environ.get("REPRO_TPCH_SF", "0.005"))
        self.scale_factor = scale_factor
        self.dataset = generate(scale_factor=scale_factor, seed=seed)
        self.db = connect()
        register_tpch(self.db, self.dataset)
        self.frames = {name: DataFrame(cols) for name, cols in self.dataset.items()}
        self._sql_cache: dict[tuple[int, str, str], str] = {}

    # -- single measurements -------------------------------------------------
    def python_runner(self, query: int) -> Callable:
        fn = QUERIES[query]
        frames = [self.frames[t] for t in QUERY_TABLES[query]]
        return lambda: fn(*frames)

    def sql_for(self, query: int, system: str, backend: str) -> str:
        level = _SYSTEM_LEVEL[system]
        key = (query, level, backend)
        if key not in self._sql_cache:
            self._sql_cache[key] = QUERIES[query].sql(backend, level=level, db=self.db)
        return self._sql_cache[key]

    def sql_runner(self, query: int, system: str, backend: str, threads: int) -> Callable:
        backend_obj = get_backend(backend)
        if f"tpch_q{query}" in getattr(backend_obj, "rejects", frozenset()):
            raise UnsupportedFeatureError(f"{backend}: rejects TPC-H Q{query}")
        if system == "grizzly" and not backend_obj.supports(("window",)):
            raise UnsupportedFeatureError(
                f"{backend}: no window functions; Grizzly-simulated UID generation unavailable"
            )
        sql = self.sql_for(query, system, backend)
        if isinstance(backend_obj, Backend):
            config = backend_obj.config(threads=threads)
            return lambda: self.db.execute(sql, config=config)
        # Oracle backends (sqlite, duckdb_real) execute through the Protocol
        # against a cached mirror of the benchmark tables.
        artifact = backend_obj.compile(sql, dialect=backend_obj.dialect.name)
        return lambda: backend_obj.execute(self.db, artifact)

    def explain_plan(self, query: int, system: str = "pytond",
                     backend: str = "hyper") -> str:
        """The compiled physical plan for a TPC-H query on a backend
        (pushdown, join order, cardinality estimates) without executing."""
        sql = self.sql_for(query, system, backend)
        config = get_backend(backend).config()
        return self.db.explain_plan(sql, config=config)

    # -- sweeps -------------------------------------------------------------------
    def run(
        self,
        queries: Iterable[int] = range(1, 23),
        systems: Iterable[str] = ("python", "grizzly", "pytond"),
        backends: Iterable[str] = ("duckdb", "hyper", "lingodb"),
        threads: int = 1,
        warmups: int = 1,
        repeats: int = 2,
    ) -> list[Measurement]:
        out: list[Measurement] = []
        for q in queries:
            name = f"tpch_q{q}"
            for system in systems:
                if system == "python":
                    ms = time_callable(self.python_runner(q), warmups, repeats)
                    out.append(Measurement(name, "python", None, 1, ms))
                    continue
                for backend in backends:
                    if system == "grizzly" and backend == "lingodb":
                        out.append(Measurement(name, system, backend, threads, float("nan"),
                                               excluded=True, note="no window functions"))
                        continue
                    try:
                        runner = self.sql_runner(q, system, backend, threads)
                        ms = time_callable(runner, warmups, repeats)
                        out.append(Measurement(name, system, backend, threads, ms))
                    except (UnsupportedFeatureError, ReproError) as exc:
                        out.append(Measurement(name, system, backend, threads, float("nan"),
                                               excluded=True, note=str(exc)))
        return out

    def scalability(
        self,
        queries: Iterable[int],
        systems_backends: Iterable[tuple[str, str | None]],
        thread_counts: Iterable[int] = (1, 2, 3, 4),
        warmups: int = 1,
        repeats: int = 2,
    ) -> list[Measurement]:
        """Per-configuration timings across thread counts (Figure 7)."""
        out: list[Measurement] = []
        for q in queries:
            name = f"tpch_q{q}"
            for system, backend in systems_backends:
                for threads in thread_counts:
                    if system == "python":
                        if threads == 1:
                            ms = time_callable(self.python_runner(q), warmups, repeats)
                        else:
                            ms = out[-1].ms  # Pandas-style: no parallelism
                        out.append(Measurement(name, "python", None, threads, ms))
                        continue
                    try:
                        runner = self.sql_runner(q, system, backend, threads)
                        ms = time_callable(runner, warmups, repeats)
                        out.append(Measurement(name, system, backend, threads, ms))
                    except (UnsupportedFeatureError, ReproError) as exc:
                        out.append(Measurement(name, system, backend, threads, float("nan"),
                                               excluded=True, note=str(exc)))
        return out

    def optimization_breakdown(
        self,
        query: int,
        backends: Iterable[str] = ("duckdb", "hyper"),
        levels: Iterable[str] = ("O0", "O1", "O2", "O3", "O4"),
        warmups: int = 1,
        repeats: int = 2,
    ) -> dict[str, dict[str, float]]:
        """O0..O4 timings per backend (Figure 10)."""
        out: dict[str, dict[str, float]] = {}
        fn = QUERIES[query]
        for backend in backends:
            backend_obj = get_backend(backend)
            series: dict[str, float] = {}
            for level in levels:
                sql = fn.sql(backend, level=level, db=self.db)
                config = backend_obj.config(threads=1)
                series[level] = time_callable(lambda: self.db.execute(sql, config=config),
                                              warmups, repeats)
            out[backend] = series
        return out


class WorkloadBench:
    """Hybrid data-science workload driver (Figures 5, 6, 8, 10)."""

    def __init__(self, scale: float | None = None):
        if scale is None:
            scale = float(os.environ.get("REPRO_DS_SCALE", "0.05"))
        self.scale = scale
        self.envs: dict[str, tuple] = {}

    def _env(self, name: str):
        if name not in self.envs:
            workload = WORKLOADS[name]
            dataset = workload.make_data(scale=self.scale)
            db = connect()
            workload.register(db, dataset)
            frames = [DataFrame(dataset[t]) for t in workload.tables]
            self.envs[name] = (workload, db, frames)
        return self.envs[name]

    def python_runner(self, name: str) -> Callable:
        workload, _, frames = self._env(name)
        return lambda: workload.fn(*frames)

    def sql_runner(self, name: str, system: str, backend: str, threads: int) -> Callable:
        workload, db, _ = self._env(name)
        backend_obj = get_backend(backend)
        level = _SYSTEM_LEVEL[system]
        sql = workload.fn.sql(backend, level=level, db=db)
        if isinstance(backend_obj, Backend):
            config = backend_obj.config(threads=threads)
            return lambda: db.execute(sql, config=config)
        artifact = backend_obj.compile(sql, dialect=backend_obj.dialect.name)
        return lambda: backend_obj.execute(db, artifact)

    def run(
        self,
        names: Iterable[str],
        systems: Iterable[str] = ("python", "grizzly", "pytond"),
        backends: Iterable[str] = ("duckdb", "hyper", "lingodb"),
        threads: int = 1,
        warmups: int = 1,
        repeats: int = 2,
    ) -> list[Measurement]:
        out: list[Measurement] = []
        for name in names:
            for system in systems:
                if system == "python":
                    ms = time_callable(self.python_runner(name), warmups, repeats)
                    out.append(Measurement(name, "python", None, 1, ms))
                    continue
                for backend in backends:
                    backend_obj = get_backend(backend)
                    needs_window = system == "grizzly" or name.startswith("hybrid")
                    if not backend_obj.supports(("window",)) and system == "grizzly":
                        out.append(Measurement(name, system, backend, threads, float("nan"),
                                               excluded=True, note="no window functions"))
                        continue
                    try:
                        runner = self.sql_runner(name, system, backend, threads)
                        ms = time_callable(runner, warmups, repeats)
                        out.append(Measurement(name, system, backend, threads, ms))
                    except (UnsupportedFeatureError, ReproError) as exc:
                        out.append(Measurement(name, system, backend, threads, float("nan"),
                                               excluded=True, note=str(exc)))
        return out

    def optimization_breakdown(self, name: str, backends=("duckdb", "hyper"),
                               levels=("O0", "O1", "O2", "O3", "O4"),
                               warmups: int = 1, repeats: int = 2) -> dict[str, dict[str, float]]:
        workload, db, _ = self._env(name)
        out: dict[str, dict[str, float]] = {}
        for backend in backends:
            backend_obj = get_backend(backend)
            series: dict[str, float] = {}
            for level in levels:
                sql = workload.fn.sql(backend, level=level, db=db)
                config = backend_obj.config(threads=1)
                series[level] = time_callable(lambda: db.execute(sql, config=config),
                                              warmups, repeats)
            out[backend] = series
        return out
