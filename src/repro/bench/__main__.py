"""Command-line benchmark runner: ``python -m repro.bench <figure> [...]``.

Examples::

    python -m repro.bench table1
    python -m repro.bench backends
    python -m repro.bench fig3 --sf 0.01
    python -m repro.bench fig5 --scale 0.05 --threads 1
    python -m repro.bench fig10
    python -m repro.bench serve --clients 8 --seconds 2
    python -m repro.bench serve --net --shard-workers 2 --report net.json
    python -m repro.bench storage --sf 0.005 --budget 65536 --report out.json
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys

from ..backends import backend_infos
from ..errors import BackendError
from .harness import TpchBench, WorkloadBench
from .report import capability_matrix, format_series, scalability_table, speedup_summary

DS_WORKLOADS = ["crime_index", "birth_analysis", "hybrid_covar_nf", "hybrid_covar_f",
                "hybrid_mv_nf", "hybrid_mv_f", "n3", "n9"]


def _fig_tpch(args, threads: int) -> str:
    bench = TpchBench(scale_factor=args.sf)
    measurements = bench.run(threads=threads, repeats=args.repeats)
    title = f"TPC-H runtimes, {threads} thread(s), SF={bench.scale_factor}"
    return format_series(title, measurements) + "\n\n" + speedup_summary(measurements)


def _fig_ds(args, threads: int) -> str:
    bench = WorkloadBench(scale=args.scale)
    measurements = bench.run(DS_WORKLOADS, threads=threads, repeats=args.repeats)
    title = f"Data-science workloads, {threads} thread(s), scale={bench.scale}"
    return format_series(title, measurements) + "\n\n" + speedup_summary(measurements)


def _fig7(args) -> str:
    bench = TpchBench(scale_factor=args.sf)
    configs = [("python", None), ("pytond", "duckdb"), ("pytond", "hyper")]
    measurements = bench.scalability([4, 6, 13, 22], configs, repeats=args.repeats)
    return "TPC-H scalability\n" + scalability_table(measurements)


def _serve(args) -> str:
    """Serving-layer load run: N concurrent sessions replaying the
    parameterized TPC-H mix; reports QPS and p50/p99.  ``--net`` runs the
    same mix over real TCP sockets through the wire protocol, and
    ``--shard-workers K`` serves from a column store with scatter/gather
    execution across K worker processes."""
    import json

    from ..server import (make_sharded_tpch_db, make_tpch_db, run_load,
                          run_net_load)
    from ..sqlengine import EngineConfig

    config = EngineConfig(threads=args.threads,
                          shard_workers=max(0, args.shard_workers))
    if args.shard_workers > 0:
        db = make_sharded_tpch_db(scale_factor=args.sf, config=config,
                                  workers=args.shard_workers)
    else:
        db = make_tpch_db(scale_factor=args.sf, config=config)
    if args.net:
        report = run_net_load(db, clients=args.clients,
                              duration=args.seconds)
    else:
        report = run_load(db, clients=args.clients, duration=args.seconds)
    cache = db.cache_stats()
    lines = [
        report.summary(),
        f"plan cache: {cache['entries']} entries, {cache['hits']} hits, "
        f"{cache['misses']} misses, {cache['evictions']} evictions",
    ]
    shard = getattr(db, "shard_stats", None)
    if shard is not None:
        lines.append(
            f"sharding:   scattered {shard['scattered']}  fallbacks "
            f"{shard['fallbacks']}  errors {shard['shard_errors']}  "
            f"restarts {shard['restarts']}"
        )
        db.close_pools()
    if args.report:
        payload = {
            "workload": {
                "kind": "serve-net" if args.net else "serve",
                "sf": args.sf,
                "clients": args.clients,
                "seconds": args.seconds,
                "threads": args.threads,
                "shard_workers": args.shard_workers,
            },
            "runs": [{
                "shard_workers": args.shard_workers,
                "queries": report.queries,
                "errors": report.errors,
                "rejected": report.rejected,
                "timeouts": report.timeouts,
                "qps": report.qps,
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
            }],
            "identical_results": None,
        }
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        lines.append(f"report written to {args.report}")
    return "\n".join(lines)


def _backends(args) -> str:
    """The registered execution backends: name, kind, version, capabilities."""
    lines = [f"{'name':<12} {'kind':<18} {'version':<14} capabilities"]
    for info in backend_infos():
        caps = ", ".join(info.capabilities)
        avail = "" if info.available else "  [unavailable]"
        lines.append(f"{info.name:<12} {info.kind:<18} {info.version:<14} "
                     f"{caps}{avail}")
        if info.description:
            lines.append(f"{'':<12} {info.description}")
    return "\n".join(lines)


def _storage(args) -> str:
    """Column-store ingest / reload / prune / spill report."""
    from .storage import storage_report

    return storage_report(sf=args.sf, chunk_rows=args.chunk_rows,
                          budget=args.budget, report_path=args.report)


def _fig10(args) -> str:
    tpch = TpchBench(scale_factor=args.sf)
    ds = WorkloadBench(scale=args.scale)
    lines = ["Optimization breakdown (ms per level)"]
    for q in (9, 15):
        for backend, series in tpch.optimization_breakdown(q, repeats=args.repeats).items():
            cells = "  ".join(f"{lvl}={ms:8.2f}" for lvl, ms in series.items())
            lines.append(f"tpch_q{q:<10} {backend:<8} {cells}")
    for name in ("crime_index", "hybrid_covar_f"):
        for backend, series in ds.optimization_breakdown(name, repeats=args.repeats).items():
            cells = "  ".join(f"{lvl}={ms:8.2f}" for lvl, ms in series.items())
            lines.append(f"{name:<16} {backend:<8} {cells}")
    return "\n".join(lines)


FIGURES = {
    "table1": lambda args: capability_matrix(),
    "backends": _backends,
    "fig3": lambda args: _fig_tpch(args, threads=1),
    "fig4": lambda args: _fig_tpch(args, threads=4),
    "fig5": lambda args: _fig_ds(args, threads=1),
    "fig6": lambda args: _fig_ds(args, threads=4),
    "fig7": _fig7,
    "fig10": _fig10,
    "serve": _serve,
    "storage": _storage,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"],
                        help="which figure/table to regenerate")
    parser.add_argument("--sf", type=float, default=0.005,
                        help="TPC-H scale factor (default 0.005)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="data-science workload scale (default 0.05)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed rounds per configuration")
    serving = parser.add_argument_group("serve", "serving-layer load run")
    serving.add_argument("--clients", type=int, default=8,
                         help="concurrent load-generator sessions (default 8)")
    serving.add_argument("--seconds", type=float, default=2.0,
                         help="load duration in seconds (default 2)")
    serving.add_argument("--threads", type=int, default=1,
                         help="engine worker threads per query (default 1)")
    serving.add_argument("--net", action="store_true",
                         help="drive the load over real TCP sockets through "
                              "the wire protocol (default: in-process)")
    serving.add_argument("--shard-workers", type=int, default=0,
                         help="serve from a column store, scattering "
                              "shardable queries over this many worker "
                              "processes (default 0 = serial)")
    storage = parser.add_argument_group("storage", "column-store report")
    storage.add_argument("--chunk-rows", type=int, default=4096,
                         help="rows per storage chunk (default 4096)")
    storage.add_argument("--budget", type=int, default=65536,
                         help="memory budget in bytes for the spill run "
                              "(default 65536)")
    storage.add_argument("--report", default=None,
                         help="write the storage/serving report as JSON to "
                              "this path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "all":
        # "all" regenerates the paper's figures; the serving load run and
        # the storage report are separate experiments, invoked explicitly.
        targets = sorted(f for f in FIGURES if f not in ("serve", "storage"))
    else:
        targets = [args.figure]
    for name in targets:
        print(f"\n===== {name} =====")
        try:
            print(FIGURES[name](args))
        except BackendError as exc:
            # Registry errors (unknown/unavailable backend) are user input
            # problems, not crashes: a clean one-line message, exit 2.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
