"""Benchmark harness and reporting for the paper's figures."""

from .harness import Measurement, SYSTEMS, TpchBench, WorkloadBench, geomean, time_callable
from .report import capability_matrix, format_series, scalability_table, speedup_summary
from .validate import ValidationResult, compare_results, validate_all, validate_tpch, validate_workloads

__all__ = [
    "Measurement", "SYSTEMS", "TpchBench", "WorkloadBench",
    "geomean", "time_callable",
    "capability_matrix", "format_series", "scalability_table", "speedup_summary",
    "ValidationResult", "compare_results", "validate_all", "validate_tpch",
    "validate_workloads",
]
