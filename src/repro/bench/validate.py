"""Correctness validation harness: Python baseline vs in-database execution.

Used by the test-suite and as a standalone check
(``python -c "from repro.bench.validate import validate_all; print(validate_all())"``):
runs every TPC-H query and every data-science workload on every backend and
compares against the eager Python execution of the same function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends import get_backend
from ..dataframe import DataFrame
from ..errors import ReproError, UnsupportedFeatureError
from ..sqlengine import connect
from ..workloads import WORKLOADS
from ..workloads.tpch import QUERIES, QUERY_TABLES, generate, register_tpch

__all__ = ["ValidationResult", "compare_results", "validate_tpch", "validate_workloads", "validate_all"]


@dataclass
class ValidationResult:
    name: str
    backend: str
    level: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        suffix = f" ({self.detail})" if self.detail and not self.ok else ""
        return f"{self.name} [{self.backend}/{self.level}]: {status}{suffix}"


def compare_results(python_result, db_result, rel_tol: float = 1e-6) -> tuple[bool, str]:
    """Compare a Python-baseline result against a database DataFrame."""
    if isinstance(python_result, np.ndarray):
        d = db_result.to_dict()
        if "ID" in d:
            order = np.argsort(d["ID"])
            got = np.column_stack([np.asarray(d[k])[order] for k in d if k != "ID"])
        else:
            got = np.column_stack([np.asarray(v) for v in d.values()])
        ref = python_result.reshape(-1, 1) if python_result.ndim == 1 else python_result
        if got.shape != ref.shape:
            return False, f"shape {got.shape} != {ref.shape}"
        if not np.allclose(got, ref, rtol=rel_tol, equal_nan=True):
            return False, "array values differ"
        return True, ""
    if hasattr(python_result, "columns"):
        a = _rows(python_result.reset_index(drop=True).to_dict())
        b = _rows(db_result.to_dict())
        if a == b:
            return True, ""
        if sorted(map(str, a)) == sorted(map(str, b)):
            return True, "row order differs within sort ties"
        return False, f"rows differ: {a[:2]} vs {b[:2]}"
    # scalar
    got = list(db_result.to_dict().values())[0][0]
    ref = float(python_result)
    if got is None or got != got:
        return (ref != ref), "scalar NULL"
    if abs(float(got) - ref) <= rel_tol * max(1.0, abs(ref)):
        return True, ""
    return False, f"scalar {got} != {ref}"


def _rows(d: dict) -> list[tuple]:
    cols = list(d.values())
    n = len(cols[0]) if cols else 0
    return [
        tuple(round(c[i], 6) if isinstance(c[i], float) else c[i] for c in cols)
        for i in range(n)
    ]


def validate_tpch(
    scale_factor: float = 0.002,
    backends: tuple[str, ...] = ("duckdb", "hyper", "lingodb"),
    levels: tuple[str, ...] = ("O0", "O4"),
    seed: int = 7,
) -> list[ValidationResult]:
    dataset = generate(scale_factor=scale_factor, seed=seed)
    db = connect()
    register_tpch(db, dataset)
    frames = {name: DataFrame(cols) for name, cols in dataset.items()}
    out: list[ValidationResult] = []
    for q, fn in QUERIES.items():
        py = fn(*[frames[t] for t in QUERY_TABLES[q]])
        for backend in backends:
            if f"tpch_q{q}" in getattr(get_backend(backend), "rejects", frozenset()):
                continue
            for level in levels:
                name = f"tpch_q{q}"
                try:
                    res = fn.run(db, backend, level=level)
                    ok, detail = compare_results(py, res)
                except (ReproError, UnsupportedFeatureError) as exc:
                    ok, detail = False, f"{type(exc).__name__}: {exc}"
                out.append(ValidationResult(name, backend, level, ok, detail))
    return out


def validate_workloads(
    scale: float = 0.01,
    backends: tuple[str, ...] = ("duckdb", "hyper"),
    levels: tuple[str, ...] = ("O0", "O4"),
) -> list[ValidationResult]:
    out: list[ValidationResult] = []
    for name, workload in WORKLOADS.items():
        dataset = workload.make_data(scale=scale)
        db = connect()
        workload.register(db, dataset)
        frames = [DataFrame(dataset[t]) for t in workload.tables]
        py = workload.fn(*frames)
        for backend in backends:
            for level in levels:
                try:
                    res = workload.fn.run(db, backend, level=level)
                    ok, detail = compare_results(py, res)
                except (ReproError, UnsupportedFeatureError) as exc:
                    ok, detail = False, f"{type(exc).__name__}: {exc}"
                out.append(ValidationResult(name, backend, level, ok, detail))
    return out


def validate_all(scale_factor: float = 0.002, scale: float = 0.01) -> str:
    """Run every validation; returns a human-readable report."""
    results = validate_tpch(scale_factor) + validate_workloads(scale)
    failures = [r for r in results if not r.ok]
    lines = [f"validated {len(results)} configurations, {len(failures)} failure(s)"]
    lines += [str(r) for r in failures]
    return "\n".join(lines)
