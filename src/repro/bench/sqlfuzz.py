"""Grammar-driven SQL fuzzer, differential-tested against sqlite3.

The generator builds *structured* query specs (:class:`SelectSpec`) from a
weighted grammar over a fixed fuzz schema — joins, set operations, windows,
grouped aggregates, and NULL-heavy subquery predicates (``IN``/``NOT IN``
with NULL-laden inner results, correlated ``EXISTS``, scalar subqueries,
predicates under OR) — renders them to SQL, and runs each query through our
engine (at several thread counts) and through the stdlib ``sqlite3`` oracle
on mirrored data.  Any divergence (row mismatch, or one engine erroring
where the other succeeds) is *shrunk*: reduction passes drop spec parts
while the divergence reproduces, converging on a minimal repro.

Determinism: every query is a pure function of its integer seed, so a
failing seed is a stable repro across runs and machines.  The grammar stays
inside the dialect both engines implement with identical semantics — e.g.
``/`` is excluded (sqlite truncates integer division, we don't), ORDER BY
keys under LIMIT are total orders, and window ORDER BY keys are non-null
(the engines disagree on NULL placement).

Entry points: :func:`build_fuzz_db`, :func:`generate` (seed -> spec),
:func:`run_seeds` (differential sweep used by ``tests/fuzz``; its
``oracle=`` names any registered oracle backend — ``sqlite`` by default,
``duckdb_real`` when installed), and :func:`shrink`.  ``tools/fuzz.py``
wraps them in a CLI (``--backend``) for longer runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

import numpy as np

from ..backends import ExecutionBackend, get_backend
from ..sqlengine import Database, EngineConfig, connect
from .differential import rows_equal
from ..backends.rows import chunk_rows, normalize_rows

__all__ = ["build_fuzz_db", "generate", "render", "run_seeds",
           "run_seeds_adaptive", "run_seeds_spill", "run_seeds_verify",
           "shrink", "Divergence", "SelectSpec"]


# ---------------------------------------------------------------------------
# Fuzz schema
# ---------------------------------------------------------------------------

def build_fuzz_db(nrows: int = 220, seed: int = 99) -> Database:
    """The fixed two-table schema every generated query runs against.

    ``orders`` is the fact side (nullable float ``disc``, nullable string
    ``note``); ``parts`` is the dimension side whose ``grp`` overlaps
    ``orders.cust`` and whose ``w``/``code`` columns are NULL-heavy — the
    inner relations that make ``NOT IN`` three-valued semantics observable.
    """
    rng = np.random.default_rng(seed)
    db = connect()
    disc = np.round(rng.uniform(0.0, 8.0, nrows), 2)
    disc[rng.random(nrows) < 0.2] = np.nan
    db.register(
        "orders",
        {
            "id": np.arange(1, nrows + 1, dtype=np.int64),
            "cust": rng.integers(0, 26, nrows),
            "qty": rng.integers(0, 20, nrows),
            "amt": np.round(rng.uniform(1.0, 500.0, nrows), 2),
            "disc": disc,
            "day": (np.datetime64("2020-01-01") +
                    rng.integers(0, 365, nrows).astype("timedelta64[D]")),
            "tag": rng.choice(np.array(["red", "blue", "green", "amber"],
                                       dtype=object), nrows),
            "note": rng.choice(np.array(["ok", "late", "hold", None],
                                        dtype=object), nrows),
        },
        primary_key="id",
    )
    nparts = 60
    w = np.round(rng.uniform(0.0, 10.0, nparts), 2)
    w[rng.random(nparts) < 0.25] = np.nan
    db.register(
        "parts",
        {
            "pid": rng.integers(0, 40, nparts),
            "grp": rng.integers(0, 30, nparts),
            "w": w,
            "label": rng.choice(np.array(["red", "blue", "green", "violet"],
                                         dtype=object), nparts),
            "code": rng.choice(np.array(["ok", "late", "void", None],
                                        dtype=object), nparts),
        },
    )
    return db


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------

@dataclass
class SelectSpec:
    """A renderable, shrinkable SELECT: clause parts as plain SQL strings."""

    items: list[str]
    from_: str
    joins: list[str] = field(default_factory=list)
    where: list[str] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    having: list[str] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    setop: tuple[str, "SelectSpec"] | None = None


def render(spec: SelectSpec) -> str:
    parts = ["SELECT " + ("DISTINCT " if spec.distinct else "") +
             ", ".join(spec.items), "FROM " + spec.from_]
    parts.extend(spec.joins)
    if spec.where:
        parts.append("WHERE " + " AND ".join(spec.where))
    if spec.group_by:
        parts.append("GROUP BY " + ", ".join(spec.group_by))
    if spec.having:
        parts.append("HAVING " + " AND ".join(spec.having))
    if spec.setop is not None:
        op, other = spec.setop
        parts.append(op)
        parts.append(render(other))
    if spec.order_by:
        parts.append("ORDER BY " + ", ".join(spec.order_by))
    if spec.limit is not None:
        parts.append(f"LIMIT {spec.limit}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Grammar
# ---------------------------------------------------------------------------

class _Gen:
    """One seeded query generation (a bag of weighted template choices)."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- scalar pools --------------------------------------------------------
    def _num_lit(self) -> str:
        return self.rng.choice(["3", "7", "12", "18", "50.0", "120.0",
                                "250.0", "400.0", "2.5", "5.0"])

    def _o_num_col(self) -> str:
        return self.rng.choice(["o.qty", "o.amt", "o.cust", "o.disc"])

    def _cmp(self) -> str:
        return self.rng.choice(["<", "<=", ">", ">=", "=", "<>"])

    # -- predicates over orders (alias o) ------------------------------------
    def _plain_pred(self) -> str:
        r = self.rng
        return r.choice([
            lambda: f"{self._o_num_col()} {self._cmp()} {self._num_lit()}",
            lambda: f"o.qty BETWEEN {r.randint(0, 8)} AND {r.randint(9, 19)}",
            lambda: "o.tag IN ('red', 'blue')",
            lambda: "o.tag = " + r.choice(["'red'", "'green'", "'amber'"]),
            lambda: "o.note IS NULL",
            lambda: "o.note IS NOT NULL",
            lambda: "o.note IN ('ok', NULL)",
            lambda: "o.note NOT IN ('ok', 'late')",
            lambda: f"o.qty NOT IN ({r.randint(0, 5)}, {r.randint(6, 12)}, NULL)",
            lambda: f"o.qty IN ({r.randint(0, 6)}, {r.randint(7, 13)}, {r.randint(14, 19)})",
            lambda: "o.tag LIKE " + r.choice(["'r%'", "'%e%'", "'b_ue'"]),
            lambda: "o.note LIKE 'l_te'",
            lambda: f"o.day >= '2020-{r.randint(1, 9):02d}-01'",
            lambda: f"o.day < '2020-1{r.randint(0, 2)}-15'",
            lambda: f"o.amt + o.qty > {self._num_lit()}",
            lambda: f"(o.qty > {r.randint(10, 18)} OR o.amt < {self._num_lit()})",
        ])()

    def _parts_pred(self) -> str:
        r = self.rng
        return r.choice([
            lambda: f"w > {r.choice(['1.0', '2.5', '5.0', '8.0'])}",
            lambda: f"grp < {r.randint(5, 28)}",
            lambda: "label = " + r.choice(["'red'", "'blue'", "'violet'"]),
            lambda: "code IS NOT NULL",
            lambda: f"pid >= {r.randint(0, 30)}",
        ])()

    def _subquery_pred(self) -> str:
        r = self.rng
        in_col, inner = r.choice([
            ("o.cust", "SELECT grp FROM parts"),
            ("o.qty", "SELECT pid FROM parts"),
            ("o.note", "SELECT code FROM parts"),      # NULL-laden inner
            ("o.tag", "SELECT label FROM parts"),
            ("o.disc", "SELECT w FROM parts"),         # NULL-laden float
        ])
        inner_filtered = f"{inner} WHERE {self._parts_pred()}"
        choices = [
            lambda: f"{in_col} IN ({inner_filtered})",
            lambda: f"{in_col} NOT IN ({inner_filtered})",
            lambda: f"{in_col} IN ({inner})",
            lambda: f"{in_col} NOT IN ({inner})",
            lambda: f"NOT ({in_col} IN ({inner}))",
            lambda: ("EXISTS (SELECT 1 FROM parts AS px WHERE "
                     f"px.grp = o.cust AND px.{self._parts_pred()})"),
            lambda: ("NOT EXISTS (SELECT 1 FROM parts AS px WHERE "
                     f"px.grp = o.cust AND px.{self._parts_pred()})"),
            lambda: ("o.note NOT IN (SELECT code FROM parts AS px "
                     "WHERE px.grp = o.cust)"),        # correlated NOT IN
            lambda: ("o.amt > (SELECT " +
                     r.choice(["AVG(w) FROM parts",
                               "MIN(w) * 40.0 FROM parts",
                               f"MAX(w) FROM parts WHERE w > {r.randint(2, 11)}.0"])
                     + ")"),                            # scalar (may be empty)
            lambda: (f"({in_col} IN ({inner_filtered}) "
                     f"OR {self._plain_pred()})"),      # mark-join shape
            lambda: ("(NOT EXISTS (SELECT 1 FROM parts AS px WHERE "
                     f"px.grp = o.cust) OR o.qty > {r.randint(5, 15)})"),
        ]
        return r.choice(choices)()

    def _where(self, nmin: int = 0, nmax: int = 3,
               subquery_weight: float = 0.45) -> list[str]:
        out = []
        for _ in range(self.rng.randint(nmin, nmax)):
            if self.rng.random() < subquery_weight:
                out.append(self._subquery_pred())
            else:
                out.append(self._plain_pred())
        return out

    # -- projections ---------------------------------------------------------
    def _o_item(self) -> str:
        r = self.rng
        return r.choice([
            "o.id", "o.cust", "o.qty", "o.amt", "o.tag", "o.note", "o.day",
            "o.disc", "o.amt * 2.0 AS amt2", "o.qty + o.cust AS qc",
            "o.amt - o.disc AS net",
            "CASE WHEN o.amt > 250.0 THEN 'big' ELSE 'small' END AS bucket",
        ])

    # -- shapes --------------------------------------------------------------
    def query(self) -> SelectSpec:
        shape = self.rng.choices(
            ["simple", "join", "agg", "setop", "window"],
            weights=[30, 20, 20, 15, 15],
        )[0]
        return getattr(self, f"_shape_{shape}")()

    def _shape_simple(self) -> SelectSpec:
        r = self.rng
        nitems = r.randint(1, 3)
        items = ["o.id"] + [self._o_item() for _ in range(nitems - 1)]
        spec = SelectSpec(items=items, from_="orders AS o",
                          where=self._where(1, 3))
        if r.random() < 0.25:
            spec.order_by = [r.choice(["o.amt DESC, o.id", "o.qty, o.id",
                                       "o.id DESC"])]
            spec.limit = r.randint(1, 25)
        if r.random() < 0.1:
            spec.items = [r.choice(["o.tag", "o.cust", "o.note"])]
            spec.distinct = True
            spec.order_by = []
            spec.limit = None
        return spec

    def _shape_join(self) -> SelectSpec:
        r = self.rng
        kind = r.choice(["JOIN", "JOIN", "LEFT JOIN"])
        join = f"{kind} parts AS p ON o.cust = p.grp"
        items = ["o.id", "p.pid"] + \
            [r.choice(["o.amt", "p.label", "p.w", "o.tag"])]
        where = self._where(0, 2)
        if r.random() < 0.5:
            where.append(r.choice([
                "p.w > 3.0", "p.label = 'blue'", "p.code IS NOT NULL",
                "p.pid < 25",
            ]))
        return SelectSpec(items=items, from_="orders AS o", joins=[join],
                          where=where)

    def _shape_agg(self) -> SelectSpec:
        r = self.rng
        keys = r.choice([["o.tag"], ["o.cust"], ["o.tag", "o.note"],
                         ["o.note"]])
        aggs = r.sample([
            "COUNT(*) AS n", "SUM(o.amt) AS total", "AVG(o.qty) AS aq",
            "MIN(o.amt) AS lo", "MAX(o.amt) AS hi", "COUNT(o.note) AS nn",
            "SUM(o.disc) AS sd", "COUNT(DISTINCT o.cust) AS dc",
        ], r.randint(1, 3))
        spec = SelectSpec(items=keys + aggs, from_="orders AS o",
                          where=self._where(0, 2), group_by=list(keys))
        if r.random() < 0.35:
            spec.having = [r.choice([
                "COUNT(*) > 2", "SUM(o.amt) > 500.0", "MAX(o.amt) < 490.0",
            ])]
        # ORDER BY ... LIMIT over grouped output only when every key is
        # non-nullable: the engines disagree on NULL sort placement (ours
        # sorts NULLs last, sqlite first), which under LIMIT changes the
        # surviving row set.
        if r.random() < 0.3 and all(k in ("o.tag", "o.cust") for k in keys):
            spec.order_by = [", ".join(keys)]
            spec.limit = r.randint(1, 10)
        return spec

    def _shape_setop(self) -> SelectSpec:
        r = self.rng
        op = r.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
        sig = r.choice(["int", "str"])
        if sig == "int":
            left_items, right_items = ["o.cust"], ["grp"]
        else:
            left_items, right_items = ["o.tag"], ["label"]
        left = SelectSpec(items=left_items, from_="orders AS o",
                          where=self._where(0, 2))
        right = SelectSpec(items=right_items, from_="parts",
                           where=[self._parts_pred()]
                           if r.random() < 0.7 else [])
        left.setop = (op, right)
        return left

    def _shape_window(self) -> SelectSpec:
        r = self.rng
        win = r.choice([
            "ROW_NUMBER() OVER (PARTITION BY o.tag ORDER BY o.amt DESC, o.id) AS rn",
            "RANK() OVER (PARTITION BY o.cust ORDER BY o.qty) AS rk",
            "DENSE_RANK() OVER (ORDER BY o.qty DESC) AS dr",
            "SUM(o.amt) OVER (PARTITION BY o.cust ORDER BY o.id) AS running",
            "LAG(o.amt) OVER (PARTITION BY o.tag ORDER BY o.id) AS prev",
            "LEAD(o.qty, 1, -1) OVER (ORDER BY o.id) AS nxt",
            "COUNT(o.note) OVER (PARTITION BY o.tag) AS notes",
            "AVG(o.amt) OVER (PARTITION BY o.cust ORDER BY o.id "
            "ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS a4",
        ])
        return SelectSpec(items=["o.id", win], from_="orders AS o",
                          where=self._where(0, 2))


def generate(seed: int) -> SelectSpec:
    """The query spec for one seed (pure function of the seed)."""
    return _Gen(seed).query()


# ---------------------------------------------------------------------------
# Differential execution + shrinking
# ---------------------------------------------------------------------------

@dataclass
class Divergence:
    """A confirmed engine-vs-oracle mismatch, with its shrunk repro."""

    seed: int
    threads: int
    sql: str
    detail: str
    shrunk_sql: str = ""
    oracle: str = "sqlite"

    def report(self) -> str:
        return (f"seed={self.seed} threads={self.threads} "
                f"oracle={self.oracle}\n"
                f"  divergence: {self.detail}\n"
                f"  sql:    {self.sql}\n"
                f"  shrunk: {self.shrunk_sql or self.sql}")


def _diff_detail(db: Database, oracle: ExecutionBackend, sql: str,
                 threads: int) -> str | None:
    """One engine-vs-oracle comparison; a string describes any divergence
    (row mismatch, or an error raised by only one side)."""
    config = EngineConfig(threads=threads)
    ours = theirs = None
    ours_exc = theirs_exc = None
    try:
        chunk = db.execute_chunk(sql, config)
        ours = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    except Exception as exc:  # any engine error is data here
        ours_exc = exc
    try:
        theirs = oracle.execute(db, oracle.compile(sql)).normalized()
    except Exception as exc:
        theirs_exc = exc
    if ours_exc is not None and theirs_exc is not None:
        return None  # both engines reject the query: agreement
    if ours_exc is not None:
        return (f"our engine raised {type(ours_exc).__name__}: {ours_exc} "
                f"({oracle.name} succeeded)")
    if theirs_exc is not None:
        return (f"{oracle.name} raised {type(theirs_exc).__name__}: "
                f"{theirs_exc} (our engine succeeded)")
    ok, detail = rows_equal(ours, theirs)
    return None if ok else detail


def shrink(spec: SelectSpec, diverges) -> SelectSpec:
    """Greedy spec-level shrinking: repeatedly apply the first reduction
    that still diverges, until a fixed point.  ``diverges(spec) -> bool``."""
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(spec):
            try:
                still = diverges(candidate)
            except Exception:  # invalid reduction, skip
                still = False
            if still:
                spec = candidate
                changed = True
                break
    return spec


def _reductions(spec: SelectSpec):
    """Candidate one-step reductions of a spec, most aggressive first."""
    if spec.setop is not None:
        yield replace(spec, setop=None)
        op, other = spec.setop
        yield replace(other, setop=None)
    if spec.limit is not None:
        yield replace(spec, limit=None, order_by=[])
    if spec.order_by:
        yield replace(spec, order_by=[])
    if spec.distinct:
        yield replace(spec, distinct=False)
    for i in range(len(spec.having)):
        yield replace(spec, having=spec.having[:i] + spec.having[i + 1:])
    for i in range(len(spec.where)):
        yield replace(spec, where=spec.where[:i] + spec.where[i + 1:])
    for i in range(len(spec.joins)):
        yield replace(spec, joins=spec.joins[:i] + spec.joins[i + 1:])
    # Drop non-key select items (keep at least one; never break GROUP BY by
    # removing a grouped key from the select list).
    keys = set(spec.group_by)
    if len(spec.items) > 1 and spec.setop is None:
        for i in range(len(spec.items) - 1, -1, -1):
            if spec.items[i] in keys:
                continue
            yield replace(spec, items=spec.items[:i] + spec.items[i + 1:])


def _spill_detail(db: Database, sql: str, budget: int, threads: int,
                  spill_partitions: int = 5) -> str | None:
    """One spilled-vs-in-memory comparison on our own engine: the same
    query runs under an unconstrained config and under *budget* (forcing
    the grace-partitioned join/aggregate fallbacks); a string describes any
    divergence."""
    base_cfg = EngineConfig(threads=threads)
    spill_cfg = EngineConfig(threads=threads, memory_budget=budget,
                             spill_partitions=spill_partitions)
    base = spilled = None
    base_exc = spill_exc = None
    try:
        chunk = db.execute_chunk(sql, base_cfg)
        base = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    except Exception as exc:  # any engine error is data here
        base_exc = exc
    try:
        chunk = db.execute_chunk(sql, spill_cfg)
        spilled = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    except Exception as exc:
        spill_exc = exc
    if base_exc is not None and spill_exc is not None:
        return None  # both configs reject the query: agreement
    if base_exc is not None:
        return (f"in-memory raised {type(base_exc).__name__}: {base_exc} "
                f"(spilled succeeded)")
    if spill_exc is not None:
        return (f"spilled raised {type(spill_exc).__name__}: {spill_exc} "
                f"(in-memory succeeded)")
    ok, detail = rows_equal(base, spilled)
    return None if ok else detail


def run_seeds_spill(db: Database, seeds, budget: int = 1024,
                    threads=(1, 4),
                    shrink_failures: bool = True) -> list[Divergence]:
    """Differentially test spilled execution against the in-memory engine.

    Every seed's query runs twice per thread count — once unconstrained,
    once under a *budget* low enough that hash joins and aggregates take
    the grace-partitioned spill path — and the row sets must agree.
    Divergences shrink exactly like oracle divergences.
    """
    failures: list[Divergence] = []
    for seed in seeds:
        spec = generate(seed)
        sql = render(spec)
        for t in threads:
            detail = _spill_detail(db, sql, budget, t)
            if detail is None:
                continue
            failure = Divergence(seed=seed, threads=t, sql=sql,
                                 detail=detail,
                                 oracle=f"in-memory(budget={budget})")
            if shrink_failures:
                small = shrink(
                    spec,
                    lambda s: _spill_detail(db, render(s), budget, t)
                    is not None,
                )
                failure.shrunk_sql = render(small)
            failures.append(failure)
            break  # one report per seed is enough
    return failures


def _adaptive_detail(db: Database, sql: str, threads: int,
                     ratio: float = 2.0) -> str | None:
    """One adaptive-vs-static comparison on our own engine: the same query
    runs under a static config and under adaptive execution with an
    aggressive re-plan *ratio* (so estimate feedback actually fires); a
    string describes any divergence."""
    static_cfg = EngineConfig(threads=threads)
    adaptive_cfg = EngineConfig(threads=threads, adaptive_execution=True,
                                adaptive_ratio=ratio)
    static = adaptive = None
    static_exc = adaptive_exc = None
    try:
        chunk = db.execute_chunk(sql, static_cfg)
        static = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    except Exception as exc:  # any engine error is data here
        static_exc = exc
    try:
        chunk = db.execute_chunk(sql, adaptive_cfg)
        adaptive = normalize_rows(chunk_rows(chunk)) if chunk.ncols else []
    except Exception as exc:
        adaptive_exc = exc
    if static_exc is not None and adaptive_exc is not None:
        return None  # both configs reject the query: agreement
    if static_exc is not None:
        return (f"static raised {type(static_exc).__name__}: {static_exc} "
                f"(adaptive succeeded)")
    if adaptive_exc is not None:
        return (f"adaptive raised {type(adaptive_exc).__name__}: "
                f"{adaptive_exc} (static succeeded)")
    ok, detail = rows_equal(static, adaptive)
    return None if ok else detail


def run_seeds_adaptive(db: Database, seeds, threads=(1, 4),
                       ratio: float = 2.0,
                       shrink_failures: bool = True) -> list[Divergence]:
    """Differentially test adaptive execution against the static engine.

    Every seed's query runs twice per thread count — once with the static
    planner's plan, once with adaptive re-optimization at a *ratio* low
    enough that estimate-feedback re-plans, build-side swaps, and
    empty-outer short-circuits actually trigger — and the row sets must
    agree.  Divergences shrink exactly like oracle divergences.
    """
    failures: list[Divergence] = []
    for seed in seeds:
        spec = generate(seed)
        sql = render(spec)
        for t in threads:
            detail = _adaptive_detail(db, sql, t, ratio)
            if detail is None:
                continue
            failure = Divergence(seed=seed, threads=t, sql=sql,
                                 detail=detail,
                                 oracle=f"static(ratio={ratio})")
            if shrink_failures:
                small = shrink(
                    spec,
                    lambda s: _adaptive_detail(db, render(s), t, ratio)
                    is not None,
                )
                failure.shrunk_sql = render(small)
            failures.append(failure)
            break  # one report per seed is enough
    return failures


def _verify_detail(db: Database, sql: str, threads: int) -> str | None:
    """One static-verification probe: plan the query with the plan verifier
    enabled and report a :class:`PlanInvariantError` as a divergence — the
    verifier rejecting a planner-built plan is by definition a bug in one
    of the two.  Ordinary user errors (parse/bind/unsupported) are not
    divergences, and neither is successful planning."""
    from ..errors import PlanInvariantError

    config = EngineConfig(threads=threads, verify_plans=True)
    try:
        db.explain_plan(sql, config=config)
    except PlanInvariantError as exc:
        return f"plan verifier rejected a planner-built plan: {exc}"
    except Exception:
        return None  # invalid query — both the planner and verifier agree
    return None


def run_seeds_verify(db: Database, seeds, threads=(1, 4),
                     shrink_failures: bool = True) -> list[Divergence]:
    """Statically verify the physical plans for *seeds*: every plannable
    query must pass the plan verifier with zero violations.  Divergences
    shrink exactly like oracle divergences."""
    failures: list[Divergence] = []
    for seed in seeds:
        spec = generate(seed)
        sql = render(spec)
        for t in threads:
            detail = _verify_detail(db, sql, t)
            if detail is None:
                continue
            failure = Divergence(seed=seed, threads=t, sql=sql,
                                 detail=detail, oracle="plan-verifier")
            if shrink_failures:
                small = shrink(
                    spec,
                    lambda s: _verify_detail(db, render(s), t) is not None,
                )
                failure.shrunk_sql = render(small)
            failures.append(failure)
            break  # one report per seed is enough
    return failures


def run_seeds(db: Database, seeds, threads=(1, 4), oracle="sqlite",
              shrink_failures: bool = True) -> list[Divergence]:
    """Differentially test the queries for *seeds* against *oracle* — any
    registered oracle backend name (or backend instance); returns
    divergences (each with a shrunk minimal repro when *shrink_failures*).

    The oracle's data mirror is cached inside the backend (per catalog
    version), so a multi-thousand-seed sweep loads the tables once.
    """
    oracle_obj = get_backend(oracle) if isinstance(oracle, str) else oracle
    failures: list[Divergence] = []
    for seed in seeds:
        spec = generate(seed)
        sql = render(spec)
        for t in threads:
            detail = _diff_detail(db, oracle_obj, sql, t)
            if detail is None:
                continue
            failure = Divergence(seed=seed, threads=t, sql=sql,
                                 detail=detail, oracle=oracle_obj.name)
            if shrink_failures:
                small = shrink(
                    spec,
                    lambda s: _diff_detail(db, oracle_obj, render(s), t)
                    is not None,
                )
                failure.shrunk_sql = render(small)
            failures.append(failure)
            break  # one report per seed is enough
    return failures
