"""Abstract syntax tree for the SQL dialect understood by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Expr", "Literal", "Parameter", "ColumnRef", "Star", "BinaryOp", "UnaryOp", "FuncCall",
    "AggCall", "CaseExpr", "CastExpr", "InList", "InSubquery", "ExistsExpr",
    "ScalarSubquery", "BetweenExpr", "IsNull", "LikeExpr", "WindowCall",
    "WindowFrame",
    "TableRef", "SubqueryRef", "JoinClause", "SelectItem", "OrderItem",
    "Select", "CompoundSelect", "SelectBody", "ValuesClause", "WithQuery",
    "Query",
]


class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: object  # int | float | str | bool | None | numpy datetime64

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass
class Parameter(Expr):
    """A bind-parameter placeholder: positional ``?`` or named ``:name``.

    Positional parameters carry a 0-based ``index`` assigned by the parser
    in left-to-right source order; named parameters carry ``name`` (several
    occurrences of the same name share one bound value).  The planner treats
    parameters as opaque scalars, so a compiled plan is reusable across
    executions with different values — the basis of prepared statements.
    """

    index: Optional[int] = None
    name: Optional[str] = None

    @property
    def key(self):
        """The binding key: the name for ``:name``, the index for ``?``."""
        return self.name if self.name is not None else self.index

    def __repr__(self) -> str:
        return f"Param(:{self.name})" if self.name is not None else f"Param(?{self.index})"


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __repr__(self) -> str:
        return f"Col({self.table + '.' if self.table else ''}{self.name})"


@dataclass
class Star(Expr):
    table: Optional[str] = None


@dataclass
class BinaryOp(Expr):
    op: str  # + - * / % = <> < <= > >= AND OR ||
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # NOT, -
    operand: Expr


@dataclass
class FuncCall(Expr):
    name: str
    args: list[Expr]


@dataclass
class AggCall(Expr):
    func: str  # SUM MIN MAX AVG COUNT
    arg: Optional[Expr]  # None for COUNT(*)
    distinct: bool = False


@dataclass
class WindowFrame:
    """A ``ROWS``/``RANGE BETWEEN <bound> AND <bound>`` frame clause.

    Bound kinds are ``unbounded_preceding`` | ``preceding`` | ``current`` |
    ``following`` | ``unbounded_following``; offsets are row counts and are
    only meaningful for ``preceding``/``following``.
    """

    unit: str = "rows"  # "rows" | "range"
    start_kind: str = "unbounded_preceding"
    start_offset: int = 0
    end_kind: str = "current"
    end_offset: int = 0


@dataclass
class WindowCall(Expr):
    """``func(args) OVER (PARTITION BY ... ORDER BY ... [frame])``.

    ``func`` is one of the ranking functions (ROW_NUMBER, RANK, DENSE_RANK,
    NTILE), the offset functions (LAG, LEAD), or an aggregate (SUM, AVG,
    MIN, MAX, COUNT) applied as a window.  ``frame`` is None when no frame
    clause was written (the executor applies the SQL default frame).
    """

    func: str
    partition_by: list[Expr] = field(default_factory=list)
    order_by: list["OrderItem"] = field(default_factory=list)
    args: list[Expr] = field(default_factory=list)
    frame: Optional[WindowFrame] = None


@dataclass
class CaseExpr(Expr):
    branches: list[tuple[Expr, Expr]]  # (condition, value)
    default: Optional[Expr]


@dataclass
class CastExpr(Expr):
    operand: Expr
    type_name: str


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    query: "Select"
    negated: bool = False


@dataclass
class ExistsExpr(Expr):
    query: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    query: "Select"


@dataclass
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class LikeExpr(Expr):
    """``operand [NOT] LIKE pattern [ESCAPE 'c']``.

    ``pattern`` is a string literal, a :class:`Parameter` placeholder
    (resolved to a string at bind time), or ``None`` when the pattern was
    the literal ``NULL`` (SQL: the whole predicate is NULL, i.e. no row
    matches).  ``escape`` is the single escape character of an ``ESCAPE``
    clause, if present.
    """

    operand: Expr
    pattern: Union[str, Parameter, None]
    negated: bool = False
    escape: Optional[str] = None


# ---------------------------------------------------------------------------
# Relations
# ---------------------------------------------------------------------------

@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    query: Union["Select", "ValuesClause"]
    alias: str
    column_names: Optional[list[str]] = None

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class JoinClause:
    kind: str  # INNER LEFT RIGHT FULL CROSS
    relation: Union[TableRef, SubqueryRef]
    condition: Optional[Expr]


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    items: list[SelectItem]
    relations: list[Union[TableRef, SubqueryRef]] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass
class CompoundSelect:
    """A set operation between two select bodies.

    ``op`` is ``"union"`` | ``"intersect"`` | ``"except"``; ``all`` keeps
    duplicates (multiset semantics).  A trailing ``ORDER BY``/``LIMIT``
    written after the compound attaches here, never to the right operand
    (SQL's grammar: set operators bind tighter than ORDER BY).  Operands
    may themselves be compounds — ``INTERSECT`` binds tighter than
    ``UNION``/``EXCEPT``, which associate left.
    """

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: "SelectBody"
    right: "SelectBody"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


# A query body: either a plain SELECT or a tree of set operations.
SelectBody = Union[Select, CompoundSelect]


@dataclass
class ValuesClause:
    rows: list[list[Expr]]


@dataclass
class WithQuery:
    name: str
    column_names: Optional[list[str]]
    query: Union[Select, CompoundSelect, ValuesClause]


@dataclass
class Query:
    """A full statement: optional WITH chain plus the final body (a plain
    SELECT or a compound of set operations)."""

    ctes: list[WithQuery]
    body: SelectBody
