"""Physical query operators: the executable plan representation.

A :class:`PhysicalPlan` is a tree of composable operators produced by
:mod:`.planner` (one plan per ``SELECT`` body).  Each operator knows how to

* ``execute(ctx)`` itself into a :class:`OpResult` (chunk + scope), and
* render itself for ``EXPLAIN`` (:meth:`PhysicalPlan.render`).

The split mirrors production engines: the planner makes every decision that
can be made statically (pushdown, projection pruning, join order from
cardinality estimates), while operators only carry out those decisions.
Data-dependent work — subquery execution, projection/aggregation expression
evaluation — is delegated back to the :class:`~.executor.Executor` through
:class:`ExecContext`; window functions are evaluated by the dedicated
:class:`Window` operator over the kernels in :mod:`.window`.

``HashJoin`` probes, ``HashAggregate`` reductions, and ``Window`` partition
reductions are morsel-parallel across the shared :mod:`.parallel` pool
(NumPy kernels release the GIL), extending the seed engine's
filter/projection parallelism to the operators that dominate analytical
workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import SQLExecutionError, UnsupportedFeatureError
from .expressions import Evaluator, Scope
from .joins import combine_chunks, join_positions
from .parallel import parallel_map, parallel_masks
from .sqlast import (
    AggCall, BetweenExpr, BinaryOp, CaseExpr, CastExpr, ColumnRef, ExistsExpr,
    Expr, FuncCall, InList, InSubquery, IsNull, LikeExpr, Literal, OrderItem,
    Parameter, ScalarSubquery, Select, Star, UnaryOp, WindowCall, WindowFrame,
)
from .table import Chunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable, Iterator

    from .executor import EngineConfig, Executor

__all__ = [
    "ExecContext", "OpResult", "Operator", "Scan", "SubqueryScan", "DualScan",
    "Filter", "CrossJoin", "HashJoin", "ResidualFilter", "Window", "Project",
    "HashAggregate", "Distinct", "Sort", "TopK", "Limit", "SetOp",
    "SemiJoin", "AntiJoin", "MarkJoin", "ScalarSubqueryScan",
    "AdaptiveSource", "AdaptiveJoin", "Materialized",
    "PhysicalPlan", "expr_to_str", "window_to_str", "frame_to_str",
]


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------

def expr_to_str(expr: Expr) -> str:
    """Compact SQL-ish rendering of an expression for EXPLAIN output."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, Parameter):
        return f":{expr.name}" if expr.name is not None else "?"
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, BinaryOp):
        return f"({expr_to_str(expr.left)} {expr.op} {expr_to_str(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op} {expr_to_str(expr.operand)})"
    if isinstance(expr, FuncCall):
        return f"{expr.name}({', '.join(expr_to_str(a) for a in expr.args)})"
    if isinstance(expr, AggCall):
        arg = "*" if expr.arg is None else expr_to_str(expr.arg)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{arg})"
    if isinstance(expr, WindowCall):
        return window_to_str(expr)
    if isinstance(expr, CastExpr):
        return f"CAST({expr_to_str(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, CaseExpr):
        return "CASE ... END"
    if isinstance(expr, InList):
        neg = "NOT " if expr.negated else ""
        return f"{expr_to_str(expr.operand)} {neg}IN (...)"
    if isinstance(expr, InSubquery):
        neg = "NOT " if expr.negated else ""
        return f"{expr_to_str(expr.operand)} {neg}IN (subquery)"
    if isinstance(expr, ExistsExpr):
        return ("NOT " if expr.negated else "") + "EXISTS (subquery)"
    if isinstance(expr, ScalarSubquery):
        return "(subquery)"
    if isinstance(expr, BetweenExpr):
        neg = "NOT " if expr.negated else ""
        return (f"{expr_to_str(expr.operand)} {neg}BETWEEN "
                f"{expr_to_str(expr.low)} AND {expr_to_str(expr.high)}")
    if isinstance(expr, IsNull):
        return f"{expr_to_str(expr.operand)} IS {'NOT ' if expr.negated else ''}NULL"
    if isinstance(expr, LikeExpr):
        neg = "NOT " if expr.negated else ""
        if expr.pattern is None:
            pattern = "NULL"
        elif isinstance(expr.pattern, Parameter):
            pattern = expr_to_str(expr.pattern)
        else:
            pattern = repr(expr.pattern)
        esc = f" ESCAPE {expr.escape!r}" if expr.escape is not None else ""
        return f"{expr_to_str(expr.operand)} {neg}LIKE {pattern}{esc}"
    return type(expr).__name__


def _fmt_est(est: float | None) -> str:
    if est is None:
        return ""
    return f"  [est={int(round(est))} rows]"


_BOUND_SQL = {
    "unbounded_preceding": "UNBOUNDED PRECEDING",
    "unbounded_following": "UNBOUNDED FOLLOWING",
    "current": "CURRENT ROW",
    "preceding": "{n} PRECEDING",
    "following": "{n} FOLLOWING",
}


def frame_to_str(frame: WindowFrame) -> str:
    """SQL rendering of a :class:`~.sqlast.WindowFrame`."""
    start = _BOUND_SQL[frame.start_kind].format(n=frame.start_offset)
    end = _BOUND_SQL[frame.end_kind].format(n=frame.end_offset)
    return f"{frame.unit.upper()} BETWEEN {start} AND {end}"


def window_to_str(expr: WindowCall) -> str:
    """SQL-ish rendering of a window call for EXPLAIN output."""
    if expr.args:
        args = ", ".join(expr_to_str(a) for a in expr.args)
    else:
        args = "*" if expr.func in ("SUM", "AVG", "MIN", "MAX", "COUNT") else ""
    over: list[str] = []
    if expr.partition_by:
        over.append("PARTITION BY " + ", ".join(expr_to_str(p) for p in expr.partition_by))
    if expr.order_by:
        over.append("ORDER BY " + ", ".join(
            expr_to_str(o.expr) + ("" if o.ascending else " DESC")
            for o in expr.order_by
        ))
    if expr.frame is not None:
        over.append(frame_to_str(expr.frame))
    return f"{expr.func}({args}) OVER ({' '.join(over)})"


# ---------------------------------------------------------------------------
# Execution context / results
# ---------------------------------------------------------------------------

@dataclass
class ExecContext:
    """Everything an operator needs at run time."""

    executor: "Executor"
    env: dict[str, Chunk]

    @property
    def config(self) -> "EngineConfig":
        return self.executor.config

    @property
    def params(self) -> object:
        """Bound placeholder values of this execution (None when the
        statement has no parameters)."""
        return self.executor.params

    def note(self, message: str) -> None:
        self.executor._note(message)

    def checkpoint(self) -> None:
        """Cooperative cancellation/timeout check at an operator boundary."""
        self.executor.check_runtime()

    def subquery_cb(self) -> "Callable[..., object]":
        env = self.env

        def cb(kind: str, sub_select: object, outer_eval: object,
               operand: object = None) -> object:
            return self.executor._subquery(kind, sub_select, env, outer_eval, operand)

        return cb


@dataclass
class OpResult:
    """A materialized relation flowing between operators."""

    chunk: Chunk
    scope: Scope
    # Evaluator over the pre-projection relation, used by Sort to evaluate
    # ORDER BY expressions that reference non-projected columns.
    order_eval: Optional[Evaluator] = None
    # Window-call results computed by a Window operator below, keyed by
    # id(WindowCall); consumed by the Project above it.
    window_values: Optional[dict[int, np.ndarray]] = None


def _single_scope(binding: str, chunk: Chunk) -> Scope:
    scope = Scope()
    for slot, col in enumerate(chunk.columns):
        scope.add(binding, col, slot)
    return scope


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

class Operator:
    """Base physical operator.

    Subclasses implement ``execute`` (pull-based: recursively execute
    children, return a materialized :class:`OpResult`), ``children`` (for
    plan traversal/rendering), and ``label`` (one EXPLAIN line, without the
    cardinality estimate — ``PhysicalPlan.render`` appends that).
    """

    est_rows: float | None = None

    def children(self) -> list["Operator"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def execute(self, ctx: ExecContext) -> OpResult:
        raise NotImplementedError

    def run(self, ctx: ExecContext) -> OpResult:
        """Execute with runtime-stats accounting.

        All parent-to-child invocations go through here.  When the
        executor carries no :class:`~.runtime_stats.RuntimeStats` (the
        default), this is a plain ``execute`` call with zero overhead;
        otherwise the node's actual output cardinality and inclusive
        elapsed time are recorded for adaptive decisions and EXPLAIN
        ANALYZE.
        """
        stats = ctx.executor.stats
        if stats is None:
            return self.execute(ctx)
        start = time.perf_counter()
        res = self.execute(ctx)
        stats.record(self, res.chunk.nrows, time.perf_counter() - start)
        return res


@dataclass
class Scan(Operator):
    """Read a base table (or materialized CTE) and prune to needed columns."""

    binding: str
    table: str
    keep_columns: list[str] | None  # None = keep all (SELECT *)
    est_rows: float | None = None
    # Zone-map pruning (stored tables only): the chunk ids that survive the
    # planner's interval tests, and the table's total chunk count.  None
    # means pruning was not attempted (in-memory table, no prunable
    # predicates, or ``EngineConfig.zone_map_pruning`` off).
    chunk_ids: list[int] | None = None
    n_chunks: int = 0

    def label(self) -> str:
        cols = "*" if self.keep_columns is None else f"[{', '.join(self.keep_columns)}]"
        name = self.table if self.table == self.binding else f"{self.table} AS {self.binding}"
        label = f"Scan {name} cols={cols}"
        if self.chunk_ids is not None and self.n_chunks:
            label += f" zonemap={len(self.chunk_ids)}/{self.n_chunks} chunks"
        return label

    def execute(self, ctx: ExecContext) -> OpResult:
        ctx.checkpoint()
        if self.table in ctx.env:
            src = ctx.env[self.table]
            chunk = Chunk(list(src.columns), list(src.arrays))
            if self.keep_columns is not None:
                chunk = chunk.project(self.keep_columns)
        else:
            table = ctx.executor.catalog.get(self.table)
            chunk = table.scan(self.keep_columns, self.chunk_ids)
            if self.chunk_ids is not None and self.n_chunks:
                ctx.note(
                    f"scan {self.binding}: zone maps pruned "
                    f"{self.n_chunks - len(self.chunk_ids)}/{self.n_chunks} "
                    f"chunk(s), read {chunk.nrows} rows"
                )
        return OpResult(chunk, _single_scope(self.binding, chunk))


@dataclass
class SubqueryScan(Operator):
    """A derived table in FROM: execute the nested body, rename, prune."""

    binding: str
    body: object  # Select | ValuesClause
    column_names: list[str] | None
    keep_columns: list[str] | None
    subplan: Optional["PhysicalPlan"] = None
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.subplan.root] if self.subplan is not None else []

    def label(self) -> str:
        return f"SubqueryScan AS {self.binding}"

    def execute(self, ctx: ExecContext) -> OpResult:
        ctx.checkpoint()
        chunk = ctx.executor._execute_body(self.body, ctx.env)
        if self.column_names is not None:
            chunk = Chunk(list(self.column_names), chunk.arrays)
        if self.keep_columns is not None:
            chunk = chunk.project(self.keep_columns)
        return OpResult(chunk, _single_scope(self.binding, chunk))


@dataclass
class DualScan(Operator):
    """The implicit one-row relation behind a FROM-less SELECT."""

    est_rows: float | None = 1.0

    def label(self) -> str:
        return "DualScan"

    def execute(self, ctx: ExecContext) -> OpResult:
        chunk = Chunk(["__one"], [np.zeros(1, dtype=np.int64)])
        return OpResult(chunk, Scope())


@dataclass
class Filter(Operator):
    """Pushed-down filter directly above a scan (no subqueries allowed).

    Morsel-parallel: the mask is evaluated over row partitions on the shared
    pool; vectorized mode additionally chops each partition into morsels.
    """

    child: Operator
    binding: str
    predicates: list[Expr]
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        preds = " AND ".join(expr_to_str(p) for p in self.predicates)
        return f"Filter {preds}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        chunk, scope = res.chunk, res.scope
        config = ctx.config
        params = ctx.params
        n = chunk.nrows
        morsel = config.morsel_size if config.mode == "vectorized" else None
        if morsel is not None and config.adaptive_execution and n > 0:
            # Auto-tune the morsel size from the observed input cardinality:
            # aim for ~8 morsels per worker partition so the pool stays busy
            # without per-morsel overhead dominating tiny inputs.  Mask
            # evaluation concatenates per-morsel results, so the output is
            # independent of the morsel size chosen.
            per_thread = max(1, n // max(1, config.threads))
            ideal = max(256, min(65536, per_thread // 8))
            if ideal >= 2 * morsel or morsel >= 2 * ideal:
                stats = ctx.executor.stats
                if stats is not None:
                    stats.event(
                        f"filter {self.binding}: morsel size auto-tuned "
                        f"{morsel} -> {ideal} for {n} input rows"
                    )
                ctx.note(f"adaptive: filter {self.binding} morsel size "
                         f"{morsel} -> {ideal}")
                morsel = ideal
        exprs = self.predicates

        def make_mask(start: int, stop: int) -> np.ndarray:
            if morsel is None:
                sub = chunk.slice(start, stop)
                ev = Evaluator(sub, scope, params=params)
                mask = np.ones(stop - start, dtype=bool)
                for e in exprs:
                    mask &= ev.eval_mask(e)
                return mask
            parts = [np.zeros(0, dtype=bool)]
            pos = start
            while pos < stop:
                end = min(pos + morsel, stop)
                sub = chunk.slice(pos, end)
                ev = Evaluator(sub, scope, params=params)
                mask = np.ones(end - pos, dtype=bool)
                for e in exprs:
                    mask &= ev.eval_mask(e)
                parts.append(mask)
                pos = end
            return np.concatenate(parts) if len(parts) > 2 else parts[-1]

        mask = parallel_masks(n, config.threads, make_mask)
        if config.threads > 1 and n >= 4096:
            # Boolean-mask gathers release the GIL; materialize the
            # surviving rows column-parallel.
            out = Chunk(list(chunk.columns),
                        parallel_map(config.threads, lambda a: a[mask],
                                     chunk.arrays))
        else:
            out = chunk.mask(mask)
        ctx.note(
            f"scan+filter {self.binding}: {len(exprs)} predicate(s) pushed down, "
            f"{n} -> {out.nrows} rows"
        )
        return OpResult(out, scope)


def _merge_scopes(left: Scope, right_binding: str, right_chunk: Chunk, offset: int) -> Scope:
    scope = Scope()
    scope.qualified = dict(left.qualified)
    scope.unqualified = dict(left.unqualified)
    scope.ambiguous = set(left.ambiguous)
    for k, col in enumerate(right_chunk.columns):
        scope.add(right_binding, col, offset + k)
    return scope


@dataclass
class CrossJoin(Operator):
    """Cartesian product (guarded against blow-ups)."""

    left: Operator
    right: Operator
    right_binding: str
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"CrossJoin + {self.right_binding}"

    def execute(self, ctx: ExecContext) -> OpResult:
        lres = self.left.run(ctx)
        rres = self.right.run(ctx)
        ctx.checkpoint()
        nl, nr = lres.chunk.nrows, rres.chunk.nrows
        if nl * nr > 50_000_000:
            raise SQLExecutionError(
                f"refusing cartesian product of {nl} x {nr} rows"
            )
        lp = np.repeat(np.arange(nl, dtype=np.int64), nr)
        rp = np.tile(np.arange(nr, dtype=np.int64), nl)
        zeros = np.zeros(len(lp), dtype=bool)
        chunk = combine_chunks(lres.chunk, rres.chunk, lp, rp, zeros, zeros)
        ctx.note(
            f"cartesian product + {self.right_binding}: {nl} x {nr} -> {len(lp)} rows"
        )
        scope = _merge_scopes(lres.scope, self.right_binding, rres.chunk, lres.chunk.ncols)
        return OpResult(chunk, scope)


@dataclass
class HashJoin(Operator):
    """Equi hash join; probe side is partitioned across the worker pool.

    ``pairs`` are (left_expr, right_expr) equi-key pairs; ``residual``
    conjuncts (non-equi parts of an explicit ON) filter the joined chunk.
    """

    left: Operator
    right: Operator
    right_binding: str
    pairs: list[tuple[Expr, Expr]]
    how: str = "inner"
    residual: list[Expr] = field(default_factory=list)
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def label(self) -> str:
        conds = ", ".join(
            f"{expr_to_str(l)} = {expr_to_str(r)}" for l, r in self.pairs
        )
        how = "" if self.how == "inner" else f" {self.how.upper()}"
        return f"HashJoin{how} + {self.right_binding} on {conds}"

    def execute(self, ctx: ExecContext) -> OpResult:
        lres = self.left.run(ctx)
        rres = self.right.run(ctx)
        ctx.checkpoint()
        left_chunk, right_chunk = lres.chunk, rres.chunk
        left_eval = Evaluator(left_chunk, lres.scope, params=ctx.params)
        right_eval = Evaluator(right_chunk, rres.scope, params=ctx.params)
        lkeys = [left_eval.eval_array(le) for le, _ in self.pairs]
        rkeys = [right_eval.eval_array(re_) for _, re_ in self.pairs]
        threads = ctx.config.threads if ctx.config.parallel_join else 1
        spilled = None
        budget = ctx.config.memory_budget
        if budget is not None and left_chunk.nrows and right_chunk.nrows:
            from ..storage.spill import chunk_nbytes, grace_join_positions, spillable_keys

            build_bytes = min(chunk_nbytes(left_chunk), chunk_nbytes(right_chunk))
            if build_bytes > budget and spillable_keys(lkeys, rkeys):
                lp, rp, lmiss, rmiss, spilled = grace_join_positions(
                    lkeys, rkeys, self.how, threads=threads,
                    nparts=max(2, ctx.config.spill_partitions),
                )
                ctx.note(
                    f"spill: hash join + {self.right_binding} build side "
                    f"{build_bytes} bytes > budget {budget}, grace-partitioned "
                    f"over {spilled.partitions} partition(s), "
                    f"{spilled.bytes_spilled} bytes to disk"
                )
        if spilled is None:
            if ctx.config.adaptive_execution:
                nl, nr = left_chunk.nrows, right_chunk.nrows
                if nr > 4 * nl and nr >= 4096:
                    # The join kernel builds its index on the small left
                    # side here and morsel-probes with the large right side
                    # (see joins.join_positions); surface the decision.
                    stats = ctx.executor.stats
                    if stats is not None:
                        stats.event(
                            f"hash join + {self.right_binding}: build side "
                            f"swapped — index built on {nl}-row side, "
                            f"probed with {nr} rows"
                        )
            lp, rp, lmiss, rmiss = join_positions(lkeys, rkeys, self.how,
                                                  threads=threads)
        chunk = combine_chunks(left_chunk, right_chunk, lp, rp, lmiss, rmiss,
                               threads=threads)
        ctx.note(
            f"hash join + {self.right_binding} on {len(self.pairs)} key(s): "
            f"{left_chunk.nrows} x {right_chunk.nrows} -> {chunk.nrows} rows"
        )
        scope = _merge_scopes(lres.scope, self.right_binding, right_chunk, left_chunk.ncols)
        if self.residual:
            ev = Evaluator(chunk, scope, params=ctx.params)
            mask = np.ones(chunk.nrows, dtype=bool)
            for conj in self.residual:
                mask &= ev.eval_mask(conj)
            chunk = chunk.mask(mask)
        return OpResult(chunk, scope)


@dataclass
class Materialized(Operator):
    """An already-executed relation re-fed into a rebuilt join chain.

    :class:`AdaptiveJoin` executes every join source exactly once, then
    stitches the materialized results into a (possibly re-ordered) chain of
    ordinary ``HashJoin``/``CrossJoin`` nodes whose leaves are these.
    ``result`` is populated at runtime; a plan-shape ``Materialized`` with
    ``result=None`` (as seen by the verifier before execution) is legal but
    cannot be executed.
    """

    binding: str
    result: OpResult | None = None
    est_rows: float | None = None

    def label(self) -> str:
        return f"Materialized {self.binding}"

    def execute(self, ctx: ExecContext) -> OpResult:
        ctx.checkpoint()
        if self.result is None:
            raise SQLExecutionError(
                f"Materialized {self.binding} executed without a result"
            )
        return self.result


@dataclass
class AdaptiveSource(Operator):
    """One join input under an :class:`AdaptiveJoin`: a planned source
    subtree plus the static cardinality estimate the planner ordered it by."""

    binding: str
    op: Operator = None  # type: ignore[assignment]
    est: float = 1.0

    def children(self) -> list[Operator]:
        return [self.op]

    def label(self) -> str:  # pragma: no cover - AdaptiveJoin renders sources
        return f"AdaptiveSource {self.binding}"

    def execute(self, ctx: ExecContext) -> OpResult:
        ctx.checkpoint()
        return self.op.run(ctx)


@dataclass
class AdaptiveJoin(Operator):
    """Estimate-feedback join: execute sources, re-order on mis-estimates.

    The planner emits this instead of a static join chain when
    ``EngineConfig.adaptive_execution`` is on.  Execution first pulls every
    source subtree (scans + pushed-down filters) exactly once, observing
    true cardinalities.  If any source's actual row count diverges from its
    estimate by more than ``EngineConfig.adaptive_ratio`` (in either
    direction), the greedy join-order algorithm re-runs over the *actual*
    counts and — when it picks a different order — the join chain is rebuilt
    over :class:`Materialized` leaves, re-verified by the plan verifier
    (when ``verify_plans`` is on), and executed in the new order.  The
    output chunk is permuted back to the static column layout, so results
    differ from static execution only in row order (inner-join row sets are
    order-invariant; every consumer that promises ordering sorts above).
    """

    sources: list[AdaptiveSource] = field(default_factory=list)
    # Equi-join edges (i, j, left_expr, right_expr): an equality between
    # source i's expression and source j's expression.
    edges: list = field(default_factory=list)
    # The statically chosen order: [(source_index, oriented_pairs)] where
    # oriented_pairs are (accumulated_side_expr, new_side_expr).
    static_order: list = field(default_factory=list)
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [s.op for s in self.sources]

    def label(self) -> str:
        names = ", ".join(s.binding for s in self.sources)
        return f"AdaptiveJoin [{names}]"

    def _build_chain(self, order: list, results: list[OpResult],
                     actuals: list[float]) -> tuple[Operator, list[str]]:
        """A HashJoin/CrossJoin chain over Materialized leaves in ``order``."""
        first = order[0][0]
        root: Operator = Materialized(self.sources[first].binding,
                                      results[first], est_rows=actuals[first])
        est = actuals[first]
        cols = list(results[first].chunk.columns)
        for idx, pairs in order[1:]:
            src = self.sources[idx]
            leaf = Materialized(src.binding, results[idx],
                                est_rows=actuals[idx])
            if pairs:
                est = max(est, actuals[idx])
                root = HashJoin(root, leaf, src.binding, list(pairs),
                                est_rows=est)
            else:
                est = est * actuals[idx]
                root = CrossJoin(root, leaf, src.binding, est_rows=est)
            cols.extend(results[idx].chunk.columns)
        return root, cols

    def execute(self, ctx: ExecContext) -> OpResult:
        ctx.checkpoint()
        stats = ctx.executor.stats
        results: list[OpResult] = []
        actuals: list[float] = []
        for s in self.sources:
            res = s.op.run(ctx)
            results.append(res)
            actuals.append(float(res.chunk.nrows))

        # Divergence check: worst est-vs-actual ratio across sources.
        cap = max(1.0, ctx.config.adaptive_ratio)
        worst_ratio, worst_idx = 0.0, 0
        for i, s in enumerate(self.sources):
            est, act = max(s.est, 1.0), max(actuals[i], 1.0)
            ratio = act / est if act > est else est / act
            if ratio > worst_ratio:
                worst_ratio, worst_idx = ratio, i
        order = self.static_order
        replanned = False
        if worst_ratio > cap:
            from .planner import greedy_join_order

            new_order = greedy_join_order(actuals, self.edges, True)
            if [i for i, _ in new_order] != [i for i, _ in self.static_order]:
                order = new_order
                replanned = True
                src = self.sources[worst_idx]
                old_names = ", ".join(self.sources[i].binding
                                      for i, _ in self.static_order)
                new_names = ", ".join(self.sources[i].binding
                                      for i, _ in new_order)
                message = (
                    f"re-plan: {src.binding} est={int(round(src.est))} vs "
                    f"actual={int(round(actuals[worst_idx]))} rows "
                    f"(ratio {worst_ratio:.1f} > {cap:.1f}); join order "
                    f"[{old_names}] -> [{new_names}]"
                )
                if stats is not None:
                    stats.replan(message)
                ctx.note(f"adaptive {message}")
            elif stats is not None:
                src = self.sources[worst_idx]
                stats.event(
                    f"divergence on {src.binding} "
                    f"(est={int(round(src.est))}, "
                    f"actual={int(round(actuals[worst_idx]))} rows) "
                    f"but join order unchanged"
                )

        root, cols = self._build_chain(order, results, actuals)
        if replanned and ctx.config.verify_plans:
            from ..analysis import verify_plan

            verify_plan(PhysicalPlan(root, cols), ctx.executor.catalog,
                        ctx.config, ctx.env)
        out = root.run(ctx)
        if not replanned:
            return out

        # Permute the executed layout back to the static column order so
        # downstream operators see the exact scope/slot layout the planner
        # compiled against.
        offsets: dict[int, int] = {}
        pos = 0
        for i, _ in order:
            offsets[i] = pos
            pos += results[i].chunk.ncols
        arrays: list[np.ndarray] = []
        names: list[str] = []
        scope = Scope()
        for i, _ in self.static_order:
            chunk = results[i].chunk
            base = offsets[i]
            for k, col in enumerate(chunk.columns):
                scope.add(self.sources[i].binding, col, len(arrays))
                arrays.append(out.chunk.arrays[base + k])
                names.append(col)
        return OpResult(Chunk(names, arrays), scope)


@dataclass
class ResidualFilter(Operator):
    """Post-join WHERE conjuncts (subqueries and multi-source predicates)."""

    child: Operator
    predicates: list[Expr]
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        preds = " AND ".join(expr_to_str(p) for p in self.predicates)
        return f"Filter(residual) {preds}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        chunk = res.chunk
        before = chunk.nrows
        evaluator = Evaluator(chunk, res.scope, subquery_executor=ctx.subquery_cb(),
                              params=ctx.params)
        mask = np.ones(chunk.nrows, dtype=bool)
        for conj in self.predicates:
            mask &= evaluator.eval_mask(conj)
        chunk = chunk.mask(mask)
        ctx.note(f"residual filter: {len(self.predicates)} predicate(s), "
                 f"{before} -> {chunk.nrows} rows")
        return OpResult(chunk, res.scope)


# ---------------------------------------------------------------------------
# Decorrelated subquery operators
# ---------------------------------------------------------------------------

def _skip_subquery_event(ctx: ExecContext, what: str) -> None:
    """Note an adaptive empty-outer short-circuit (subquery never runs)."""
    stats = ctx.executor.stats
    if stats is not None:
        stats.event(f"{what}: empty outer input, subquery skipped")
    ctx.note(f"adaptive: {what} skipped subquery on empty outer input")


def _subquery_probe_flags(ctx: ExecContext, res: OpResult,
                          subplan: "PhysicalPlan",
                          probe_exprs: list[Expr]) -> tuple[np.ndarray, Chunk]:
    """Execute the inner subplan and compute per-outer-row match flags.

    ``probe_exprs`` pair positionally with the subplan's output columns; an
    empty list is the uncorrelated-EXISTS shape (flags broadcast whether the
    inner result is non-empty).  NULLs never match (see
    :func:`~.joins.semi_join_flags`).
    """
    from .joins import semi_join_flags

    inner = subplan.execute(ctx)
    n = res.chunk.nrows
    if not probe_exprs:
        return np.full(n, inner.nrows > 0), inner
    evaluator = Evaluator(res.chunk, res.scope,
                          subquery_executor=ctx.subquery_cb(),
                          params=ctx.params)
    probes = [evaluator.eval_array(e) for e in probe_exprs]
    flags = semi_join_flags(probes, list(inner.arrays[:len(probes)]),
                            threads=ctx.config.threads)
    return flags, inner


@dataclass
class SemiJoin(Operator):
    """Keep outer rows with at least one match in the subquery result.

    The planner rewrites ``IN (SELECT ...)`` and (equality-correlated or
    uncorrelated) ``EXISTS`` into this node.  The build side is the planned
    subquery (executed once per query); the probe is morsel-parallel over
    the GIL-free membership kernel.
    """

    child: Operator
    subplan: "PhysicalPlan" = None  # type: ignore[assignment]
    probe_exprs: list[Expr] = field(default_factory=list)
    source: str = "IN"  # "IN" | "EXISTS", for EXPLAIN only
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child, self.subplan.root]

    def label(self) -> str:
        probes = ", ".join(expr_to_str(p) for p in self.probe_exprs)
        on = f" on [{probes}]" if probes else ""
        return f"SemiJoin {self.source}{on}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        if ctx.config.adaptive_execution and res.chunk.nrows == 0:
            _skip_subquery_event(ctx, f"semi join ({self.source.lower()})")
            return OpResult(res.chunk, res.scope)
        flags, inner = _subquery_probe_flags(ctx, res, self.subplan,
                                             self.probe_exprs)
        chunk = res.chunk.mask(flags)
        ctx.note(f"semi join ({self.source.lower()} subquery): "
                 f"{res.chunk.nrows} x {inner.nrows} -> {chunk.nrows} rows")
        return OpResult(chunk, res.scope)


def _null_aware_anti_flags(ctx: ExecContext, res: OpResult,
                           subplan: "PhysicalPlan",
                           probe_exprs: list[Expr]) -> tuple[np.ndarray, int]:
    """``NOT IN`` keep-flags with three-valued NULL semantics.

    ``probe_exprs[0]`` is the IN operand (pairing with inner output column
    0); the remaining pairs are equality-correlation keys.  Per outer row,
    with S the correlated inner value set: keep when S is empty; otherwise
    keep only when the operand is non-NULL, S contains no NULL, and no
    member of S equals the operand (any NULL in play makes the unmatched
    case UNKNOWN, which drops the row).
    """
    from ..dataframe._common import isna_array
    from .joins import semi_join_flags

    inner = subplan.execute(ctx)
    n = res.chunk.nrows
    threads = ctx.config.threads
    evaluator = Evaluator(res.chunk, res.scope,
                          subquery_executor=ctx.subquery_cb(),
                          params=ctx.params)
    probes = [evaluator.eval_array(e) for e in probe_exprs]
    build = list(inner.arrays[:len(probes)])
    value_null = isna_array(probes[0])
    build_value_null = isna_array(build[0]) if inner.nrows else \
        np.zeros(0, dtype=bool)

    if len(probes) == 1:  # uncorrelated NOT IN
        if inner.nrows == 0:
            return np.ones(n, dtype=bool), 0
        if build_value_null.any():
            return np.zeros(n, dtype=bool), inner.nrows
        matched = semi_join_flags(probes, build, threads=threads)
        return ~matched & ~value_null, inner.nrows

    corr_probes, corr_build = probes[1:], build[1:]
    group_nonempty = semi_join_flags(corr_probes, corr_build, threads=threads)
    if build_value_null.any():
        null_groups = [b[build_value_null] for b in corr_build]
        group_has_null = semi_join_flags(corr_probes, null_groups,
                                         threads=threads)
    else:
        group_has_null = np.zeros(n, dtype=bool)
    matched = semi_join_flags(probes, build, threads=threads)
    keep = ~group_nonempty | (~value_null & ~group_has_null & ~matched)
    return keep, inner.nrows


@dataclass
class AntiJoin(Operator):
    """Keep outer rows with *no* match in the subquery result.

    ``null_aware=False`` is ``NOT EXISTS`` (a NULL correlation key simply
    never matches, so the row is kept); ``null_aware=True`` is ``NOT IN``,
    where NULLs on either side make the predicate UNKNOWN and drop the row
    (see :func:`_null_aware_anti_flags`).
    """

    child: Operator
    subplan: "PhysicalPlan" = None  # type: ignore[assignment]
    probe_exprs: list[Expr] = field(default_factory=list)
    null_aware: bool = False
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child, self.subplan.root]

    def label(self) -> str:
        probes = ", ".join(expr_to_str(p) for p in self.probe_exprs)
        on = f" on [{probes}]" if probes else ""
        kind = "NOT IN (null-aware)" if self.null_aware else "NOT EXISTS"
        return f"AntiJoin {kind}{on}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        if ctx.config.adaptive_execution and res.chunk.nrows == 0:
            _skip_subquery_event(
                ctx, f"anti join ({'not in' if self.null_aware else 'not exists'})"
            )
            return OpResult(res.chunk, res.scope)
        if self.null_aware:
            keep, inner_rows = _null_aware_anti_flags(
                ctx, res, self.subplan, self.probe_exprs
            )
        else:
            flags, inner = _subquery_probe_flags(ctx, res, self.subplan,
                                                 self.probe_exprs)
            keep, inner_rows = ~flags, inner.nrows
        chunk = res.chunk.mask(keep)
        ctx.note(f"anti join ({'not in' if self.null_aware else 'not exists'} "
                 f"subquery): {res.chunk.nrows} x {inner_rows} "
                 f"-> {chunk.nrows} rows")
        return OpResult(chunk, res.scope)


def _append_column(res: OpResult, name: str, array: np.ndarray) -> OpResult:
    """A new OpResult with one extra (unqualified) column appended."""
    chunk = Chunk(list(res.chunk.columns) + [name],
                  list(res.chunk.arrays) + [array])
    scope = Scope()
    scope.qualified = dict(res.scope.qualified)
    scope.unqualified = dict(res.scope.unqualified)
    scope.ambiguous = set(res.scope.ambiguous)
    scope.add(None, name, chunk.ncols - 1)
    return OpResult(chunk, scope, order_eval=res.order_eval,
                    window_values=res.window_values)


@dataclass
class MarkJoin(Operator):
    """Compute a subquery predicate as a boolean *mark* column.

    Used when an IN/EXISTS predicate sits under OR/CASE rather than as a
    top-level WHERE conjunct: the row set cannot be filtered directly, so
    the match flags are appended as a column (``__mark_N``) which the
    rewritten residual predicate references.  ``mode`` folds the predicate's
    own negation and NULL handling into the mark, so the stored column is
    the plain two-valued truth of the original predicate.
    """

    child: Operator
    subplan: "PhysicalPlan" = None  # type: ignore[assignment]
    probe_exprs: list[Expr] = field(default_factory=list)
    mark_name: str = "__mark_0"
    mode: str = "semi"  # "semi" | "anti" | "anti-null"
    source: str = "IN"  # for EXPLAIN only
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child, self.subplan.root]

    def label(self) -> str:
        probes = ", ".join(expr_to_str(p) for p in self.probe_exprs)
        on = f" on [{probes}]" if probes else ""
        return f"MarkJoin {self.mark_name} = {self.source}{on}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        if ctx.config.adaptive_execution and res.chunk.nrows == 0:
            _skip_subquery_event(ctx, f"mark join {self.mark_name}")
            return _append_column(res, self.mark_name,
                                  np.zeros(0, dtype=bool))
        if self.mode == "anti-null":
            mark, _ = _null_aware_anti_flags(ctx, res, self.subplan,
                                             self.probe_exprs)
        else:
            flags, _ = _subquery_probe_flags(ctx, res, self.subplan,
                                             self.probe_exprs)
            mark = ~flags if self.mode == "anti" else flags
        ctx.note(f"mark join {self.mark_name}: {res.chunk.nrows} rows")
        return _append_column(res, self.mark_name, mark)


@dataclass
class ScalarSubqueryScan(Operator):
    """Evaluate an uncorrelated scalar subquery once, broadcast the value.

    The single-cell result is appended as a column (``__scalar_N``)
    referenced by the rewritten predicate above.  More than one inner row
    is a hard error (SQL scalar subquery cardinality rule); zero rows
    yield NULL.
    """

    child: Operator
    subplan: "PhysicalPlan" = None  # type: ignore[assignment]
    scalar_name: str = "__scalar_0"
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child, self.subplan.root]

    def label(self) -> str:
        return f"ScalarSubqueryScan {self.scalar_name}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        inner = self.subplan.execute(ctx)
        if inner.nrows > 1:
            raise SQLExecutionError(
                f"scalar subquery returned {inner.nrows} rows "
                f"(expected at most one)"
            )
        value = inner.arrays[0][0] if inner.nrows == 1 else None
        n = res.chunk.nrows
        if value is None:
            column = np.full(n, np.nan)
        elif isinstance(value, str):
            column = np.empty(n, dtype=object)
            column[:] = value
        else:
            column = np.full(n, value, dtype=inner.arrays[0].dtype)
        ctx.note(f"scalar subquery {self.scalar_name}: value={value!r}")
        return _append_column(res, self.scalar_name, column)


@dataclass
class Window(Operator):
    """Partition-parallel window-function evaluation.

    Sits between the relational input and the Project that consumes the
    results.  All window calls of the SELECT are evaluated here: calls
    sharing a ``(PARTITION BY, ORDER BY)`` spec share one factorization and
    one sort (:func:`~.window.build_layout`), and each kernel reduces its
    partitions morsel-parallel on the shared worker pool.  The input chunk
    passes through unchanged; results travel to the Project via
    :attr:`OpResult.window_values`.
    """

    child: Operator
    calls: list[WindowCall] = field(default_factory=list)
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        calls = ", ".join(window_to_str(c) for c in self.calls)
        return f"Window {calls}"

    def execute(self, ctx: ExecContext) -> OpResult:
        from .window import evaluate_window_calls

        config = ctx.config
        if not config.supports_window:
            raise UnsupportedFeatureError(
                f"{config.name}: window functions are not supported by this backend"
            )
        res = self.child.run(ctx)
        ctx.checkpoint()
        values = evaluate_window_calls(
            res.chunk, res.scope, self.calls, config, ctx.subquery_cb(),
            params=ctx.params,
        )
        specs = {
            (tuple(map(expr_to_str, c.partition_by)),
             tuple(expr_to_str(o.expr) for o in c.order_by))
            for c in self.calls
        }
        ctx.note(
            f"window: {len(self.calls)} call(s) over {len(specs)} spec(s), "
            f"{res.chunk.nrows} rows"
        )
        return OpResult(res.chunk, res.scope, order_eval=res.order_eval,
                        window_values=values)


@dataclass
class Project(Operator):
    """Plain projection; window arrays arrive precomputed from a Window child."""

    child: Operator
    select: Select
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        items = ", ".join(expr_to_str(it.expr) for it in self.select.items)
        return f"Project {items}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        executor = ctx.executor
        cb = ctx.subquery_cb()
        chunk, order_eval = executor._project_plain(
            self.select, res.chunk, res.scope, cb, res.window_values or {}
        )
        return OpResult(chunk, res.scope, order_eval=order_eval)


@dataclass
class HashAggregate(Operator):
    """Grouped projection: factorize keys, reduce aggregates, apply HAVING.

    Reductions over large inputs run morsel-parallel (partial per-partition
    reductions merged by the combinators in :mod:`.grouping`).
    """

    child: Operator
    select: Select
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(expr_to_str(g) for g in self.select.group_by)
        naggs = sum(1 for it in self.select.items if not isinstance(it.expr, Star))
        label = f"HashAggregate keys=[{keys}] items={naggs}"
        if self.select.having is not None:
            label += f" having={expr_to_str(self.select.having)}"
        return label

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        executor = ctx.executor
        cb = ctx.subquery_cb()
        budget = ctx.config.memory_budget
        if (budget is not None and self.select.group_by and res.chunk.nrows
                and res.chunk.nrows > 1):
            from ..storage.spill import chunk_nbytes, grace_aggregate

            input_bytes = chunk_nbytes(res.chunk)
            if input_bytes > budget:
                spilled = grace_aggregate(
                    executor, self.select, res.chunk, res.scope, cb,
                    nparts=max(2, ctx.config.spill_partitions),
                )
                if spilled is not None:
                    chunk, order_eval, stats = spilled
                    ctx.note(
                        f"spill: hash aggregate input {input_bytes} bytes > "
                        f"budget {budget}, grace-partitioned "
                        f"{res.chunk.nrows} rows over {stats.partitions} "
                        f"partition(s), {stats.bytes_spilled} bytes to disk"
                    )
                    return OpResult(chunk, res.scope, order_eval=order_eval)
        chunk, order_eval = executor._project_grouped(
            self.select, res.chunk, res.scope, cb, {}
        )
        return OpResult(chunk, res.scope, order_eval=order_eval)


@dataclass
class Distinct(Operator):
    """Deduplicate output rows, keeping first occurrence in input order."""

    child: Operator
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"

    def execute(self, ctx: ExecContext) -> OpResult:
        from .grouping import factorize_many

        res = self.child.run(ctx)
        ctx.checkpoint()
        chunk = res.chunk
        if chunk.nrows:
            gids, _, ngroups = factorize_many(chunk.arrays)
            positions = np.arange(len(gids) - 1, -1, -1, dtype=np.int64)
            first = np.zeros(ngroups, dtype=np.int64)
            first[gids[positions]] = positions
            chunk = chunk.take(np.sort(first))
        # Ordering must reference output columns from here on.
        return OpResult(chunk, res.scope, order_eval=None)


def _order_keys_str(order_by: list[OrderItem]) -> str:
    return ", ".join(
        expr_to_str(o.expr) + ("" if o.ascending else " DESC")
        for o in order_by
    )


@dataclass
class Sort(Operator):
    """ORDER BY over the projected output (stable multi-key sort)."""

    child: Operator
    order_by: list  # list[OrderItem]
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        return f"Sort {_order_keys_str(self.order_by)}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        ctx.checkpoint()
        arrays, ascendings = ctx.executor._order_arrays(
            self.order_by, res.chunk, res.order_eval
        )
        from .window import sort_positions

        chunk = res.chunk.take(sort_positions(arrays, ascendings))
        ctx.note(f"sort: {len(self.order_by)} key(s)")
        return OpResult(chunk, res.scope)


@dataclass
class TopK(Operator):
    """Fused ``ORDER BY … LIMIT k``: morsel-parallel partial selection.

    The planner rewrites a ``Sort`` + ``Limit`` pair into this operator;
    results are bit-identical to the pair (stable sort, ties keep input
    order) but only per-morsel candidates are ever sorted
    (:func:`~.topk.topk_positions`).
    """

    child: Operator
    order_by: list  # list[OrderItem]
    n: int = 0
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        return f"TopK {self.n} by {_order_keys_str(self.order_by)}"

    def execute(self, ctx: ExecContext) -> OpResult:
        from .topk import topk_positions

        res = self.child.run(ctx)
        ctx.checkpoint()
        arrays, ascendings = ctx.executor._order_arrays(
            self.order_by, res.chunk, res.order_eval
        )
        positions = topk_positions(arrays, ascendings, self.n,
                                   threads=ctx.config.threads)
        chunk = res.chunk.take(positions)
        ctx.note(f"top-k: {len(self.order_by)} key(s), "
                 f"{res.chunk.nrows} -> {chunk.nrows} rows")
        return OpResult(chunk, res.scope)


@dataclass
class Limit(Operator):
    """Keep the first *n* rows of the (already sorted) input."""

    child: Operator
    n: int = 0
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.child]

    def label(self) -> str:
        return f"Limit {self.n}"

    def execute(self, ctx: ExecContext) -> OpResult:
        res = self.child.run(ctx)
        chunk = res.chunk.head(self.n)
        ctx.note(f"limit: {self.n}")
        return OpResult(chunk, res.scope)


_SET_OP_SQL = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}


@dataclass
class SetOp(Operator):
    """A set operation over two sub-plans (UNION/INTERSECT/EXCEPT [ALL]).

    Columns pair by position; output names come from the left operand
    (checked for arity/type compatibility at plan time).  ``UNION ALL`` is
    a cheap concatenation; the hashed variants factorize the combined rows
    once and count per side (:mod:`.setops`), with the build side chosen by
    the planner from cardinality estimates for the symmetric operations.
    """

    left: Operator
    right: Operator
    op: str  # "union" | "intersect" | "except"
    all: bool = False
    columns: list[str] = field(default_factory=list)
    est_rows: float | None = None

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"SetOp {_SET_OP_SQL[self.op]}{' ALL' if self.all else ''}"

    def execute(self, ctx: ExecContext) -> OpResult:
        from .setops import execute_set_op

        lres = self.left.run(ctx)
        rres = self.right.run(ctx)
        ctx.checkpoint()
        chunk = execute_set_op(self.op, self.all, lres.chunk, rres.chunk,
                               self.columns, threads=ctx.config.threads)
        ctx.note(
            f"set op {self.label().split(' ', 1)[1].lower()}: "
            f"{lres.chunk.nrows} vs {rres.chunk.nrows} -> {chunk.nrows} rows"
        )
        # Downstream ORDER BY must reference output columns only.
        scope = Scope()
        for slot, col in enumerate(chunk.columns):
            scope.add(None, col, slot)
        return OpResult(chunk, scope, order_eval=None)


# ---------------------------------------------------------------------------
# The plan object
# ---------------------------------------------------------------------------

@dataclass
class PhysicalPlan:
    """Root of a compiled operator tree for one SELECT body."""

    root: Operator
    output_columns: list[str]
    est_rows: float | None = None
    cache_hits: int = 0

    def execute(self, ctx: ExecContext) -> Chunk:
        return self.root.run(ctx).chunk

    def render(self) -> str:
        lines: list[str] = []

        def walk(op: Operator, depth: int) -> None:
            lines.append("  " * depth + op.label() + _fmt_est(op.est_rows))
            for child in op.children():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def subquery_plans(self) -> "Iterator[tuple[object, PhysicalPlan]]":
        """Yield ``(body, subplan)`` for every derived table in the tree
        (recursively), so callers can register them for reuse."""

        def walk(op: Operator) -> "Iterator[tuple[object, PhysicalPlan]]":
            if isinstance(op, SubqueryScan) and op.subplan is not None:
                yield op.body, op.subplan
                yield from walk(op.subplan.root)
            else:
                for child in op.children():
                    yield from walk(child)

        yield from walk(self.root)
