"""Scalar SQL function implementations over numpy columns.

Dialect adaptation (Section III-E "Backend Adaptation"): each backend
exposes the same implementations under its own surface names, e.g. DuckDB's
``strftime`` vs Hyper's ``to_char``.
"""

from __future__ import annotations

import numpy as np

from ..errors import SQLBindError
from ..dataframe._common import isna_array

__all__ = ["call_function", "FUNCTION_ALIASES"]

# Surface name (per dialect) -> canonical name.
FUNCTION_ALIASES = {
    "SUBSTRING": "SUBSTR",
    "TO_CHAR": "STRFTIME",
    "CHAR_LENGTH": "LENGTH",
    "LEN": "LENGTH",
    "POW": "POWER",
    "CEILING": "CEIL",
    "DATE_PART": "DATEPART",
}


def _as_array(value, n: int) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value
    return np.full(n, value)


def _string_map(arr: np.ndarray, func) -> np.ndarray:
    out = np.empty(len(arr), dtype=object)
    for i, v in enumerate(arr):
        out[i] = None if v is None else func(v)
    return out


def call_function(name: str, args: list, n: int):
    """Evaluate scalar function *name* over evaluated argument columns.

    Each arg is either a numpy array of length *n* or a python scalar.
    Returns an array of length *n* (or a scalar for scalar inputs).
    """
    name = FUNCTION_ALIASES.get(name, name)

    if name == "ROUND":
        x = args[0]
        digits = int(args[1]) if len(args) > 1 else 0
        arr = np.asarray(x, dtype=np.float64)
        return np.round(arr, digits)
    if name == "ABS":
        return np.abs(args[0])
    if name == "SQRT":
        return np.sqrt(np.asarray(args[0], dtype=np.float64))
    if name == "POWER":
        return np.power(np.asarray(args[0], dtype=np.float64), args[1])
    if name == "FLOOR":
        return np.floor(np.asarray(args[0], dtype=np.float64))
    if name == "CEIL":
        return np.ceil(np.asarray(args[0], dtype=np.float64))
    if name == "EXP":
        return np.exp(np.asarray(args[0], dtype=np.float64))
    if name == "LN":
        return np.log(np.asarray(args[0], dtype=np.float64))
    if name == "GREATEST":
        out = _as_array(args[0], n)
        for other in args[1:]:
            out = np.maximum(out, _as_array(other, n))
        return out
    if name == "LEAST":
        out = _as_array(args[0], n)
        for other in args[1:]:
            out = np.minimum(out, _as_array(other, n))
        return out

    if name == "UPPER":
        return _string_map(_as_array(args[0], n).astype(object), str.upper)
    if name == "LOWER":
        return _string_map(_as_array(args[0], n).astype(object), str.lower)
    if name == "TRIM":
        return _string_map(_as_array(args[0], n).astype(object), str.strip)
    if name == "LENGTH":
        arr = _as_array(args[0], n).astype(object)
        return np.array([-1 if v is None else len(v) for v in arr], dtype=np.int64)
    if name == "SUBSTR":
        arr = _as_array(args[0], n).astype(object)
        start = int(args[1])
        length = int(args[2]) if len(args) > 2 else None
        lo = start - 1  # SQL SUBSTR is 1-based
        hi = None if length is None else lo + length
        return _string_map(arr, lambda s: s[lo:hi])
    if name == "CONCAT":
        parts = [_as_array(a, n).astype(object) for a in args]
        out = np.empty(n, dtype=object)
        for i in range(n):
            vals = [p[i] for p in parts]
            out[i] = None if any(v is None for v in vals) else "".join(str(v) for v in vals)
        return out
    if name == "REPLACE":
        arr = _as_array(args[0], n).astype(object)
        old, new = str(args[1]), str(args[2])
        return _string_map(arr, lambda s: s.replace(old, new))
    if name == "STRPOS":
        arr = _as_array(args[0], n).astype(object)
        needle = str(args[1])
        return np.array([0 if v is None else v.find(needle) + 1 for v in arr], dtype=np.int64)

    if name in ("EXTRACT_YEAR", "YEAR"):
        arr = _as_array(args[0], n).astype("datetime64[D]")
        return arr.astype("datetime64[Y]").astype(np.int64) + 1970
    if name in ("EXTRACT_MONTH", "MONTH"):
        arr = _as_array(args[0], n).astype("datetime64[D]")
        return arr.astype("datetime64[M]").astype(np.int64) % 12 + 1
    if name in ("EXTRACT_DAY", "DAY"):
        arr = _as_array(args[0], n).astype("datetime64[D]")
        month_start = arr.astype("datetime64[M]").astype("datetime64[D]")
        return (arr - month_start).astype(np.int64) + 1
    if name == "DATEPART":
        part = str(args[0]).upper()
        return call_function(f"EXTRACT_{part}", [args[1]], n)
    if name == "STRFTIME":
        arr = _as_array(args[0], n).astype("datetime64[D]")
        fmt = str(args[1])
        out = np.empty(n, dtype=object)
        for i, v in enumerate(arr):
            out[i] = None if np.isnat(v) else v.item().strftime(fmt)
        return out
    if name == "MAKEDATE":
        year, month, day = (int(a) for a in args)
        return np.datetime64(f"{year:04d}-{month:02d}-{day:02d}", "D")

    if name == "COALESCE":
        out = _as_array(args[0], n)
        if out.dtype.kind in ("i", "u", "b"):
            return out
        out = out.copy()
        for other in args[1:]:
            missing = isna_array(out)
            if not missing.any():
                break
            filler = _as_array(other, n)
            if out.dtype == object:
                out[missing] = filler[missing] if isinstance(other, np.ndarray) else other
            else:
                out[missing] = filler[missing].astype(out.dtype) if isinstance(other, np.ndarray) else other
        return out
    if name == "NULLIF":
        a = _as_array(args[0], n)
        b = args[1]
        out = a.astype(np.float64) if a.dtype.kind in ("i", "u") else a.copy()
        equal = a == (b if not isinstance(b, np.ndarray) else b)
        if out.dtype == object:
            out[equal] = None
        elif out.dtype.kind == "f":
            out[equal] = np.nan
        return out

    raise SQLBindError(f"unknown SQL function {name!r}")
