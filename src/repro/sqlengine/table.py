"""In-memory columnar tables and runtime chunks."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import SQLBindError
from ..dataframe._common import coerce_array

__all__ = ["Table", "Chunk"]


class Table:
    """A named base table with constraint metadata.

    Constraint metadata (primary key / unique columns) is what PyTond's
    translator reads from the database catalog to drive the
    group-aggregate-elimination and self-join-elimination optimizations
    (Section III-A / IV of the paper).
    """

    def __init__(
        self,
        name: str,
        data: Mapping[str, np.ndarray],
        primary_key: list[str] | None = None,
        unique: Iterable[str] | None = None,
    ):
        self.name = name
        self.columns: list[str] = []
        self.arrays: list[np.ndarray] = []
        n = None
        for col, values in data.items():
            arr = coerce_array(values)
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise SQLBindError(f"column {col!r} length mismatch in table {name!r}")
            self.columns.append(str(col))
            self.arrays.append(arr)
        self.nrows = n if n is not None else 0
        self.primary_key = list(primary_key) if primary_key else []
        self.unique_columns = set(unique) if unique else set()
        if len(self.primary_key) == 1:
            self.unique_columns.add(self.primary_key[0])

    def column(self, name: str) -> np.ndarray:
        try:
            return self.arrays[self.columns.index(name)]
        except ValueError:
            raise SQLBindError(f"column {name!r} not found in table {self.name!r}") from None

    @property
    def dtypes(self) -> list[np.dtype]:
        """Per-column dtypes without forcing column materialization.

        Stored tables override this to answer from the manifest; planner
        and catalog code must use it instead of touching ``arrays``."""
        return [a.dtype for a in self.arrays]

    def sample(self, name: str, step: int) -> np.ndarray:
        """A strided sample of one column (planner statistics probe)."""
        return self.column(name)[:: max(1, step)]

    def chunk(self) -> "Chunk":
        return Chunk(list(self.columns), list(self.arrays))

    def scan(self, keep_columns: list[str] | None = None,
             chunk_ids: list[int] | None = None) -> "Chunk":
        """Materialize the table for a Scan operator.

        *keep_columns* prunes to the referenced columns (same fallback as
        :meth:`Chunk.project`).  *chunk_ids* selects storage chunks for
        zone-map pruned scans — meaningless for a RAM-resident table, which
        has a single implicit chunk, so it is ignored here; stored tables
        override this method and honour it.
        """
        chunk = self.chunk()
        if keep_columns is not None:
            chunk = chunk.project(keep_columns)
        return chunk

    # Storage metadata defaults: a RAM-resident table is one implicit chunk
    # with no zone maps; the stored-table subclass overrides these.
    @property
    def nchunks(self) -> int:
        return 1 if self.nrows else 0

    def chunk_stats(self, column: str, chunk_id: int):
        """Per-chunk zone-map stats (``ZoneStats``) or None when untracked."""
        return None

    def __repr__(self) -> str:
        return f"Table({self.name!r}, cols={self.columns}, n={self.nrows})"


class Chunk:
    """A runtime relation: ordered column names + equal-length arrays."""

    __slots__ = ("columns", "arrays")

    def __init__(self, columns: list[str], arrays: list[np.ndarray]):
        self.columns = columns
        self.arrays = arrays

    @property
    def nrows(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    @property
    def ncols(self) -> int:
        return len(self.columns)

    def slot(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise SQLBindError(f"column {name!r} not found") from None

    def project(self, wanted) -> "Chunk":
        """Keep columns whose name is in *wanted* (first column if none
        match, so downstream operators always see a row count)."""
        names = set(wanted)
        keep = [i for i, c in enumerate(self.columns) if c in names]
        if len(keep) == len(self.columns):
            return self
        if not keep:
            keep = [0]
        return Chunk([self.columns[i] for i in keep], [self.arrays[i] for i in keep])

    def take(self, positions: np.ndarray) -> "Chunk":
        return Chunk(list(self.columns), [a[positions] for a in self.arrays])

    def mask(self, mask: np.ndarray) -> "Chunk":
        return Chunk(list(self.columns), [a[mask] for a in self.arrays])

    def slice(self, start: int, stop: int) -> "Chunk":
        return Chunk(list(self.columns), [a[start:stop] for a in self.arrays])

    def head(self, n: int) -> "Chunk":
        return self.slice(0, n)

    @staticmethod
    def concat(chunks: list["Chunk"]) -> "Chunk":
        if not chunks:
            return Chunk([], [])
        first = chunks[0]
        arrays = []
        for i in range(first.ncols):
            parts = [c.arrays[i] for c in chunks]
            target = parts[0].dtype
            for p in parts[1:]:
                if p.dtype != target:
                    target = np.promote_types(target, p.dtype) if p.dtype != object and target != object else np.dtype(object)
            arrays.append(np.concatenate([p.astype(target) for p in parts]))
        return Chunk(list(first.columns), arrays)

    def to_dict(self) -> dict[str, list]:
        return {c: a.tolist() for c, a in zip(self.columns, self.arrays)}

    def __repr__(self) -> str:
        return f"Chunk(cols={self.columns}, n={self.nrows})"
