"""Window-function kernel library: partition-parallel SQL window evaluation.

This module backs the :class:`~.plan.Window` physical operator.  It provides

* :func:`sort_positions` — the stable multi-key argsort shared with ORDER BY;
* :class:`WindowLayout` — partitions factorized once per distinct
  ``(PARTITION BY, ORDER BY)`` spec, with the sorted row order, partition
  starts, and peer-group boundaries every kernel needs;
* ranking kernels (:func:`row_number`, :func:`rank`, :func:`dense_rank`,
  :func:`ntile`), offset kernels (:func:`shift` — LAG/LEAD), and framed
  aggregates (:func:`framed_aggregate` — SUM/AVG/MIN/MAX/COUNT over ``ROWS
  BETWEEN``/``RANGE`` frames);
* :func:`evaluate_window_calls` — the orchestration entry point used by the
  operator: groups the window calls of one SELECT by spec so each distinct
  spec is factorized and sorted exactly once, then reduces morsel-parallel
  across the shared worker pool (:mod:`.parallel`).

Parallelization strategy: all kernels are pure functions of a contiguous
run of whole partitions in the sorted domain, so the sorted row space is
split at partition boundaries into ``~threads`` slices and each slice is
reduced on the pool (NumPy kernels release the GIL).  Results concatenate
in slice order: ranking/offset/COUNT/MIN/MAX kernels are bit-identical to
a serial evaluation; SUM/AVG agree up to floating-point summation order
(their prefix sums associate per slice), the same tolerance the parallel
hash aggregate is held to.

Kernels never mutate their inputs: sort keys are always derived into fresh
arrays (``_sort_key`` copies before any in-place fill or negation), so the
source chunks survive ORDER BY / window evaluation unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataframe._common import isna_array
from ..errors import SQLExecutionError, UnsupportedFeatureError
from .grouping import factorize, factorize_many
from .parallel import parallel_map

__all__ = [
    "sort_positions", "row_number", "rank", "dense_rank", "ntile", "shift",
    "framed_aggregate", "WindowLayout", "build_layout",
    "evaluate_window_calls",
]

# Below this many rows the thread handoff costs more than the reduction.
_PARALLEL_MIN_ROWS = 4096


# ---------------------------------------------------------------------------
# Sort keys (shared with ORDER BY)
# ---------------------------------------------------------------------------

def _sort_key(arr: np.ndarray, ascending: bool) -> np.ndarray:
    """Transform a column into an int/float key usable by lexsort.

    Always returns a fresh array: every path copies (or derives a new
    array) before any in-place fill or negation, so the caller's column is
    never mutated — ORDER BY and window evaluation must leave source
    chunks untouched.
    """
    if arr.dtype.kind in ("i", "u", "b"):
        key = arr.astype(np.int64, copy=True)
        return key if ascending else -key
    if arr.dtype.kind == "f":
        key = arr.copy()
        nan = np.isnan(key)
        if not ascending:
            key = -key  # fresh array; the copy above is never aliased out
        key[nan] = np.inf  # nulls sort last either way
        return key
    if arr.dtype.kind == "M":
        # astype() copies here (dtype changes), so the fills below are safe.
        key = arr.astype("datetime64[D]").astype(np.int64)
        nat = isna_array(arr)
        if not ascending:
            key = -key
        key[nat] = np.iinfo(np.int64).max  # nulls sort last either way
        return key
    # object (strings): factorize to ranks; uniques from np.unique are sorted.
    gids, uniques = factorize(arr)
    if uniques.dtype == object:
        # dict-based factorization is first-appearance ordered; re-rank.
        order = sorted(range(len(uniques)), key=lambda i: (uniques[i] is None, uniques[i]))
        remap = np.empty(len(uniques), dtype=np.int64)
        for rank_, idx in enumerate(order):
            remap[idx] = rank_
        gids = remap[gids]
    return gids if ascending else -gids


def sort_positions(arrays: list[np.ndarray], ascendings: list[bool]) -> np.ndarray:
    """Stable multi-key argsort (first array is the primary key)."""
    if not arrays:
        return np.arange(0)
    keys = [_sort_key(arr, asc) for arr, asc in zip(arrays, ascendings)]
    # np.lexsort sorts by the LAST key first -> reverse.
    return np.lexsort(tuple(reversed(keys)))


# ---------------------------------------------------------------------------
# Layout: factorize partitions once per (PARTITION BY, ORDER BY) spec
# ---------------------------------------------------------------------------

@dataclass
class WindowLayout:
    """Shared geometry for every window call with one spec.

    All arrays describe the *sorted* domain: ``order`` maps sorted position
    -> original row, ``starts`` holds the offset of each partition's first
    row, and ``peer_starts`` flags rows that begin a new peer group (a run
    of rows equal on every ORDER BY key within one partition).  Scatter a
    sorted-domain result ``s`` back with ``out[order] = s``.
    """

    n: int
    order: np.ndarray        # sorted position -> original row index
    starts: np.ndarray       # partition start offsets (sorted domain)
    peer_starts: np.ndarray  # bool flags, True where a peer group begins

    def counts(self) -> np.ndarray:
        """Rows per partition, aligned with :attr:`starts`."""
        return np.diff(np.append(self.starts, self.n))

    def part_start_rows(self) -> np.ndarray:
        """Per sorted row, the offset of its partition's first row."""
        return np.repeat(self.starts, self.counts())

    def slices(self, parts: int) -> list[tuple[int, int]]:
        """Split the sorted domain into at most *parts* contiguous slices
        whose boundaries coincide with partition starts (kernels are pure
        within whole partitions, so slices evaluate independently)."""
        if parts <= 1 or self.n == 0 or len(self.starts) <= 1:
            return [(0, self.n)]
        ideal = np.linspace(0, self.n, parts + 1)[1:-1]
        cut_idx = np.searchsorted(self.starts, ideal)
        cuts = sorted({0, self.n, *(int(self.starts[min(i, len(self.starts) - 1)])
                                    for i in cut_idx)})
        return [(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)
                if cuts[i + 1] > cuts[i]]


def build_layout(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
) -> WindowLayout:
    """Factorize the partition keys and sort once for one window spec.

    The derived ORDER BY sort keys feed both the lexsort and the peer-group
    comparison, so each key column is transformed exactly once.
    """
    order_keys = [_sort_key(arr, asc)
                  for arr, asc in zip(order_arrays, order_ascendings)]
    if partition_arrays:
        gids, _, _ = factorize_many(partition_arrays)
        # np.lexsort sorts by the LAST key first -> reverse (gids primary).
        order = np.lexsort(tuple(reversed([gids] + order_keys)))
        sorted_gids = gids[order]
        boundary = np.empty(n, dtype=bool)
        if n:
            boundary[0] = True
            boundary[1:] = sorted_gids[1:] != sorted_gids[:-1]
        starts = np.nonzero(boundary)[0]
    else:
        if order_keys:
            order = np.lexsort(tuple(reversed(order_keys)))
        else:
            order = np.arange(n, dtype=np.int64)
        boundary = np.zeros(n, dtype=bool)
        if n:
            boundary[0] = True
        starts = np.zeros(1 if n else 0, dtype=np.int64)
    peer = boundary.copy()
    for key in order_keys:
        sorted_key = key[order]
        if n > 1:
            peer[1:] |= sorted_key[1:] != sorted_key[:-1]
    return WindowLayout(n=n, order=order, starts=starts, peer_starts=peer)


def _map_slices(layout: WindowLayout, threads: int, fn) -> np.ndarray:
    """Run ``fn(lo, hi, local_starts)`` over partition-aligned slices of the
    sorted domain — on the shared pool when it pays off — and concatenate."""
    n = layout.n
    if threads <= 1 or n < _PARALLEL_MIN_ROWS:
        return fn(0, n, layout.starts)
    slices = layout.slices(threads)
    if len(slices) <= 1:
        return fn(0, n, layout.starts)

    def run(bounds: tuple[int, int]) -> np.ndarray:
        lo, hi = bounds
        i = int(np.searchsorted(layout.starts, lo))
        j = int(np.searchsorted(layout.starts, hi))
        return fn(lo, hi, layout.starts[i:j] - lo)

    return np.concatenate(parallel_map(threads, run, slices))


def _within(n: int, starts: np.ndarray) -> np.ndarray:
    """0-based offset of each sorted row inside its partition."""
    counts = np.diff(np.append(starts, n))
    return np.arange(n, dtype=np.int64) - np.repeat(starts, counts)


# ---------------------------------------------------------------------------
# Ranking kernels
# ---------------------------------------------------------------------------

def row_number(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
    threads: int = 1,
) -> np.ndarray:
    """``ROW_NUMBER()``: 1-based position within the partition."""
    layout = build_layout(n, partition_arrays, order_arrays, order_ascendings)
    return _row_number(layout, threads)


def _row_number(layout: WindowLayout, threads: int) -> np.ndarray:
    out = np.empty(layout.n, dtype=np.int64)
    out[layout.order] = _map_slices(
        layout, threads, lambda lo, hi, st: _within(hi - lo, st) + 1
    )
    return out


def rank(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
    threads: int = 1,
) -> np.ndarray:
    """``RANK()`` with gaps: peers share the smallest row number."""
    layout = build_layout(n, partition_arrays, order_arrays, order_ascendings)
    return _rank(layout, threads, dense=False)


def dense_rank(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
    threads: int = 1,
) -> np.ndarray:
    """``DENSE_RANK()``: like RANK but without gaps after ties."""
    layout = build_layout(n, partition_arrays, order_arrays, order_ascendings)
    return _rank(layout, threads, dense=True)


def _rank(layout: WindowLayout, threads: int, dense: bool) -> np.ndarray:
    peer = layout.peer_starts

    def kernel(lo: int, hi: int, starts: np.ndarray) -> np.ndarray:
        m = hi - lo
        flags = peer[lo:hi]
        if dense:
            cum = np.cumsum(flags)
            counts = np.diff(np.append(starts, m))
            base = np.repeat(cum[starts], counts)
            return (cum - base + 1).astype(np.int64)
        rn = _within(m, starts) + 1
        group_starts = np.nonzero(flags)[0]
        group_counts = np.diff(np.append(group_starts, m))
        return np.repeat(rn[group_starts], group_counts)

    out = np.empty(layout.n, dtype=np.int64)
    out[layout.order] = _map_slices(layout, threads, kernel)
    return out


def ntile(layout: WindowLayout, tiles: int, threads: int = 1) -> np.ndarray:
    """``NTILE(tiles)``: the first ``size % tiles`` buckets get one extra row."""
    if tiles <= 0:
        raise SQLExecutionError("NTILE requires a positive tile count")

    def kernel(lo: int, hi: int, starts: np.ndarray) -> np.ndarray:
        m = hi - lo
        counts = np.diff(np.append(starts, m))
        size = np.repeat(counts, counts).astype(np.int64)
        within = _within(m, starts)
        big = size // tiles + 1          # rows in each of the first (size % tiles)
        small = np.maximum(size // tiles, 1)
        extra = size % tiles
        pivot = extra * big              # rows covered by the big buckets
        in_big = within < pivot
        tile = np.where(
            in_big,
            within // np.maximum(big, 1),
            extra + (within - pivot) // small,
        )
        return (tile + 1).astype(np.int64)

    out = np.empty(layout.n, dtype=np.int64)
    out[layout.order] = _map_slices(layout, threads, kernel)
    return out


# ---------------------------------------------------------------------------
# Offset kernel (LAG / LEAD)
# ---------------------------------------------------------------------------

def shift(layout: WindowLayout, values: np.ndarray, offset: int,
          default=None, threads: int = 1) -> np.ndarray:
    """``LAG(x, offset)`` (positive) / ``LEAD`` (negative), with *default*
    filling positions whose source falls outside the partition."""
    promoted, fill = _null_fillable(values, default)
    values_sorted = promoted[layout.order]

    def kernel(lo: int, hi: int, starts: np.ndarray) -> np.ndarray:
        m = hi - lo
        vals = values_sorted[lo:hi]
        counts = np.diff(np.append(starts, m))
        pstart = np.repeat(starts, counts)
        idx = np.arange(m, dtype=np.int64)
        src = idx - offset
        valid = (src >= pstart) & (src < pstart + np.repeat(counts, counts))
        out = np.full(m, fill, dtype=vals.dtype)
        out[valid] = vals[src[valid]]
        return out

    out = np.empty(layout.n, dtype=values_sorted.dtype)
    out[layout.order] = _map_slices(layout, threads, kernel)
    return out


def _null_fillable(values: np.ndarray, default):
    """Promote *values* so *default* (possibly NULL) is representable.

    Returns ``(array, fill)`` with NaN/NaT/None standing in for missing
    when no default is given; an integer default on an integer column keeps
    the integer dtype.  Shared by the LAG/LEAD kernel and `Series.shift`,
    which must agree on these promotion rules.
    """
    if default is None:
        if values.dtype.kind in ("i", "u", "b"):
            return values.astype(np.float64), np.nan  # NULL needs NaN
        if values.dtype.kind == "f":
            return values, np.nan
        if values.dtype.kind == "M":
            return values, np.datetime64("NaT")
        return values.astype(object, copy=False), None
    if values.dtype.kind in ("i", "u") and isinstance(default, (int, np.integer)):
        return values, np.int64(default)
    if values.dtype.kind in ("i", "u", "f", "b"):
        return values.astype(np.float64), float(default)
    return values.astype(object, copy=False), default


# ---------------------------------------------------------------------------
# Framed aggregates (SUM / AVG / MIN / MAX / COUNT)
# ---------------------------------------------------------------------------

# Frame descriptor: (unit, start_kind, start_offset, end_kind, end_offset)
# where kinds are "unbounded_preceding" | "preceding" | "current" |
# "following" | "unbounded_following" and unit is "rows" | "range".
WHOLE_PARTITION = ("rows", "unbounded_preceding", 0, "unbounded_following", 0)
RANGE_TO_CURRENT = ("range", "unbounded_preceding", 0, "current", 0)


def _frame_bounds(unit: str, kind: str, off: int, idx: np.ndarray,
                  pstart: np.ndarray, pend: np.ndarray) -> np.ndarray:
    if kind == "unbounded_preceding":
        return pstart.copy()
    if kind == "unbounded_following":
        return pend.copy()
    if kind == "current":
        return idx.copy()
    if kind == "preceding":
        return idx - off
    if kind == "following":
        return idx + off
    raise SQLExecutionError(f"unknown frame bound {kind!r}")


def framed_aggregate(layout: WindowLayout, values: np.ndarray | None,
                     func: str, frame: tuple, threads: int = 1) -> np.ndarray:
    """Evaluate ``func`` over each row's frame.

    ``values`` is the aggregate argument in *original* row order (``None``
    for ``COUNT(*)``).  SUM/AVG/COUNT use prefix sums (O(n) per slice);
    MIN/MAX use ``ufunc.reduceat`` over per-row ``[lo, hi]`` index pairs,
    with a fast whole-partition path and a running ``accumulate`` path for
    the common unbounded-preceding frames.  SQL null semantics throughout:
    NULL inputs are skipped, an all-NULL or empty frame aggregates to NULL
    (COUNT: 0).
    """
    if values is None and func != "COUNT":
        raise SQLExecutionError(f"{func} window aggregate requires an argument")
    if func in ("SUM", "AVG", "COUNT"):
        out_sorted = _sum_like(layout, values, func, frame, threads)
    elif func in ("MIN", "MAX"):
        out_sorted = _minmax(layout, values, func, frame, threads)
    else:
        raise UnsupportedFeatureError(f"unsupported window aggregate {func!r}")
    out = np.empty(layout.n, dtype=out_sorted.dtype)
    out[layout.order] = out_sorted
    return out


def _lo_hi(unit: str, sk: str, so: int, ek: str, eo: int, m: int,
           starts: np.ndarray, peer: np.ndarray | None):
    """Per-row inclusive frame bounds [lo, hi] in slice-local coordinates."""
    counts = np.diff(np.append(starts, m))
    pstart = np.repeat(starts, counts)
    pend = pstart + np.repeat(counts, counts) - 1
    idx = np.arange(m, dtype=np.int64)
    if unit == "range":
        # Peer-group frames: extend the ROWS bounds to whole peer groups.
        if peer is None:
            raise SQLExecutionError("range frame requires peer flags")
        group_starts = np.nonzero(peer)[0]
        group_counts = np.diff(np.append(group_starts, m))
        gstart = np.repeat(group_starts, group_counts)
        gend = gstart + np.repeat(group_counts, group_counts) - 1
        if (sk, ek) != ("unbounded_preceding", "current"):
            if (sk, ek) == ("unbounded_preceding", "unbounded_following"):
                return pstart, pend
            raise UnsupportedFeatureError(
                "RANGE frames support UNBOUNDED PRECEDING .. CURRENT ROW only"
            )
        return pstart, gend
    lo = np.clip(_frame_bounds(unit, sk, so, idx, pstart, pend), pstart, None)
    hi = np.clip(_frame_bounds(unit, ek, eo, idx, pstart, pend), None, pend)
    return lo, hi


def _sum_like(layout, values, func: str, frame, threads: int) -> np.ndarray:
    unit, sk, so, ek, eo = frame
    peer_all = layout.peer_starts
    vals_sorted = None
    valid_sorted = None
    if values is not None:
        v = values[layout.order]
        valid_sorted = (~isna_array(v)).astype(np.float64)
        if func != "COUNT":  # COUNT only needs validity, not the values
            if v.dtype == object:
                vals_sorted = np.array(
                    [0.0 if x is None else float(x) for x in v], dtype=np.float64
                )
            else:
                w = v.astype(np.float64)
                vals_sorted = np.where(np.isnan(w), 0.0, w)

    def kernel(lo_: int, hi_: int, starts: np.ndarray) -> np.ndarray:
        m = hi_ - lo_
        lo, hi = _lo_hi(unit, sk, so, ek, eo, m, starts,
                        peer_all[lo_:hi_] if m else peer_all[:0])
        empty = lo > hi
        if values is None:  # COUNT(*): frame width, no null skipping
            out = (hi - lo + 1).astype(np.int64)
            out[empty] = 0
            return out
        # A frame may start past the partition end (pure FOLLOWING frames):
        # clamp the prefix-sum lookups; `empty` already marks those rows.
        lo_idx = np.clip(lo, 0, m)
        hi_idx = np.clip(hi + 1, 0, m)
        ok = valid_sorted[lo_:hi_]
        ccnt = np.concatenate(([0.0], np.cumsum(ok)))
        c = ccnt[hi_idx] - ccnt[lo_idx]
        c[empty] = 0.0
        if func == "COUNT":
            return c.astype(np.int64)
        csum = np.concatenate(([0.0], np.cumsum(vals_sorted[lo_:hi_])))
        s = csum[hi_idx] - csum[lo_idx]
        s[empty] = 0.0
        if func == "AVG":
            with np.errstate(invalid="ignore", divide="ignore"):
                return s / c  # 0/0 -> NaN == SQL NULL
        s[c == 0] = np.nan  # SUM over an empty/all-NULL frame is NULL
        return s

    return _map_slices(layout, threads, kernel)


def _minmax(layout, values, func: str, frame, threads: int) -> np.ndarray:
    if values is None:
        raise SQLExecutionError(f"{func} window aggregate requires an argument")
    unit, sk, so, ek, eo = frame
    peer_all = layout.peer_starts
    v = values[layout.order]
    if v.dtype.kind == "M":
        work = v.astype("datetime64[D]").astype(np.float64)
        work[isna_array(v)] = np.nan
        restore = "datetime"
    elif v.dtype == object:
        work = np.array([np.nan if x is None else float(x) for x in v],
                        dtype=np.float64)
        restore = "float"
    else:
        work = v.astype(np.float64)
        restore = "int" if v.dtype.kind in ("i", "u") else "float"
    fill = np.inf if func == "MIN" else -np.inf
    ufunc = np.minimum if func == "MIN" else np.maximum
    work = np.where(np.isnan(work), fill, work)

    whole = (sk, ek) == ("unbounded_preceding", "unbounded_following")
    running_rows = (unit == "rows" and sk == "unbounded_preceding"
                    and ek == "current")

    def kernel(lo_: int, hi_: int, starts: np.ndarray) -> np.ndarray:
        m = hi_ - lo_
        if m == 0:
            return np.empty(0, dtype=np.float64)
        w = work[lo_:hi_]
        counts = np.diff(np.append(starts, m))
        if whole:
            per_part = ufunc.reduceat(w, starts)
            return np.repeat(per_part, counts)
        if running_rows:
            out = np.empty(m, dtype=np.float64)
            for s, c in zip(starts, counts):  # accumulate resets per partition
                out[s:s + c] = ufunc.accumulate(w[s:s + c])
            return out
        lo, hi = _lo_hi(unit, sk, so, ek, eo, m, starts, peer_all[lo_:hi_])
        empty = lo > hi
        padded = np.append(w, fill)  # lets hi+1 == m index the sentinel
        pairs = np.column_stack((np.clip(lo, 0, m), np.clip(hi + 1, 0, m))).ravel()
        out = ufunc.reduceat(padded, pairs)[::2].astype(np.float64)
        out[empty] = fill
        return out

    out = _map_slices(layout, threads, kernel)
    out = np.where(np.isinf(out), np.nan, out)  # empty/all-NULL frame -> NULL
    if restore == "datetime":
        nat = np.isnan(out)
        dates = out.copy()
        dates[nat] = 0
        result = dates.astype(np.int64).astype("datetime64[D]")
        result[nat] = np.datetime64("NaT")
        return result
    if restore == "int" and not np.isnan(out).any():
        return out.astype(np.int64)
    return out


# ---------------------------------------------------------------------------
# Orchestration: one SELECT's window calls -> arrays
# ---------------------------------------------------------------------------

_RANKING_FUNCS = {"ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE"}
_OFFSET_FUNCS = {"LAG", "LEAD"}
_AGG_FUNCS = {"SUM", "AVG", "MIN", "MAX", "COUNT"}


def _const_arg(evaluator, expr, what: str):
    value = evaluator.eval(expr)
    if isinstance(value, np.ndarray):
        raise UnsupportedFeatureError(f"{what} must be a constant")
    return value


def evaluate_window_calls(chunk, scope, calls, config, subquery_cb=None,
                          params=None) -> dict:
    """Evaluate every :class:`~.sqlast.WindowCall` of one SELECT body.

    Calls are grouped by ``(PARTITION BY, ORDER BY)`` spec so each distinct
    spec builds its :class:`WindowLayout` (factorize + sort) exactly once;
    kernels then reduce morsel-parallel across ``config.threads`` workers.
    Returns ``{id(call): array}`` keyed like the plan's AST nodes.
    """
    from .expressions import Evaluator, expr_key

    evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                          params=params)
    n = chunk.nrows
    threads = config.threads
    layouts: dict[tuple, WindowLayout] = {}
    out: dict[int, np.ndarray] = {}
    for call in calls:
        spec = (
            tuple(expr_key(p) for p in call.partition_by),
            tuple((expr_key(o.expr), o.ascending) for o in call.order_by),
        )
        layout = layouts.get(spec)
        if layout is None:
            parts = [evaluator.eval_array(p) for p in call.partition_by]
            orders = [evaluator.eval_array(o.expr) for o in call.order_by]
            ascendings = [o.ascending for o in call.order_by]
            layout = build_layout(n, parts, orders, ascendings)
            layouts[spec] = layout

        func = call.func
        if func == "ROW_NUMBER":
            result = _row_number(layout, threads)
        elif func in ("RANK", "DENSE_RANK"):
            result = _rank(layout, threads, dense=(func == "DENSE_RANK"))
        elif func == "NTILE":
            tiles = int(_const_arg(evaluator, call.args[0], "NTILE tile count"))
            result = ntile(layout, tiles, threads)
        elif func in _OFFSET_FUNCS:
            values = evaluator.eval_array(call.args[0])
            offset = 1
            if len(call.args) > 1:
                offset = int(_const_arg(evaluator, call.args[1], f"{func} offset"))
            default = None
            if len(call.args) > 2:
                default = _const_arg(evaluator, call.args[2], f"{func} default")
            signed = offset if func == "LAG" else -offset
            result = shift(layout, values, signed, default, threads)
        elif func in _AGG_FUNCS:
            values = evaluator.eval_array(call.args[0]) if call.args else None
            frame = _resolve_frame(call)
            result = framed_aggregate(layout, values, func, frame, threads)
        else:
            raise UnsupportedFeatureError(f"unsupported window function {func!r}")
        out[id(call)] = result
    return out


def _resolve_frame(call) -> tuple:
    """The effective frame of an aggregate window call.

    Standard SQL (and sqlite3, our differential oracle): no ORDER BY means
    the whole partition; ORDER BY without an explicit frame means ``RANGE
    UNBOUNDED PRECEDING .. CURRENT ROW`` — the running aggregate *including
    peers* of the current row.
    """
    if call.frame is not None:
        f = call.frame
        return (f.unit, f.start_kind, f.start_offset, f.end_kind, f.end_offset)
    if call.order_by:
        return RANGE_TO_CURRENT
    return WHOLE_PARTITION
