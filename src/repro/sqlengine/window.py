"""Window function evaluation (ROW_NUMBER / RANK) and shared sort helpers."""

from __future__ import annotations

import numpy as np

from ..dataframe._common import isna_array
from .grouping import factorize, factorize_many

__all__ = ["sort_positions", "row_number", "rank"]


def _sort_key(arr: np.ndarray, ascending: bool) -> np.ndarray:
    """Transform a column into an int/float key usable by lexsort."""
    if arr.dtype.kind in ("i", "u", "b"):
        key = arr.astype(np.int64)
        return key if ascending else -key
    if arr.dtype.kind == "f":
        key = arr.copy()
        nan = np.isnan(key)
        if ascending:
            key[nan] = np.inf  # nulls sort last
            return key
        key = -key
        key[nan] = np.inf
        return key
    if arr.dtype.kind == "M":
        key = arr.astype("datetime64[D]").astype(np.int64)
        nat = isna_array(arr)
        if not ascending:
            key = -key
        key[nat] = np.iinfo(np.int64).max  # nulls sort last either way
        return key
    # object (strings): factorize to ranks; uniques from np.unique are sorted.
    gids, uniques = factorize(arr)
    if uniques.dtype == object:
        # dict-based factorization is first-appearance ordered; re-rank.
        order = sorted(range(len(uniques)), key=lambda i: (uniques[i] is None, uniques[i]))
        remap = np.empty(len(uniques), dtype=np.int64)
        for rank_, idx in enumerate(order):
            remap[idx] = rank_
        gids = remap[gids]
    return gids if ascending else -gids


def sort_positions(arrays: list[np.ndarray], ascendings: list[bool]) -> np.ndarray:
    """Stable multi-key argsort (first array is the primary key)."""
    if not arrays:
        return np.arange(0)
    keys = [_sort_key(arr, asc) for arr, asc in zip(arrays, ascendings)]
    # np.lexsort sorts by the LAST key first -> reverse.
    return np.lexsort(tuple(reversed(keys)))


def row_number(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
) -> np.ndarray:
    """ROW_NUMBER() OVER (PARTITION BY ... ORDER BY ...): 1-based ranks."""
    if not partition_arrays:
        if not order_arrays:
            return np.arange(1, n + 1, dtype=np.int64)
        order = sort_positions(order_arrays, order_ascendings)
        out = np.empty(n, dtype=np.int64)
        out[order] = np.arange(1, n + 1)
        return out
    gids, _, ngroups = factorize_many(partition_arrays)
    sort_arrays = [gids] + list(order_arrays)
    sort_asc = [True] + list(order_ascendings)
    order = sort_positions(sort_arrays, sort_asc)
    sorted_gids = gids[order]
    boundaries = np.empty(n, dtype=bool)
    if n:
        boundaries[0] = True
        boundaries[1:] = sorted_gids[1:] != sorted_gids[:-1]
    starts = np.nonzero(boundaries)[0]
    within = np.arange(n, dtype=np.int64)
    within -= np.repeat(starts, np.diff(np.append(starts, n)))
    out = np.empty(n, dtype=np.int64)
    out[order] = within + 1
    return out


def rank(
    n: int,
    partition_arrays: list[np.ndarray],
    order_arrays: list[np.ndarray],
    order_ascendings: list[bool],
) -> np.ndarray:
    """RANK() with gaps, 1-based."""
    rn = row_number(n, partition_arrays, order_arrays, order_ascendings)
    if not order_arrays:
        return rn
    # Rows with equal order keys (within a partition) share the minimum rn.
    key_arrays = list(partition_arrays) + list(order_arrays)
    gids, _, ngroups = factorize_many(key_arrays)
    mins = np.full(ngroups, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, gids, rn)
    return mins[gids]
