"""User-facing database connection API (the engine's equivalent of
``duckdb.connect()``), including the keyed physical-plan cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..dataframe import DataFrame
from .catalog import Catalog, TableSchema
from .executor import EngineConfig, Executor
from .parser import parse
from .plan import PhysicalPlan
from .planner import Planner, RelSchema
from .sqlast import Query, ValuesClause
from .table import Chunk, Table

__all__ = ["Database", "connect"]

_PLAN_CACHE_LIMIT = 256


@dataclass
class PlanCacheEntry:
    """Parsed AST plus compiled per-SELECT plans for one (sql, config) key.

    The entry keeps the parsed :class:`Query` alive, which makes the
    ``id(Select) -> PhysicalPlan`` map stable (ids of dead objects can be
    recycled; live ones cannot).
    """

    query: Query
    plans: dict[int, PhysicalPlan] = field(default_factory=dict)
    catalog_version: int = 0
    hits: int = 0


class Database:
    """An in-memory analytical database instance."""

    def __init__(self, config: EngineConfig | None = None):
        self.catalog = Catalog()
        self.config = config or EngineConfig()
        self._plan_cache: dict[tuple, PlanCacheEntry] = {}

    # -- data definition ---------------------------------------------------
    def register(
        self,
        name: str,
        data,
        primary_key: list[str] | str | None = None,
        unique: list[str] | None = None,
    ) -> None:
        """Register a table from a DataFrame or a mapping of columns."""
        if isinstance(primary_key, str):
            primary_key = [primary_key]
        if isinstance(data, DataFrame):
            mapping: Mapping = {c: data[c].values for c in data.columns}
        else:
            mapping = data
        self.catalog.register(Table(name, mapping, primary_key=primary_key, unique=unique))

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    def tables(self) -> list[str]:
        return self.catalog.names()

    def schema(self, name: str) -> TableSchema:
        return self.catalog.schema(name)

    # -- plan cache --------------------------------------------------------
    def _plan_entry(self, sql: str, config: EngineConfig) -> Optional[PlanCacheEntry]:
        """The cache entry for (sql, planning-relevant config), if caching
        is enabled.  Stale entries (catalog changed) are rebuilt in place."""
        if not config.plan_cache:
            return None
        key = (sql, config.join_reorder, config.topk_rewrite,
               config.subquery_decorrelate)
        entry = self._plan_cache.get(key)
        if entry is not None and entry.catalog_version == self.catalog.version:
            entry.hits += 1
            return entry
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            # Evict the oldest entry (dict preserves insertion order) so a
            # hot repeated query survives sweeps of one-off statements.
            self._plan_cache.pop(next(iter(self._plan_cache)))
        entry = PlanCacheEntry(parse(sql), catalog_version=self.catalog.version)
        self._plan_cache[key] = entry
        return entry

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        return {
            "entries": len(self._plan_cache),
            "hits": sum(e.hits for e in self._plan_cache.values()),
        }

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    # -- querying -------------------------------------------------------------
    def execute_chunk(self, sql: str, config: EngineConfig | None = None) -> Chunk:
        cfg = config or self.config
        entry = self._plan_entry(sql, cfg)
        if entry is None:
            executor = Executor(self.catalog, cfg)
            return executor.execute(parse(sql))
        executor = Executor(self.catalog, cfg, plans=entry.plans)
        return executor.execute(entry.query)

    def explain(self, sql: str, config: EngineConfig | None = None) -> str:
        """EXPLAIN ANALYZE: execute the query, returning the physical plan
        trace (scans with pushed-down filters, join order and cardinalities,
        aggregation, sort/limit) instead of the result."""
        cfg = config or self.config
        entry = self._plan_entry(sql, cfg)
        trace: list[str] = []
        executor = Executor(self.catalog, cfg, trace=trace,
                            plans=entry.plans if entry else None)
        executor.execute(entry.query if entry else parse(sql))
        return "\n".join(trace)

    def explain_plan(self, sql: str, config: EngineConfig | None = None) -> str:
        """EXPLAIN: render the statically-compiled physical plan tree
        (operators, pushed-down predicates, join order, cardinality
        estimates) without executing the query.

        Plans built here are throwaway — execution-time planning sees the
        materialized CTE cardinalities, which the static estimates here do
        not, so they must never seed the shared plan cache.
        """
        cfg = config or self.config
        query = parse(sql)
        planner = Planner(self.catalog, cfg)

        lines: list[str] = []
        env_schemas: dict[str, RelSchema] = {}
        for cte in query.ctes:
            if isinstance(cte.query, ValuesClause):
                ncols = len(cte.query.rows[0]) if cte.query.rows else 0
                columns = cte.column_names or [f"col{i}" for i in range(ncols)]
                env_schemas[cte.name] = RelSchema(list(columns), float(len(cte.query.rows)))
                lines.append(f"CTE {cte.name}: VALUES ({len(cte.query.rows)} rows)")
                continue
            plan = planner.plan_body(cte.query, env_schemas)
            columns = cte.column_names or plan.output_columns
            env_schemas[cte.name] = RelSchema(list(columns), plan.est_rows or 1000.0)
            lines.append(f"CTE {cte.name}:")
            lines.extend("  " + ln for ln in plan.render().splitlines())
        plan = planner.plan_body(query.body, env_schemas)
        lines.append(plan.render())
        return "\n".join(lines)

    def execute(self, sql: str, config: EngineConfig | None = None) -> DataFrame:
        chunk = self.execute_chunk(sql, config)
        data: dict[str, np.ndarray] = {}
        for col, arr in zip(chunk.columns, chunk.arrays):
            out_name = col
            i = 1
            while out_name in data:  # disambiguate duplicate output names
                out_name = f"{col}_{i}"
                i += 1
            data[out_name] = arr
        return DataFrame(data)

    def with_config(self, **overrides) -> "Database":
        """A view of the same catalog under a different engine config."""
        from dataclasses import replace

        other = Database.__new__(Database)
        other.catalog = self.catalog
        other.config = replace(self.config, **overrides)
        other._plan_cache = {}
        return other


def connect(config: EngineConfig | None = None) -> Database:
    """Create a fresh in-memory database."""
    return Database(config)
