"""User-facing database connection API (the engine's equivalent of
``duckdb.connect()``)."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..dataframe import DataFrame
from .catalog import Catalog, TableSchema
from .executor import EngineConfig, Executor
from .parser import parse
from .table import Chunk, Table

__all__ = ["Database", "connect"]


class Database:
    """An in-memory analytical database instance."""

    def __init__(self, config: EngineConfig | None = None):
        self.catalog = Catalog()
        self.config = config or EngineConfig()

    # -- data definition ---------------------------------------------------
    def register(
        self,
        name: str,
        data,
        primary_key: list[str] | str | None = None,
        unique: list[str] | None = None,
    ) -> None:
        """Register a table from a DataFrame or a mapping of columns."""
        if isinstance(primary_key, str):
            primary_key = [primary_key]
        if isinstance(data, DataFrame):
            mapping: Mapping = {c: data[c].values for c in data.columns}
        else:
            mapping = data
        self.catalog.register(Table(name, mapping, primary_key=primary_key, unique=unique))

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    def tables(self) -> list[str]:
        return self.catalog.names()

    def schema(self, name: str) -> TableSchema:
        return self.catalog.schema(name)

    # -- querying -------------------------------------------------------------
    def execute_chunk(self, sql: str, config: EngineConfig | None = None) -> Chunk:
        query = parse(sql)
        executor = Executor(self.catalog, config or self.config)
        return executor.execute(query)

    def explain(self, sql: str, config: EngineConfig | None = None) -> str:
        """EXPLAIN ANALYZE: execute the query, returning the physical plan
        trace (scans with pushed-down filters, join order and cardinalities,
        aggregation, sort/limit) instead of the result."""
        query = parse(sql)
        trace: list[str] = []
        executor = Executor(self.catalog, config or self.config, trace=trace)
        executor.execute(query)
        return "\n".join(trace)

    def execute(self, sql: str, config: EngineConfig | None = None) -> DataFrame:
        chunk = self.execute_chunk(sql, config)
        data: dict[str, np.ndarray] = {}
        for col, arr in zip(chunk.columns, chunk.arrays):
            out_name = col
            i = 1
            while out_name in data:  # disambiguate duplicate output names
                out_name = f"{col}_{i}"
                i += 1
            data[out_name] = arr
        return DataFrame(data)

    def with_config(self, **overrides) -> "Database":
        """A view of the same catalog under a different engine config."""
        from dataclasses import replace

        other = Database.__new__(Database)
        other.catalog = self.catalog
        other.config = replace(self.config, **overrides)
        return other


def connect(config: EngineConfig | None = None) -> Database:
    """Create a fresh in-memory database."""
    return Database(config)
