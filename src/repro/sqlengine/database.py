"""User-facing database connection API (the engine's equivalent of
``duckdb.connect()``), the shared LRU physical-plan cache, and prepared
statements.

Serving model (see ``docs/ARCHITECTURE.md`` "Serving layer"): one
:class:`Database` may be shared by many client threads.  The plan cache is
a bounded, lock-protected LRU keyed by *query shape* — the SQL text (with
``?``/``:name`` placeholders) plus the planning-relevant config knobs —
never by bound parameter values, so every execution of a prepared statement
reuses one compiled plan.  Each ``execute`` call gets its own
:class:`~.executor.Executor`, so runtime state (bound parameters,
cancellation, tracing) is never shared across concurrent queries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..dataframe import DataFrame
from .catalog import Catalog, TableSchema
from .executor import EngineConfig, Executor
from .params import ParamSignature, bind_parameters, signature_of
from .parser import parse
from .plan import PhysicalPlan
from .planner import Planner, RelSchema
from .sqlast import Query, ValuesClause
from .table import Chunk, Table

__all__ = ["Database", "PreparedStatement", "connect"]


@dataclass
class PlanCacheEntry:
    """Parsed AST plus compiled per-SELECT plans for one (sql, config) key.

    The entry keeps the parsed :class:`Query` alive, which makes the
    ``id(Select) -> PhysicalPlan`` map stable (ids of dead objects can be
    recycled; live ones cannot).  ``signature`` is the statement's
    placeholder shape, derived once at parse time.
    """

    query: Query
    plans: dict[int, PhysicalPlan] = field(default_factory=dict)
    catalog_version: int = 0
    hits: int = 0
    signature: ParamSignature = field(default_factory=ParamSignature)


class Database:
    """An in-memory analytical database instance."""

    def __init__(self, config: EngineConfig | None = None):
        self.catalog = Catalog()
        self.config = config or EngineConfig()
        self._plan_cache: OrderedDict[tuple, PlanCacheEntry] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0

    # -- data definition ---------------------------------------------------
    def register(
        self,
        name: str,
        data,
        primary_key: list[str] | str | None = None,
        unique: list[str] | None = None,
    ) -> None:
        """Register a table from a DataFrame or a mapping of columns."""
        if isinstance(primary_key, str):
            primary_key = [primary_key]
        if isinstance(data, DataFrame):
            mapping: Mapping = {c: data[c].values for c in data.columns}
        else:
            mapping = data
        self.catalog.register(Table(name, mapping, primary_key=primary_key, unique=unique))

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    def tables(self) -> list[str]:
        return self.catalog.names()

    def schema(self, name: str) -> TableSchema:
        return self.catalog.schema(name)

    # -- plan cache --------------------------------------------------------
    @staticmethod
    def _cache_key(sql: str, config: EngineConfig) -> tuple:
        """The query-shape key: SQL text (placeholders included, literal
        parameter values never) + the full backend-profile fingerprint.

        Keying on a *subset* of planning flags was a latent bug: two
        backend configs agreeing on that subset (e.g. profiles differing
        only in execution mode or window support) would share one cache
        entry, so the second backend executed a plan compiled for the
        first — see :meth:`EngineConfig.plan_fingerprint`.
        """
        return (sql, config.plan_fingerprint())

    def _plan_entry(self, sql: str, config: EngineConfig) -> Optional[PlanCacheEntry]:
        """The cache entry for (sql, planning-relevant config), if caching
        is enabled.  Stale entries (catalog changed) are rebuilt; the cache
        is a bounded LRU (``EngineConfig.plan_cache_size`` on the
        Database's own config) and safe for concurrent callers."""
        if not config.plan_cache:
            return None
        key = self._cache_key(sql, config)
        version = self.catalog.version
        with self._cache_lock:
            entry = self._plan_cache.get(key)
            if entry is not None and entry.catalog_version == version:
                self._plan_cache.move_to_end(key)
                self._cache_hits += 1
                entry.hits += 1
                return entry
        # Parse outside the lock: a slow parse of one novel statement must
        # not stall concurrent cache hits of hot ones.
        query = parse(sql)
        entry = PlanCacheEntry(query, catalog_version=version,
                               signature=signature_of(query))
        capacity = max(1, self.config.plan_cache_size)
        with self._cache_lock:
            current = self._plan_cache.get(key)
            if current is not None and current.catalog_version == version:
                # Another thread won the race to (re)build this entry.
                self._plan_cache.move_to_end(key)
                self._cache_hits += 1
                current.hits += 1
                return current
            self._cache_misses += 1
            self._plan_cache[key] = entry
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > capacity:
                self._plan_cache.popitem(last=False)
                self._cache_evictions += 1
        return entry

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache counters: entries/capacity and lifetime
        hits/misses/evictions (a re-plan forced by DDL counts as a miss)."""
        with self._cache_lock:
            return {
                "entries": len(self._plan_cache),
                "capacity": max(1, self.config.plan_cache_size),
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "evictions": self._cache_evictions,
            }

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        stats = self.cache_stats()
        return {"entries": stats["entries"], "hits": stats["hits"]}

    def clear_plan_cache(self) -> None:
        with self._cache_lock:
            self._plan_cache.clear()
            self._cache_hits = self._cache_misses = self._cache_evictions = 0

    # -- prepared statements ----------------------------------------------
    def prepare(self, sql: str, config: EngineConfig | None = None) -> "PreparedStatement":
        """Compile *sql* (with optional ``?``/``:name`` placeholders) into a
        reusable :class:`PreparedStatement`: parsing happens now, planning on
        first execution, and neither is repeated on the hot path."""
        return PreparedStatement(self, sql, config or self.config)

    # -- querying -------------------------------------------------------------
    def execute_chunk(self, sql: str, config: EngineConfig | None = None,
                      params=None, *, cancel_event=None,
                      deadline: float | None = None, stats=None) -> Chunk:
        cfg = config or self.config
        entry = self._plan_entry(sql, cfg)
        if entry is None:
            query = parse(sql)
            bound = bind_parameters(signature_of(query), params)
            executor = Executor(self.catalog, cfg, params=bound,
                                cancel_event=cancel_event, deadline=deadline,
                                stats=stats)
            return executor.execute(query)
        bound = bind_parameters(entry.signature, params)
        executor = Executor(self.catalog, cfg, plans=entry.plans, params=bound,
                            cancel_event=cancel_event, deadline=deadline,
                            stats=stats)
        return executor.execute(entry.query)

    def explain(self, sql: str, config: EngineConfig | None = None,
                params=None) -> str:
        """EXPLAIN ANALYZE: execute the query, returning the physical plan
        trace (scans with pushed-down filters, join order and cardinalities,
        aggregation, sort/limit) instead of the result."""
        cfg = config or self.config
        entry = self._plan_entry(sql, cfg)
        trace: list[str] = []
        if entry is None:
            query = parse(sql)
            bound = bind_parameters(signature_of(query), params)
        else:
            query = entry.query
            bound = bind_parameters(entry.signature, params)
        executor = Executor(self.catalog, cfg, trace=trace,
                            plans=entry.plans if entry else None, params=bound)
        executor.execute(query)
        return "\n".join(trace)

    def explain_analyze(self, sql: str, config: EngineConfig | None = None,
                        params=None) -> str:
        """EXPLAIN ANALYZE with runtime statistics: execute the query and
        render the executed plan tree annotated with per-operator estimated
        vs. actual row counts, inclusive elapsed milliseconds, and any
        adaptive-execution events (re-plans, build-side swaps, morsel
        re-tuning, subquery short-circuits)."""
        from .runtime_stats import RuntimeStats

        stats = RuntimeStats()
        self.execute_chunk(sql, config, params, stats=stats)
        return stats.render()

    def explain_plan(self, sql: str, config: EngineConfig | None = None) -> str:
        """EXPLAIN: render the statically-compiled physical plan tree
        (operators, pushed-down predicates, join order, cardinality
        estimates) without executing the query.

        Plans built here are throwaway — execution-time planning sees the
        materialized CTE cardinalities, which the static estimates here do
        not, so they must never seed the shared plan cache.
        """
        from ..analysis import verify_plan

        cfg = config or self.config
        query = parse(sql)
        planner = Planner(self.catalog, cfg)

        lines: list[str] = []
        env_schemas: dict[str, RelSchema] = {}
        for cte in query.ctes:
            if isinstance(cte.query, ValuesClause):
                ncols = len(cte.query.rows[0]) if cte.query.rows else 0
                columns = cte.column_names or [f"col{i}" for i in range(ncols)]
                env_schemas[cte.name] = RelSchema(list(columns), float(len(cte.query.rows)))
                lines.append(f"CTE {cte.name}: VALUES ({len(cte.query.rows)} rows)")
                continue
            plan = planner.plan_body(cte.query, env_schemas)
            if cfg.verify_plans:
                verify_plan(plan, self.catalog, cfg, env_schemas)
            columns = cte.column_names or plan.output_columns
            # `est_rows is None` (unknown) falls back to the default, but a
            # legitimate 0.0 estimate (LIMIT 0 body) must survive as-is.
            est = plan.est_rows if plan.est_rows is not None else 1000.0
            env_schemas[cte.name] = RelSchema(list(columns), est)
            lines.append(f"CTE {cte.name}:")
            lines.extend("  " + ln for ln in plan.render().splitlines())
        plan = planner.plan_body(query.body, env_schemas)
        if cfg.verify_plans:
            # CTE schemas here are name-only (RelSchema), so dtype checks
            # relax to unknown; structural invariants still apply.
            verify_plan(plan, self.catalog, cfg, env_schemas)
        lines.append(plan.render())
        return "\n".join(lines)

    @staticmethod
    def _chunk_to_frame(chunk: Chunk) -> DataFrame:
        data: dict[str, np.ndarray] = {}
        for col, arr in zip(chunk.columns, chunk.arrays):
            out_name = col
            i = 1
            while out_name in data:  # disambiguate duplicate output names
                out_name = f"{col}_{i}"
                i += 1
            data[out_name] = arr
        return DataFrame(data)

    def execute(self, sql: str, config: EngineConfig | None = None,
                params=None) -> DataFrame:
        return self._chunk_to_frame(self.execute_chunk(sql, config, params))

    def with_config(self, **overrides) -> "Database":
        """A view of the same catalog under a different engine config."""
        from dataclasses import replace

        other = Database.__new__(Database)
        other.catalog = self.catalog
        other.config = replace(self.config, **overrides)
        other._plan_cache = OrderedDict()
        other._cache_lock = threading.Lock()
        other._cache_hits = other._cache_misses = other._cache_evictions = 0
        return other


class PreparedStatement:
    """A parsed-and-planned statement executable many times with different
    parameter values.

    The statement shares the owning Database's plan-cache entry (so ad-hoc
    executions of the same SQL reuse the same plans) but holds a direct
    reference to it: LRU eviction of the mapping never invalidates a live
    prepared statement, only DDL (catalog version bump) forces a re-plan.
    The hot path — :meth:`execute` after the first call — performs no
    parsing, no planning, and no cache lookup: it binds values, runs the
    compiled plan, and returns.

    Thread-safe: concurrent ``execute`` calls share the compiled plans but
    nothing else (each gets a private Executor).
    """

    def __init__(self, db: Database, sql: str, config: EngineConfig):
        self._db = db
        self.sql = sql
        self._config = config
        entry = db._plan_entry(sql, config)
        if entry is None:  # plan_cache disabled: private plan-once entry
            query = parse(sql)
            entry = PlanCacheEntry(query, catalog_version=db.catalog.version,
                                   signature=signature_of(query))
        self._entry = entry
        self._refresh_lock = threading.Lock()

    @property
    def signature(self) -> ParamSignature:
        """The statement's placeholder shape (positional count or names)."""
        return self._entry.signature

    def _current_entry(self) -> PlanCacheEntry:
        entry = self._entry
        if entry.catalog_version == self._db.catalog.version:
            return entry
        # DDL happened since compilation: re-resolve through the Database
        # cache (which rebuilds stale entries) or rebuild the private entry.
        with self._refresh_lock:
            entry = self._entry
            if entry.catalog_version == self._db.catalog.version:
                return entry
            fresh = self._db._plan_entry(self.sql, self._config)
            if fresh is None:
                query = parse(self.sql)
                fresh = PlanCacheEntry(query,
                                       catalog_version=self._db.catalog.version,
                                       signature=signature_of(query))
            self._entry = fresh
            return fresh

    def execute_chunk(self, params=None, *, cancel_event=None,
                      deadline: float | None = None,
                      trace: list[str] | None = None, stats=None) -> Chunk:
        entry = self._current_entry()
        bound = bind_parameters(entry.signature, params)
        executor = Executor(self._db.catalog, self._config, plans=entry.plans,
                            params=bound, cancel_event=cancel_event,
                            deadline=deadline, trace=trace, stats=stats)
        return executor.execute(entry.query)

    def execute(self, params=None, *, cancel_event=None,
                deadline: float | None = None) -> DataFrame:
        return Database._chunk_to_frame(
            self.execute_chunk(params, cancel_event=cancel_event,
                               deadline=deadline)
        )

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r})"


def connect(config: EngineConfig | None = None) -> Database:
    """Create a fresh in-memory database."""
    return Database(config)
