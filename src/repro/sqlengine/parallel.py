"""Intra-query parallelism: morsel-driven filter/projection evaluation.

The two simulated backends both parallelize scans/filters/projections across
a thread pool (NumPy kernels release the GIL on large arrays, so the
speedups are real, mirroring the scalability analysis of Section V-C).
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

__all__ = ["partition_bounds", "parallel_masks", "parallel_arrays",
           "run_partitions", "parallel_map", "shutdown_pools"]

_POOL_LOCK = threading.Lock()
_POOLS: dict[int, ThreadPoolExecutor] = {}


def _pool(threads: int) -> ThreadPoolExecutor:
    """Shared, lazily-created worker pools (pool startup is ~1ms; creating
    one per operator would dominate small queries)."""
    with _POOL_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=threads)
            _POOLS[threads] = pool
        return pool


def parallel_map(threads: int, fn: Callable, items) -> list:
    """Map *fn* over *items* on the shared pool (serial when ``threads<=1``
    or fewer than two items).  Callers must not hand this work that itself
    re-enters the pool (e.g. subquery evaluation) — a worker blocking on
    futures queued behind itself deadlocks."""
    items = list(items)
    if threads <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    return list(_pool(threads).map(fn, items))


def shutdown_pools(wait: bool = True) -> None:
    """Shut down and forget every shared worker pool.

    Safe to call at any point — the next parallel operator lazily recreates
    its pool.  Registered via ``atexit`` so interpreter shutdown never races
    in-flight workers, and called by the test suite between sessions.
    """
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_pools)


def _reset_after_fork() -> None:
    """Forget inherited pools in a forked child.

    A fork()ed process (a multiprocessing shard worker) inherits the pool
    dict but none of its threads — submitting to such an executor would
    queue work forever.  Dropping the dict (and the lock, which another
    thread may have held at fork time) lets the child lazily create live
    pools of its own.
    """
    global _POOL_LOCK, _POOLS
    _POOL_LOCK = threading.Lock()
    _POOLS = {}


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def partition_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most *parts* contiguous slices."""
    parts = max(1, min(parts, n if n else 1))
    step = (n + parts - 1) // parts if n else 0
    out = []
    start = 0
    while start < n:
        stop = min(start + step, n)
        out.append((start, stop))
        start = stop
    return out or [(0, 0)]


def run_partitions(n: int, threads: int, worker: Callable[[int, int], object]) -> list:
    """Run ``worker(start, stop)`` over partitions, in a pool if threads>1."""
    bounds = partition_bounds(n, threads)
    if threads <= 1 or len(bounds) <= 1 or n < 4096:
        # Tiny inputs: thread handoff costs more than the work itself.
        return [worker(start, stop) for start, stop in bounds]
    pool = _pool(threads)
    futures = [pool.submit(worker, start, stop) for start, stop in bounds]
    return [f.result() for f in futures]


def parallel_masks(n: int, threads: int, make_mask: Callable[[int, int], np.ndarray]) -> np.ndarray:
    """Evaluate a boolean mask over row partitions and concatenate."""
    parts = run_partitions(n, threads, make_mask)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def parallel_arrays(n: int, threads: int, make_arrays: Callable[[int, int], list[np.ndarray]]) -> list[np.ndarray]:
    """Evaluate a list of columns over row partitions and concatenate each."""
    parts = run_partitions(n, threads, make_arrays)
    if len(parts) == 1:
        return parts[0]
    out = []
    for i in range(len(parts[0])):
        segments = [p[i] for p in parts]
        target = segments[0].dtype
        for s in segments[1:]:
            if s.dtype != target:
                target = np.dtype(object) if (s.dtype == object or target == object) else np.promote_types(s.dtype, target)
        out.append(np.concatenate([s.astype(target) for s in segments]))
    return out
