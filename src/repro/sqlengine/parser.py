"""Recursive-descent SQL parser producing the AST in :mod:`sqlast`."""

from __future__ import annotations

from ..errors import SQLSyntaxError
from .lexer import Token, tokenize
from .sqlast import (
    AggCall, BetweenExpr, BinaryOp, CaseExpr, CastExpr, ColumnRef,
    CompoundSelect, ExistsExpr, Expr, FuncCall, InList, InSubquery, IsNull,
    JoinClause, LikeExpr, Literal, OrderItem, Parameter, Query,
    ScalarSubquery, Select, SelectItem, Star, SubqueryRef, TableRef, UnaryOp,
    ValuesClause, WindowCall, WindowFrame, WithQuery,
)

__all__ = ["parse", "parse_expression"]

_AGG_FUNCS = {"SUM", "MIN", "MAX", "AVG", "COUNT", "STDDEV", "VAR"}
_WINDOW_FUNCS = {"ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE", "LAG", "LEAD"}
# Aggregates that may also be applied as window functions (agg(...) OVER).
_WINDOW_AGGS = {"SUM", "MIN", "MAX", "AVG", "COUNT"}


def parse(sql: str) -> Query:
    """Parse a statement (optional WITH chain + SELECT) into a Query."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar expression (used by tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        # Positional ``?`` placeholders are numbered in source order.
        self._positional_params = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _accept_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        tok = self._advance()
        if not (tok.kind == "KEYWORD" and tok.value == word):
            raise SQLSyntaxError(f"expected {word} but found {tok.value!r} at {tok.pos}")

    def _accept_op(self, op: str) -> bool:
        tok = self._peek()
        if tok.kind == "OP" and tok.value == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        tok = self._advance()
        if not (tok.kind == "OP" and tok.value == op):
            raise SQLSyntaxError(f"expected {op!r} but found {tok.value!r} at {tok.pos}")

    def _expect_ident(self) -> str:
        tok = self._advance()
        if tok.kind == "IDENT":
            return tok.value
        if tok.kind == "KEYWORD":  # permit keywords as identifiers where safe
            return tok.value.lower()
        raise SQLSyntaxError(f"expected identifier but found {tok.value!r} at {tok.pos}")

    def _accept_word(self, *words: str) -> bool:
        """Accept a contextual keyword: an IDENT (or keyword) matching one of
        *words* case-insensitively.  Used for window-frame words, which are
        not reserved so they stay usable as column names elsewhere."""
        tok = self._peek()
        if tok.kind in ("IDENT", "KEYWORD") and tok.value.upper() in words:
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            tok = self._peek()
            raise SQLSyntaxError(
                f"expected {word} but found {tok.value!r} at {tok.pos}"
            )

    def _make_param(self, tok: Token) -> Parameter:
        """Build a Parameter node from a PARAM token (positional placeholders
        are numbered in source order)."""
        if tok.value:
            return Parameter(name=tok.value)
        param = Parameter(index=self._positional_params)
        self._positional_params += 1
        return param

    def expect_eof(self) -> None:
        self._accept_op(";")
        tok = self._peek()
        if tok.kind != "EOF":
            raise SQLSyntaxError(f"unexpected trailing input {tok.value!r} at {tok.pos}")

    # -- statements -----------------------------------------------------------
    def parse_query(self) -> Query:
        ctes: list[WithQuery] = []
        if self._accept_keyword("WITH"):
            while True:
                ctes.append(self._parse_cte())
                if not self._accept_op(","):
                    break
        body = self._parse_select()
        return Query(ctes=ctes, body=body)

    def _parse_cte(self) -> WithQuery:
        name = self._expect_ident()
        column_names = None
        if self._accept_op("("):
            column_names = [self._expect_ident()]
            while self._accept_op(","):
                column_names.append(self._expect_ident())
            self._expect_op(")")
        self._expect_keyword("AS")
        # The paper's examples use { ... }; standard SQL uses ( ... ).
        open_brace = self._peek().kind == "OP" and self._peek().value == "{"
        if open_brace:
            self._advance()
        else:
            self._expect_op("(")
        if self._peek().is_keyword("VALUES"):
            inner: Select | ValuesClause = self._parse_values()
        else:
            inner = self._parse_select()
        if open_brace:
            self._expect_op("}")
        else:
            self._expect_op(")")
        return WithQuery(name=name, column_names=column_names, query=inner)

    def _parse_values(self) -> ValuesClause:
        self._expect_keyword("VALUES")
        rows: list[list[Expr]] = []
        while True:
            self._expect_op("(")
            row = [self.parse_expr()]
            while self._accept_op(","):
                row.append(self.parse_expr())
            self._expect_op(")")
            rows.append(row)
            if not self._accept_op(","):
                break
        return ValuesClause(rows=rows)

    def _parse_select(self):
        """A query body: one or more SELECT cores chained by set operators,
        with a trailing ORDER BY/LIMIT that attaches to the whole compound.

        Precedence follows the standard: ``INTERSECT`` binds tighter than
        ``UNION``/``EXCEPT``, and operators of equal precedence associate
        left.  Returns a :class:`Select` or a :class:`CompoundSelect`.
        """
        body = self._parse_set_op_chain()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            tok = self._advance()
            if tok.kind != "NUMBER":
                raise SQLSyntaxError(f"LIMIT expects a number, found {tok.value!r}")
            limit = int(tok.value)
        body.order_by = order_by
        body.limit = limit
        return body

    def _parse_set_op_chain(self):
        left = self._parse_intersect_chain()
        while True:
            tok = self._peek()
            if tok.kind == "KEYWORD" and tok.value in ("UNION", "EXCEPT"):
                self._advance()
                all_ = self._accept_keyword("ALL")
                right = self._parse_intersect_chain()
                left = CompoundSelect(op=tok.value.lower(), all=all_,
                                      left=left, right=right)
            else:
                return left

    def _parse_intersect_chain(self):
        left = self._parse_select_core()
        while self._accept_keyword("INTERSECT"):
            all_ = self._accept_keyword("ALL")
            right = self._parse_select_core()
            left = CompoundSelect(op="intersect", all=all_, left=left,
                                  right=right)
        return left

    def _parse_select_core(self) -> Select:
        """One ``SELECT`` without trailing ORDER BY/LIMIT (those belong to
        the enclosing compound; see :meth:`_parse_select`)."""
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if not distinct:
            self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        relations: list = []
        joins: list[JoinClause] = []
        if self._accept_keyword("FROM"):
            relations.append(self._parse_relation())
            while True:
                if self._accept_op(","):
                    relations.append(self._parse_relation())
                    continue
                join_kind = self._maybe_join_kind()
                if join_kind is None:
                    break
                relation = self._parse_relation()
                condition = None
                if self._accept_keyword("ON"):
                    condition = self.parse_expr()
                elif join_kind != "CROSS":
                    raise SQLSyntaxError(f"{join_kind} JOIN requires ON")
                joins.append(JoinClause(kind=join_kind, relation=relation, condition=condition))

        where = self.parse_expr() if self._accept_keyword("WHERE") else None

        group_by: list[Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self._accept_op(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self._accept_keyword("HAVING") else None

        return Select(
            items=items, relations=relations, joins=joins, where=where,
            group_by=group_by, having=having, order_by=[],
            limit=None, distinct=distinct,
        )

    def _maybe_join_kind(self) -> str | None:
        tok = self._peek()
        if tok.kind != "KEYWORD":
            return None
        if tok.value == "JOIN":
            self._advance()
            return "INNER"
        if tok.value == "INNER":
            self._advance()
            self._expect_keyword("JOIN")
            return "INNER"
        if tok.value in ("LEFT", "RIGHT", "FULL"):
            kind = tok.value
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return kind
        if tok.value == "CROSS":
            self._advance()
            self._expect_keyword("JOIN")
            return "CROSS"
        return None

    def _parse_relation(self):
        if self._accept_op("("):
            if self._peek().is_keyword("VALUES"):
                inner: Select | ValuesClause = self._parse_values()
            else:
                inner = self._parse_select()
            self._expect_op(")")
            self._accept_keyword("AS")
            alias = self._expect_ident()
            column_names = None
            if self._accept_op("("):
                column_names = [self._expect_ident()]
                while self._accept_op(","):
                    column_names.append(self._expect_ident())
                self._expect_op(")")
            return SubqueryRef(query=inner, alias=alias, column_names=column_names)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.kind == "OP" and tok.value == "*":
            self._advance()
            return SelectItem(expr=Star(), alias=None)
        if (
            tok.kind == "IDENT"
            and self._peek(1).kind == "OP" and self._peek(1).value == "."
            and self._peek(2).kind == "OP" and self._peek(2).value == "*"
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(expr=Star(table=table), alias=None)
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # -- expressions -------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
                self._advance()
                op = "<>" if tok.value == "!=" else tok.value
                left = BinaryOp(op, left, self._parse_additive())
                continue
            if tok.kind == "KEYWORD" and tok.value in ("LIKE", "IN", "BETWEEN", "IS", "NOT"):
                negated = False
                if tok.value == "NOT":
                    nxt = self._peek(1)
                    if nxt.kind == "KEYWORD" and nxt.value in ("LIKE", "IN", "BETWEEN"):
                        self._advance()
                        negated = True
                        tok = self._peek()
                    else:
                        break
                if tok.value == "LIKE":
                    self._advance()
                    pattern_tok = self._advance()
                    pattern: str | Parameter | None
                    if pattern_tok.is_keyword("NULL"):
                        pattern = None  # x LIKE NULL is NULL -> matches no row
                    elif pattern_tok.kind == "STRING":
                        pattern = pattern_tok.value
                    elif pattern_tok.kind == "PARAM":
                        pattern = self._make_param(pattern_tok)
                    else:
                        raise SQLSyntaxError(
                            "LIKE expects a string literal, a bind parameter, "
                            "or NULL as its pattern"
                        )
                    escape = None
                    if self._accept_keyword("ESCAPE"):
                        esc_tok = self._advance()
                        if esc_tok.kind != "STRING" or len(esc_tok.value) != 1:
                            raise SQLSyntaxError(
                                "ESCAPE expects a single-character string literal"
                            )
                        escape = esc_tok.value
                    left = LikeExpr(operand=left, pattern=pattern,
                                    negated=negated, escape=escape)
                    continue
                if tok.value == "IN":
                    self._advance()
                    self._expect_op("(")
                    if self._peek().is_keyword("SELECT") or self._peek().is_keyword("WITH"):
                        sub = self._parse_select()
                        self._expect_op(")")
                        left = InSubquery(operand=left, query=sub, negated=negated)
                    else:
                        items = [self.parse_expr()]
                        while self._accept_op(","):
                            items.append(self.parse_expr())
                        self._expect_op(")")
                        left = InList(operand=left, items=items, negated=negated)
                    continue
                if tok.value == "BETWEEN":
                    self._advance()
                    low = self._parse_additive()
                    self._expect_keyword("AND")
                    high = self._parse_additive()
                    left = BetweenExpr(operand=left, low=low, high=high, negated=negated)
                    continue
                if tok.value == "IS":
                    self._advance()
                    neg = self._accept_keyword("NOT")
                    self._expect_keyword("NULL")
                    left = IsNull(operand=left, negated=neg)
                    continue
            break
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("+", "-", "||"):
                self._advance()
                left = BinaryOp(tok.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(tok.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept_op("-"):
            return UnaryOp("-", self._parse_unary())
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._advance()
            text = tok.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind == "STRING":
            self._advance()
            return Literal(tok.value)
        if tok.kind == "PARAM":
            self._advance()
            return self._make_param(tok)
        if tok.kind == "KEYWORD":
            return self._parse_keyword_primary(tok)
        if tok.kind == "OP" and tok.value == "(":
            self._advance()
            if self._peek().is_keyword("SELECT"):
                sub = self._parse_select()
                self._expect_op(")")
                return ScalarSubquery(query=sub)
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if tok.kind == "IDENT":
            return self._parse_identifier_primary()
        raise SQLSyntaxError(f"unexpected token {tok.value!r} at {tok.pos}")

    def _parse_keyword_primary(self, tok: Token) -> Expr:
        if tok.value == "NULL":
            self._advance()
            return Literal(None)
        if tok.value in ("TRUE", "FALSE"):
            self._advance()
            return Literal(tok.value == "TRUE")
        if tok.value == "DATE":
            self._advance()
            lit = self._advance()
            if lit.kind != "STRING":
                raise SQLSyntaxError("DATE expects a string literal")
            import numpy as np

            return Literal(np.datetime64(lit.value, "D"))
        if tok.value == "INTERVAL":
            self._advance()
            amount = self._advance()
            if amount.kind not in ("STRING", "NUMBER"):
                raise SQLSyntaxError("INTERVAL expects a quantity")
            unit = self._expect_ident().upper()
            return FuncCall("INTERVAL", [Literal(int(str(amount.value))), Literal(unit)])
        if tok.value == "CASE":
            self._advance()
            branches: list[tuple[Expr, Expr]] = []
            while self._accept_keyword("WHEN"):
                cond = self.parse_expr()
                self._expect_keyword("THEN")
                value = self.parse_expr()
                branches.append((cond, value))
            default = self.parse_expr() if self._accept_keyword("ELSE") else None
            self._expect_keyword("END")
            return CaseExpr(branches=branches, default=default)
        if tok.value == "CAST":
            self._advance()
            self._expect_op("(")
            operand = self.parse_expr()
            self._expect_keyword("AS")
            type_name = self._expect_ident().upper()
            # Allow parameterized types like DECIMAL(12, 2).
            if self._accept_op("("):
                while not self._accept_op(")"):
                    self._advance()
            self._expect_op(")")
            return CastExpr(operand=operand, type_name=type_name)
        if tok.value == "EXTRACT":
            self._advance()
            self._expect_op("(")
            field = self._expect_ident().upper()
            self._expect_keyword("FROM")
            operand = self.parse_expr()
            self._expect_op(")")
            return FuncCall(f"EXTRACT_{field}", [operand])
        if tok.value == "EXISTS":
            self._advance()
            self._expect_op("(")
            sub = self._parse_select()
            self._expect_op(")")
            return ExistsExpr(query=sub, negated=False)
        if tok.value == "NOT":
            self._advance()
            return UnaryOp("NOT", self._parse_primary())
        raise SQLSyntaxError(f"unexpected keyword {tok.value} at {tok.pos}")

    def _parse_identifier_primary(self) -> Expr:
        name = self._advance().value
        # Function call?
        if self._peek().kind == "OP" and self._peek().value == "(":
            self._advance()
            upper = name.upper()
            distinct = False
            args: list[Expr] = []
            star = False
            if self._peek().kind == "OP" and self._peek().value == "*":
                self._advance()
                star = True
            elif not (self._peek().kind == "OP" and self._peek().value == ")"):
                distinct = self._accept_keyword("DISTINCT")
                args.append(self.parse_expr())
                while self._accept_op(","):
                    args.append(self.parse_expr())
            self._expect_op(")")
            if upper in _WINDOW_FUNCS:
                return self._parse_over(upper, args)
            if upper in _AGG_FUNCS:
                if self._peek().is_keyword("OVER") and upper in _WINDOW_AGGS:
                    if distinct:
                        raise SQLSyntaxError(
                            "DISTINCT is not supported for window functions"
                        )
                    if star and upper != "COUNT":
                        raise SQLSyntaxError(f"{upper}(*) is not valid")
                    # COUNT(*) OVER (...) carries no argument.
                    return self._parse_over(upper, [] if star else args)
                if upper == "COUNT" and star:
                    return AggCall("COUNT", None)
                return AggCall(upper, args[0] if args else None, distinct=distinct)
            return FuncCall(upper, args)
        # Qualified column?
        if self._peek().kind == "OP" and self._peek().value == ".":
            self._advance()
            col = self._expect_ident()
            return ColumnRef(name=col, table=name)
        return ColumnRef(name=name)

    def _parse_over(self, func: str, args: list[Expr]) -> WindowCall:
        self._expect_keyword("OVER")
        self._expect_op("(")
        partition_by: list[Expr] = []
        order_by: list[OrderItem] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self.parse_expr())
            while self._accept_op(","):
                partition_by.append(self.parse_expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        frame = self._parse_frame()
        self._expect_op(")")
        return WindowCall(func=func, partition_by=partition_by,
                          order_by=order_by, args=args, frame=frame)

    def _parse_frame(self) -> WindowFrame | None:
        """Parse ``ROWS|RANGE BETWEEN <bound> AND <bound>`` (or the one-bound
        shorthand ``ROWS <bound>``, whose end defaults to CURRENT ROW)."""
        if self._accept_word("ROWS"):
            unit = "rows"
        elif self._accept_word("RANGE"):
            unit = "range"
        else:
            return None
        if self._accept_keyword("BETWEEN"):
            start_kind, start_off = self._parse_frame_bound()
            self._expect_keyword("AND")
            end_kind, end_off = self._parse_frame_bound()
        else:
            start_kind, start_off = self._parse_frame_bound()
            end_kind, end_off = "current", 0
        return WindowFrame(unit=unit, start_kind=start_kind,
                           start_offset=start_off, end_kind=end_kind,
                           end_offset=end_off)

    def _parse_frame_bound(self) -> tuple[str, int]:
        if self._accept_word("UNBOUNDED"):
            if self._accept_word("PRECEDING"):
                return "unbounded_preceding", 0
            self._expect_word("FOLLOWING")
            return "unbounded_following", 0
        if self._accept_word("CURRENT"):
            self._expect_word("ROW")
            return "current", 0
        tok = self._advance()
        if tok.kind != "NUMBER":
            raise SQLSyntaxError(
                f"expected a frame bound but found {tok.value!r} at {tok.pos}"
            )
        offset = int(tok.value)
        if self._accept_word("PRECEDING"):
            return "preceding", offset
        self._expect_word("FOLLOWING")
        return "following", offset
