"""The query executor: logical planning + physical evaluation of a Query.

Two execution modes distinguish the simulated backends (cf. DESIGN.md):

* ``vectorized`` (DuckDBSim) — filters/projections are evaluated morsel at a
  time (batch interpreter overhead per morsel);
* ``compiled`` (HyperSim, LingoDBSim) — whole-column fused evaluation, plus
  join re-ordering by estimated cardinality (a "more advanced planner",
  which is how the paper explains Hyper's edge over DuckDB).

Both modes parallelize filter/projection work across a thread pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import SQLBindError, SQLExecutionError, UnsupportedFeatureError
from .catalog import Catalog
from .expressions import Evaluator, Scope, contains_aggregate, expr_columns, expr_key
from .grouping import factorize_many
from .joins import combine_chunks, join_positions, semi_join_mask
from .parallel import parallel_arrays, parallel_masks
from .sqlast import (
    AggCall, BinaryOp, ColumnRef, ExistsExpr, Expr, InSubquery, OrderItem,
    Query, ScalarSubquery, Select, SelectItem, Star, SubqueryRef, TableRef,
    ValuesClause, WindowCall,
)
from .table import Chunk
from .window import row_number, rank, sort_positions

__all__ = ["EngineConfig", "Executor"]


@dataclass(frozen=True)
class EngineConfig:
    """Static behaviour knobs for a simulated backend."""

    name: str = "engine"
    mode: str = "compiled"  # "compiled" | "vectorized"
    threads: int = 1
    join_reorder: bool = True
    supports_window: bool = True
    morsel_size: int = 2048
    rejected_join_patterns: frozenset = frozenset()


@dataclass
class _Source:
    binding: str
    chunk: Chunk


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _has_subquery(expr: Expr) -> bool:
    if isinstance(expr, (InSubquery, ExistsExpr, ScalarSubquery)):
        return True
    for attr in ("left", "right", "operand", "low", "high"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _has_subquery(child):
            return True
    for attr in ("args", "items"):
        children = getattr(expr, attr, None)
        if children:
            if any(isinstance(c, Expr) and _has_subquery(c) for c in children):
                return True
    branches = getattr(expr, "branches", None)
    if branches:
        for cond, value in branches:
            if _has_subquery(cond) or _has_subquery(value):
                return True
        default = getattr(expr, "default", None)
        if default is not None and _has_subquery(default):
            return True
    return False


def _subqueries_of(expr: Expr):
    """Yield Select bodies nested in an expression."""
    if isinstance(expr, (InSubquery, ExistsExpr)):
        yield expr.query
    if isinstance(expr, ScalarSubquery):
        yield expr.query
    for attr in ("left", "right", "operand", "low", "high"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            yield from _subqueries_of(child)
    for attr in ("args", "items"):
        children = getattr(expr, attr, None)
        if children:
            for c in children:
                if isinstance(c, Expr):
                    yield from _subqueries_of(c)
    branches = getattr(expr, "branches", None)
    if branches:
        for cond, value in branches:
            yield from _subqueries_of(cond)
            yield from _subqueries_of(value)
        default = getattr(expr, "default", None)
        if default is not None:
            yield from _subqueries_of(default)


def _has_window(expr: Expr) -> bool:
    if isinstance(expr, WindowCall):
        return True
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _has_window(child):
            return True
    children = getattr(expr, "args", None)
    if children and any(isinstance(c, Expr) and _has_window(c) for c in children):
        return True
    return False


class Executor:
    """Executes parsed queries against a catalog."""

    def __init__(self, catalog: Catalog, config: EngineConfig | None = None,
                 trace: list[str] | None = None):
        self.catalog = catalog
        self.config = config or EngineConfig()
        self.trace = trace

    def _note(self, message: str) -> None:
        if self.trace is not None:
            self.trace.append(message)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> Chunk:
        env: dict[str, Chunk] = {}
        for cte in query.ctes:
            chunk = self._execute_body(cte.query, env)
            if cte.column_names is not None:
                if len(cte.column_names) != chunk.ncols:
                    raise SQLBindError(
                        f"CTE {cte.name!r} declares {len(cte.column_names)} columns "
                        f"but produces {chunk.ncols}"
                    )
                chunk = Chunk(list(cte.column_names), chunk.arrays)
            self._note(f"materialize CTE {cte.name} -> {chunk.nrows} rows x {chunk.ncols} cols")
            env[cte.name] = chunk
        return self._execute_select(query.body, env)

    def _execute_body(self, body, env: dict[str, Chunk]) -> Chunk:
        if isinstance(body, ValuesClause):
            return self._execute_values(body)
        return self._execute_select(body, env)

    def _execute_values(self, values: ValuesClause) -> Chunk:
        dummy = Chunk(["__one"], [np.zeros(1, dtype=np.int64)])
        evaluator = Evaluator(dummy, Scope())
        ncols = len(values.rows[0])
        columns = [f"col{i}" for i in range(ncols)]
        raw_cols: list[list] = [[] for _ in range(ncols)]
        for row in values.rows:
            if len(row) != ncols:
                raise SQLBindError("VALUES rows have inconsistent arity")
            for i, expr in enumerate(row):
                raw_cols[i].append(evaluator.eval(expr))
        from ..dataframe._common import coerce_array

        return Chunk(columns, [coerce_array(np.array(c, dtype=object)) for c in raw_cols])

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _execute_select(self, select: Select, env: dict[str, Chunk], outer: Evaluator | None = None) -> Chunk:
        sources = [self._resolve_relation(rel, env) for rel in select.relations]

        if not sources:
            chunk = Chunk(["__one"], [np.zeros(1, dtype=np.int64)])
            scope = Scope()
            residual = split_conjuncts(select.where)
        else:
            chunk, scope, residual = self._plan_from_where(select, sources, env)

        # Explicit JOIN clauses fold onto the accumulated relation.
        if select.joins:
            refs, star = self._collect_needed_columns(select)
            for jc in select.joins:
                src = self._resolve_relation(jc.relation, env)
                src.chunk = self._prune_source(src, refs, star)
                chunk, scope = self._apply_explicit_join(chunk, scope, jc, src, env)

        def subquery_cb(kind, sub_select, outer_eval, operand=None):
            return self._subquery(kind, sub_select, env, outer_eval, operand)

        evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)

        # Residual WHERE conjuncts (subqueries & anything not pushed down).
        if residual:
            before = chunk.nrows
            mask = np.ones(chunk.nrows, dtype=bool)
            for conj in residual:
                mask &= evaluator.eval_mask(conj)
            chunk = chunk.mask(mask)
            self._note(f"residual filter: {len(residual)} predicate(s), "
                       f"{before} -> {chunk.nrows} rows")
            evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)

        # Window functions.
        window_values = self._eval_windows(select, chunk, scope, subquery_cb)

        has_agg = bool(select.group_by) or any(
            contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None and contains_aggregate(select.having))

        if has_agg:
            out_chunk, order_eval = self._project_grouped(select, chunk, scope, subquery_cb, window_values)
        else:
            out_chunk, order_eval = self._project_plain(select, chunk, scope, subquery_cb, window_values)

        if select.distinct and out_chunk.nrows:
            gids, _, ngroups = factorize_many(out_chunk.arrays)
            # Keep the first occurrence of each distinct row, in input order.
            positions = np.arange(len(gids) - 1, -1, -1, dtype=np.int64)
            first = np.zeros(ngroups, dtype=np.int64)
            first[gids[positions]] = positions
            out_chunk = out_chunk.take(np.sort(first))
            order_eval = None  # ordering must reference output columns now

        if select.order_by:
            out_chunk = self._apply_order(select, out_chunk, order_eval)
            self._note(f"sort: {len(select.order_by)} key(s)")
        if select.limit is not None:
            out_chunk = out_chunk.head(select.limit)
            self._note(f"limit: {select.limit}")
        return out_chunk

    # ------------------------------------------------------------------
    # FROM/WHERE planning
    # ------------------------------------------------------------------
    def _resolve_relation(self, rel, env: dict[str, Chunk]) -> _Source:
        if isinstance(rel, TableRef):
            if rel.name in env:
                chunk = env[rel.name]
                return _Source(rel.binding, Chunk(list(chunk.columns), list(chunk.arrays)))
            table = self.catalog.get(rel.name)
            return _Source(rel.binding, table.chunk())
        if isinstance(rel, SubqueryRef):
            chunk = self._execute_body(rel.query, env)
            if rel.column_names is not None:
                chunk = Chunk(list(rel.column_names), chunk.arrays)
            return _Source(rel.binding, chunk)
        raise SQLBindError(f"unsupported relation {rel!r}")

    def _collect_needed_columns(self, select: Select) -> tuple[set, bool]:
        """All (qualifier, name) column references in the whole statement.

        Returns ``(refs, has_star)``; used for projection pruning of scans.
        Subquery bodies are walked too (their correlated references must
        keep outer columns alive).
        """
        refs: set = set()
        star = False

        def walk_expr(e):
            nonlocal star
            if isinstance(e, Star):
                star = True
                return
            for ref in expr_columns(e):
                refs.add((ref.table, ref.name))
            for sub in _subqueries_of(e):
                walk_select(sub)

        def walk_select(s: Select):
            nonlocal star
            for item in s.items:
                walk_expr(item.expr)
            if s.where is not None:
                walk_expr(s.where)
            for g in s.group_by:
                walk_expr(g)
            if s.having is not None:
                walk_expr(s.having)
            for o in s.order_by:
                walk_expr(o.expr)
            for jc in s.joins:
                if jc.condition is not None:
                    walk_expr(jc.condition)

        walk_select(select)
        return refs, star

    def _prune_source(self, source: _Source, refs: set, star: bool) -> Chunk:
        chunk = source.chunk
        if star:
            return chunk
        wanted = {name for (qual, name) in refs if qual is None or qual == source.binding}
        keep = [i for i, c in enumerate(chunk.columns) if c in wanted]
        if len(keep) == len(chunk.columns):
            return chunk
        if not keep:
            keep = [0]
        return Chunk([chunk.columns[i] for i in keep], [chunk.arrays[i] for i in keep])

    def _plan_from_where(self, select: Select, sources: list[_Source], env) -> tuple[Chunk, Scope, list[Expr]]:
        refs, star = self._collect_needed_columns(select)
        for s in sources:
            s.chunk = self._prune_source(s, refs, star)
        conjuncts = split_conjuncts(select.where)
        pushdown: dict[int, list[Expr]] = {i: [] for i in range(len(sources))}
        edges: list[tuple[int, int, Expr, Expr]] = []
        residual: list[Expr] = []

        col_homes: dict[str, list[int]] = {}
        binding_index = {s.binding: i for i, s in enumerate(sources)}
        for i, s in enumerate(sources):
            for c in s.chunk.columns:
                col_homes.setdefault(c, []).append(i)

        def owner_set(expr: Expr) -> set[int] | None:
            owners: set[int] = set()
            for ref in expr_columns(expr):
                if ref.table is not None:
                    idx = binding_index.get(ref.table)
                    if idx is None:
                        return None  # outer/correlated reference
                    owners.add(idx)
                else:
                    homes = col_homes.get(ref.name)
                    if not homes:
                        return None
                    if len(homes) > 1:
                        raise SQLBindError(f"ambiguous column {ref.name!r}")
                    owners.add(homes[0])
            return owners

        for conj in conjuncts:
            if _has_subquery(conj):
                residual.append(conj)
                continue
            owners = owner_set(conj)
            if owners is None:
                residual.append(conj)
                continue
            if len(owners) == 1:
                pushdown[next(iter(owners))].append(conj)
                continue
            if (
                len(owners) == 2
                and isinstance(conj, BinaryOp)
                and conj.op == "="
            ):
                left_owners = owner_set(conj.left)
                right_owners = owner_set(conj.right)
                if (
                    left_owners is not None and right_owners is not None
                    and len(left_owners) == 1 and len(right_owners) == 1
                    and left_owners != right_owners
                ):
                    i, j = next(iter(left_owners)), next(iter(right_owners))
                    edges.append((i, j, conj.left, conj.right))
                    continue
            residual.append(conj)

        # Filter each source early (pushdown).
        filtered: list[Chunk] = []
        for i, s in enumerate(sources):
            chunk = s.chunk
            if pushdown[i]:
                chunk = self._filter_chunk(chunk, s.binding, pushdown[i])
            filtered.append(chunk)

        chunk, scope = self._join_sources(sources, filtered, edges)
        return chunk, scope, residual

    def _single_scope(self, binding: str, chunk: Chunk) -> Scope:
        scope = Scope()
        for slot, col in enumerate(chunk.columns):
            scope.add(binding, col, slot)
        return scope

    def _filter_chunk(self, chunk: Chunk, binding: str, exprs: list[Expr]) -> Chunk:
        scope = self._single_scope(binding, chunk)
        n = chunk.nrows
        threads = self.config.threads
        morsel = self.config.morsel_size if self.config.mode == "vectorized" else None

        def make_mask(start: int, stop: int) -> np.ndarray:
            if morsel is None:
                sub = chunk.slice(start, stop)
                ev = Evaluator(sub, scope)
                mask = np.ones(stop - start, dtype=bool)
                for e in exprs:
                    mask &= ev.eval_mask(e)
                return mask
            parts = [np.zeros(0, dtype=bool)]
            pos = start
            while pos < stop:
                end = min(pos + morsel, stop)
                sub = chunk.slice(pos, end)
                ev = Evaluator(sub, scope)
                mask = np.ones(end - pos, dtype=bool)
                for e in exprs:
                    mask &= ev.eval_mask(e)
                parts.append(mask)
                pos = end
            return np.concatenate(parts) if len(parts) > 2 else parts[-1]

        mask = parallel_masks(n, threads, make_mask)
        out = chunk.mask(mask)
        self._note(
            f"scan+filter {binding}: {len(exprs)} predicate(s) pushed down, "
            f"{n} -> {out.nrows} rows"
        )
        return out

    def _join_sources(self, sources: list[_Source], chunks: list[Chunk], edges) -> tuple[Chunk, Scope]:
        n = len(sources)
        if n == 1:
            return chunks[0], self._single_scope(sources[0].binding, chunks[0])

        remaining = set(range(n))
        if self.config.join_reorder:
            start = min(remaining, key=lambda i: chunks[i].nrows)
        else:
            start = 0
        acc_bindings = [sources[start].binding]
        acc_chunk = chunks[start]
        acc_offsets = {sources[start].binding: 0}
        remaining.discard(start)

        def build_scope() -> Scope:
            scope = Scope()
            for b, off in acc_offsets.items():
                idx = next(i for i, s in enumerate(sources) if s.binding == b)
                for k, col in enumerate(chunks[idx].columns):
                    scope.add(b, col, off + k)
            return scope

        while remaining:
            # Edges connecting acc to a remaining source.
            candidates: dict[int, list[tuple[Expr, Expr]]] = {}
            acc_set = {next(i for i, s in enumerate(sources) if s.binding == b) for b in acc_bindings}
            for (i, j, le, re_) in edges:
                if i in acc_set and j in remaining:
                    candidates.setdefault(j, []).append((le, re_))
                elif j in acc_set and i in remaining:
                    candidates.setdefault(i, []).append((re_, le))
            if candidates:
                if self.config.join_reorder:
                    nxt = min(candidates, key=lambda j: chunks[j].nrows)
                else:
                    nxt = min(candidates)  # syntactic order
                pairs = candidates[nxt]
            else:
                nxt = min(remaining)
                pairs = []

            right_chunk = chunks[nxt]
            right_binding = sources[nxt].binding
            if pairs:
                acc_scope = build_scope()
                left_eval = Evaluator(acc_chunk, acc_scope)
                right_eval = Evaluator(right_chunk, self._single_scope(right_binding, right_chunk))
                lkeys = [left_eval.eval_array(le) for le, _ in pairs]
                rkeys = [right_eval.eval_array(re_) for _, re_ in pairs]
                lp, rp, lmiss, rmiss = join_positions(lkeys, rkeys, "inner")
                new_chunk = combine_chunks(acc_chunk, right_chunk, lp, rp, lmiss, rmiss)
                self._note(
                    f"hash join + {right_binding} on {len(pairs)} key(s): "
                    f"{acc_chunk.nrows} x {right_chunk.nrows} -> {new_chunk.nrows} rows"
                )
            else:
                nl, nr = acc_chunk.nrows, right_chunk.nrows
                if nl * nr > 50_000_000:
                    raise SQLExecutionError(
                        f"refusing cartesian product of {nl} x {nr} rows"
                    )
                lp = np.repeat(np.arange(nl, dtype=np.int64), nr)
                rp = np.tile(np.arange(nr, dtype=np.int64), nl)
                zeros = np.zeros(len(lp), dtype=bool)
                new_chunk = combine_chunks(acc_chunk, right_chunk, lp, rp, zeros, zeros)
                self._note(
                    f"cartesian product + {right_binding}: {nl} x {nr} -> {len(lp)} rows"
                )

            acc_offsets[right_binding] = acc_chunk.ncols
            acc_chunk = new_chunk
            acc_bindings.append(right_binding)
            remaining.discard(nxt)

        return acc_chunk, build_scope()

    def _apply_explicit_join(self, chunk: Chunk, scope: Scope, jc, src: _Source, env) -> tuple[Chunk, Scope]:
        kind = jc.kind.lower()
        right_chunk = src.chunk
        right_scope = self._single_scope(src.binding, right_chunk)
        conjuncts = split_conjuncts(jc.condition)
        pairs: list[tuple[Expr, Expr]] = []
        residual: list[Expr] = []
        right_cols = set(right_chunk.columns)

        def side_of(e: Expr) -> str | None:
            refs = expr_columns(e)
            if not refs:
                return None
            sides = set()
            for r in refs:
                if r.table == src.binding or (r.table is None and r.name in right_cols and scope.resolve(ColumnRef(r.name)) is None):
                    sides.add("right")
                else:
                    sides.add("left")
            return sides.pop() if len(sides) == 1 else None

        for conj in conjuncts:
            if isinstance(conj, BinaryOp) and conj.op == "=":
                ls, rs = side_of(conj.left), side_of(conj.right)
                if ls == "left" and rs == "right":
                    pairs.append((conj.left, conj.right))
                    continue
                if ls == "right" and rs == "left":
                    pairs.append((conj.right, conj.left))
                    continue
            residual.append(conj)

        if residual and kind in ("left", "right", "full"):
            raise UnsupportedFeatureError(
                f"{self.config.name}: non-equi conditions on outer joins are not supported"
            )
        if not pairs and kind != "cross":
            raise UnsupportedFeatureError("explicit join requires at least one equi condition")

        how = {"inner": "inner", "left": "left", "right": "right", "full": "full", "cross": "inner"}[kind]
        if kind == "cross":
            nl, nr = chunk.nrows, right_chunk.nrows
            lp = np.repeat(np.arange(nl, dtype=np.int64), nr)
            rp = np.tile(np.arange(nr, dtype=np.int64), nl)
            lmiss = np.zeros(len(lp), dtype=bool)
            rmiss = lmiss
        else:
            left_eval = Evaluator(chunk, scope)
            right_eval = Evaluator(right_chunk, right_scope)
            lkeys = [left_eval.eval_array(le) for le, _ in pairs]
            rkeys = [right_eval.eval_array(re_) for _, re_ in pairs]
            lp, rp, lmiss, rmiss = join_positions(lkeys, rkeys, how)

        new_chunk = combine_chunks(chunk, right_chunk, lp, rp, lmiss, rmiss)
        new_scope = Scope()
        new_scope.qualified = dict(scope.qualified)
        new_scope.unqualified = dict(scope.unqualified)
        new_scope.ambiguous = set(scope.ambiguous)
        offset = chunk.ncols
        for k, col in enumerate(right_chunk.columns):
            new_scope.add(src.binding, col, offset + k)

        if residual:
            ev = Evaluator(new_chunk, new_scope)
            mask = np.ones(new_chunk.nrows, dtype=bool)
            for conj in residual:
                mask &= ev.eval_mask(conj)
            new_chunk = new_chunk.mask(mask)
        return new_chunk, new_scope

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _eval_windows(self, select: Select, chunk: Chunk, scope: Scope, subquery_cb) -> dict[int, np.ndarray]:
        calls: list[WindowCall] = []

        def collect(e: Expr) -> None:
            if isinstance(e, WindowCall):
                calls.append(e)
                return
            for attr in ("left", "right", "operand"):
                child = getattr(e, attr, None)
                if isinstance(child, Expr):
                    collect(child)
            children = getattr(e, "args", None)
            if children:
                for c in children:
                    if isinstance(c, Expr):
                        collect(c)

        for item in select.items:
            if not isinstance(item.expr, Star):
                collect(item.expr)
        if not calls:
            return {}
        if not self.config.supports_window:
            raise UnsupportedFeatureError(
                f"{self.config.name}: window functions are not supported by this backend"
            )
        evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)
        out: dict[int, np.ndarray] = {}
        for call in calls:
            parts = [evaluator.eval_array(p) for p in call.partition_by]
            orders = [evaluator.eval_array(o.expr) for o in call.order_by]
            ascendings = [o.ascending for o in call.order_by]
            func = row_number if call.func == "ROW_NUMBER" else rank
            out[id(call)] = func(chunk.nrows, parts, orders, ascendings)
        return out

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"col{position}"

    def _expand_items(self, select: Select, chunk: Chunk, scope: Scope) -> list[SelectItem]:
        items: list[SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                for col in chunk.columns:
                    if item.expr.table is not None:
                        slot = scope.qualified.get((item.expr.table, col))
                        if slot is None:
                            continue
                    items.append(SelectItem(expr=ColumnRef(name=col, table=item.expr.table), alias=col))
            else:
                items.append(item)
        return items

    def _project_plain(self, select: Select, chunk: Chunk, scope: Scope, subquery_cb, window_values):
        items = self._expand_items(select, chunk, scope)
        names = [self._output_name(it, i) for i, it in enumerate(items)]
        n = chunk.nrows
        threads = self.config.threads
        morsel = self.config.morsel_size if self.config.mode == "vectorized" else None
        simple = not window_values and not any(_has_subquery(it.expr) for it in items)

        if simple and n > 1:
            def make_arrays(start: int, stop: int) -> list[np.ndarray]:
                if morsel is None:
                    sub = chunk.slice(start, stop)
                    ev = Evaluator(sub, scope, subquery_executor=subquery_cb)
                    return [ev.eval_array(it.expr) for it in items]
                parts: list[list[np.ndarray]] = []
                pos = start
                while pos < stop:
                    end = min(pos + morsel, stop)
                    sub = chunk.slice(pos, end)
                    ev = Evaluator(sub, scope, subquery_executor=subquery_cb)
                    parts.append([ev.eval_array(it.expr) for it in items])
                    pos = end
                if not parts:
                    ev = Evaluator(chunk.slice(0, 0), scope, subquery_executor=subquery_cb)
                    return [ev.eval_array(it.expr) for it in items]
                if len(parts) == 1:
                    return parts[0]
                return [np.concatenate([p[i] for p in parts]) for i in range(len(items))]

            arrays = parallel_arrays(n, threads, make_arrays)
            evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)
        else:
            evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)
            evaluator.precomputed = window_values  # type: ignore[attr-defined]
            arrays = [self._eval_with_windows(evaluator, it.expr, window_values) for it in items]
        return Chunk(names, arrays), evaluator

    def _eval_with_windows(self, evaluator: Evaluator, expr: Expr, window_values) -> np.ndarray:
        if isinstance(expr, WindowCall):
            return window_values[id(expr)]
        if window_values and _has_window(expr):
            # Rebuild expression bottom-up substituting window arrays.
            import copy

            from .sqlast import Literal

            def substitute(e):
                if isinstance(e, WindowCall):
                    marker = ColumnRef(name=f"__win_{id(e)}")
                    return marker
                e2 = copy.copy(e)
                for attr in ("left", "right", "operand"):
                    child = getattr(e2, attr, None)
                    if isinstance(child, Expr):
                        setattr(e2, attr, substitute(child))
                if getattr(e2, "args", None):
                    e2.args = [substitute(a) if isinstance(a, Expr) else a for a in e2.args]
                return e2

            new_expr = substitute(expr)
            chunk2 = Chunk(
                list(evaluator.chunk.columns) + [f"__win_{k}" for k in window_values],
                list(evaluator.chunk.arrays) + list(window_values.values()),
            )
            scope2 = Scope()
            scope2.qualified = dict(evaluator.scope.qualified)
            scope2.unqualified = dict(evaluator.scope.unqualified)
            scope2.ambiguous = set(evaluator.scope.ambiguous)
            base = evaluator.chunk.ncols
            for i, k in enumerate(window_values):
                scope2.add(None, f"__win_{k}", base + i)
            ev2 = Evaluator(chunk2, scope2, subquery_executor=evaluator.subquery_executor)
            return ev2.eval_array(new_expr)
        return evaluator.eval_array(expr)

    def _project_grouped(self, select: Select, chunk: Chunk, scope: Scope, subquery_cb, window_values):
        if window_values:
            raise UnsupportedFeatureError("window functions cannot be combined with aggregation")
        items = self._expand_items(select, chunk, scope)
        names = [self._output_name(it, i) for i, it in enumerate(items)]

        evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb)
        if select.group_by:
            key_arrays = [evaluator.eval_array(g) for g in select.group_by]
            gids, key_uniques, ngroups = factorize_many(key_arrays)
        else:
            # A global aggregate always yields exactly one row (NULL/0 on
            # empty input), matching SQL semantics.
            gids = np.zeros(chunk.nrows, dtype=np.int64)
            ngroups = 1
            key_uniques = []
        group_first = np.zeros(ngroups, dtype=np.int64)
        if chunk.nrows:
            # First occurrence of each group id: assign positions in reverse
            # order so the smallest position is written last and wins.
            positions = np.arange(chunk.nrows - 1, -1, -1, dtype=np.int64)
            group_first = np.zeros(ngroups, dtype=np.int64)
            group_first[gids[positions]] = positions
        self._note(f"hash aggregate: {len(select.group_by)} key(s), "
                   f"{chunk.nrows} rows -> {ngroups} groups")
        evaluator.gids = gids
        evaluator.ngroups = ngroups
        evaluator.group_first = group_first
        for gexpr, uniq in zip(select.group_by, key_uniques):
            evaluator.group_key_values[expr_key(gexpr)] = uniq

        if self.config.threads > 1 and chunk.nrows >= 4096 and len(items) > 1:
            # Aggregate expressions are independent: evaluate them across
            # the worker pool (NumPy reductions release the GIL).
            from .parallel import _pool

            def eval_item(it):
                ev = Evaluator(chunk, scope, subquery_executor=subquery_cb)
                ev.gids = gids
                ev.ngroups = ngroups
                ev.group_first = group_first
                ev.group_key_values = evaluator.group_key_values
                return ev.eval_array(it.expr)

            pool = _pool(self.config.threads)
            arrays = list(pool.map(eval_item, items))
        else:
            arrays = [evaluator.eval_array(it.expr) for it in items]
        out = Chunk(names, arrays)

        if select.having is not None:
            mask = evaluator.eval_mask(select.having)
            out = out.mask(mask)
            evaluator._having_mask = mask  # type: ignore[attr-defined]
        return out, evaluator

    # ------------------------------------------------------------------
    # ORDER BY / LIMIT
    # ------------------------------------------------------------------
    def _apply_order(self, select: Select, out_chunk: Chunk, order_eval: Evaluator | None) -> Chunk:
        arrays: list[np.ndarray] = []
        ascendings: list[bool] = []
        out_names = {c: i for i, c in enumerate(out_chunk.columns)}
        for item in select.order_by:
            expr = item.expr
            arr = None
            if isinstance(expr, ColumnRef) and expr.table is None and expr.name in out_names:
                arr = out_chunk.arrays[out_names[expr.name]]
            elif order_eval is not None:
                try:
                    arr = order_eval.eval_array(expr)
                    having_mask = getattr(order_eval, "_having_mask", None)
                    if having_mask is not None and len(arr) == len(having_mask):
                        arr = arr[having_mask]
                except SQLBindError:
                    arr = None
            if arr is None or len(arr) != out_chunk.nrows:
                raise SQLBindError(f"cannot evaluate ORDER BY expression {expr!r}")
            arrays.append(arr)
            ascendings.append(item.ascending)
        positions = sort_positions(arrays, ascendings)
        return out_chunk.take(positions)

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------
    def _subquery(self, kind: str, select: Select, env, outer_eval: Evaluator, operand):
        if kind == "scalar":
            chunk = self._execute_select(select, env)
            if chunk.nrows == 0:
                return None
            return chunk.arrays[0][0]
        if kind == "in":
            chunk = self._execute_select(select, env)
            return semi_join_mask([operand], [chunk.arrays[0]])
        if kind == "exists":
            return self._execute_exists(select, env, outer_eval)
        raise SQLBindError(f"unknown subquery kind {kind!r}")

    def _execute_exists(self, select: Select, env, outer_eval: Evaluator) -> np.ndarray:
        inner_cols: set[str] = set()
        inner_bindings: set[str] = set()
        for rel in select.relations:
            if isinstance(rel, TableRef):
                inner_bindings.add(rel.binding)
                if rel.name in env:
                    inner_cols.update(env[rel.name].columns)
                else:
                    inner_cols.update(self.catalog.schema(rel.name).columns)
            else:
                raise UnsupportedFeatureError("EXISTS over subquery relations is not supported")

        def is_inner(ref: ColumnRef) -> bool:
            if ref.table is not None:
                return ref.table in inner_bindings
            return ref.name in inner_cols

        correlated: list[tuple[Expr, Expr]] = []
        remaining: list[Expr] = []
        for conj in split_conjuncts(select.where):
            if isinstance(conj, BinaryOp) and conj.op == "=":
                l_refs = expr_columns(conj.left)
                r_refs = expr_columns(conj.right)
                l_inner = all(is_inner(r) for r in l_refs) and bool(l_refs)
                r_inner = all(is_inner(r) for r in r_refs) and bool(r_refs)
                l_outer = bool(l_refs) and all(not is_inner(r) for r in l_refs)
                r_outer = bool(r_refs) and all(not is_inner(r) for r in r_refs)
                if l_inner and r_outer:
                    correlated.append((conj.left, conj.right))
                    continue
                if r_inner and l_outer:
                    correlated.append((conj.right, conj.left))
                    continue
            remaining.append(conj)

        if not correlated:
            chunk = self._execute_select(select, env)
            return np.full(outer_eval.nrows, chunk.nrows > 0)

        inner_select = replace(
            select,
            items=[SelectItem(expr=e, alias=f"k{i}") for i, (e, _) in enumerate(correlated)],
            where=_conjoin(remaining),
            order_by=[],
            limit=None,
            distinct=False,
        )
        inner_chunk = self._execute_select(inner_select, env)
        outer_keys = [outer_eval.eval_array(ref) for _, ref in correlated]
        return semi_join_mask(outer_keys, list(inner_chunk.arrays))


def _conjoin(exprs: list[Expr]) -> Expr | None:
    if not exprs:
        return None
    out = exprs[0]
    for e in exprs[1:]:
        out = BinaryOp("AND", out, e)
    return out
