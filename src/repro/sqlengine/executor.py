"""The query executor: drives physical plans produced by the planner.

Layering (see ``docs/ARCHITECTURE.md``): the :mod:`.planner` compiles each
``SELECT`` body into a :class:`~.plan.PhysicalPlan` (pushdown, projection
pruning, cardinality-estimated join ordering); this module executes those
plans and owns the pieces that need run-time data — subquery evaluation and
projection/aggregation expression evaluation.  Window functions are handled
by the dedicated :class:`~.plan.Window` operator (kernels in
:mod:`.window`), not here.

Two execution modes distinguish the simulated backends (cf. DESIGN.md):

* ``vectorized`` (DuckDBSim) — filters/projections are evaluated morsel at a
  time (batch interpreter overhead per morsel);
* ``compiled`` (HyperSim, LingoDBSim) — whole-column fused evaluation, plus
  join re-ordering by estimated cardinality (a "more advanced planner",
  which is how the paper explains Hyper's edge over DuckDB).

Both modes parallelize filters, projections, hash-join probes, and
hash-aggregate reductions across a shared thread pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..errors import (
    QueryCancelledError, QueryTimeoutError, SQLBindError, SQLExecutionError,
    UnsupportedFeatureError,
)
from .catalog import Catalog
from .expressions import Evaluator, Scope, expr_columns, expr_key
from .grouping import factorize_many, parallel_group_reduce
from .joins import semi_join_mask
from .parallel import parallel_arrays, parallel_map
from .plan import ExecContext, PhysicalPlan
from .planner import (
    Planner, RelSchema, _conjoin, has_subquery, has_window, split_conjuncts,
)
from .sqlast import (
    AggCall, BinaryOp, ColumnRef, CompoundSelect, Expr, Query, Select,
    SelectItem, Star, TableRef, ValuesClause, WindowCall,
)
from .table import Chunk

__all__ = ["EngineConfig", "Executor"]


@dataclass(frozen=True)
class EngineConfig:
    """Static behaviour knobs for a simulated backend."""

    name: str = "engine"
    mode: str = "compiled"  # "compiled" | "vectorized"
    threads: int = 1
    join_reorder: bool = True
    supports_window: bool = True
    morsel_size: int = 2048
    rejected_join_patterns: frozenset = frozenset()
    # Physical-plan knobs: morsel-parallel join probe / aggregate reduction,
    # whether Database may reuse compiled plans across executions, and
    # whether ORDER BY + LIMIT fuses into the parallel TopK operator.
    parallel_join: bool = True
    parallel_agg: bool = True
    plan_cache: bool = True
    # Maximum number of (sql, config) entries the Database-level plan cache
    # retains; least-recently-used entries are evicted beyond this bound
    # (a long-lived server must not let the cache grow with the query log).
    plan_cache_size: int = 256
    topk_rewrite: bool = True
    # Whether the planner rewrites IN/NOT IN/EXISTS/NOT EXISTS and scalar
    # subqueries into SemiJoin/AntiJoin/MarkJoin/ScalarSubqueryScan plan
    # nodes; off, every subquery runs through the residual interpreter path.
    subquery_decorrelate: bool = True
    # Out-of-core execution (see repro.storage): when set, a HashJoin whose
    # smaller input or a HashAggregate whose input exceeds this many bytes
    # runs the grace-partition spill-to-disk path instead of building its
    # hash state over the whole relation at once.  None = RAM-unbounded.
    memory_budget: int | None = None
    # Grace-partition fan-out for spilled joins/aggregates (>= 2).
    spill_partitions: int = 8
    # Whether the planner drops stored-table chunks whose zone maps
    # (per-chunk min/max stats) cannot satisfy the pushed-down predicates.
    zone_map_pruning: bool = True
    # Whether every freshly compiled plan is checked by the static plan
    # verifier (repro.analysis.plan_verifier) before it is cached or
    # executed.  A violation raises PlanInvariantError — always a planner
    # bug, never a user error.  Cheap (pure tree walk, no execution), so
    # it stays on by default in tests, fuzzing, and EXPLAIN.
    verify_plans: bool = True
    # Adaptive runtime re-optimization (docs/ARCHITECTURE.md "Adaptive
    # execution"): comma-join trees compile to an AdaptiveJoin operator
    # that observes each source's *actual* post-filter cardinality and,
    # when an observation diverges from the static estimate beyond
    # adaptive_ratio, re-runs the greedy join ordering over the remaining
    # joins mid-query (the rebuilt subtree is re-verified before it
    # executes).  Also enables build-side-swap reporting, empty-outer
    # semi-join short-circuits, and morsel-size auto-tuning.  Results are
    # identical to static execution up to row order.
    adaptive_execution: bool = False
    # Divergence threshold for re-planning: the larger of actual/est and
    # est/actual must exceed this ratio before a re-plan fires.
    adaptive_ratio: float = 8.0
    # Multi-process sharded execution (repro.server.shard): when > 0, a
    # ShardedDatabase scatters shardable aggregate/Top-K queries over this
    # many engine worker processes (stored-table chunks range-partitioned,
    # partials gathered with the partial-merge kernels) and falls back to
    # serial in-process execution for every other shape.  0 = serial.
    shard_workers: int = 0

    def plan_fingerprint(self) -> tuple:
        """Canonical identity of this config for plan-cache keying.

        Every backend-profile knob that can influence a compiled plan or
        its admissibility is included; only runtime-scaling knobs that
        plans are explicitly independent of (``threads``) and cache-policy
        knobs (``plan_cache``/``plan_cache_size``) are excluded.  Two
        different backend profiles therefore never share a cache entry —
        reusing a plan compiled under another profile could smuggle in the
        wrong join order, morsel shape, or a feature (window functions)
        the executing backend must reject.
        """
        return (
            self.name, self.mode, self.join_reorder, self.supports_window,
            self.morsel_size, tuple(sorted(self.rejected_join_patterns)),
            self.parallel_join, self.parallel_agg, self.topk_rewrite,
            self.subquery_decorrelate, self.memory_budget,
            self.spill_partitions, self.zone_map_pruning,
            # verify_plans changes no plan shape, but it gates whether a
            # plan was admitted through the static verifier — a config
            # that verifies must not silently adopt a plan cached by one
            # that did not.
            self.verify_plans,
            # adaptive_execution changes the compiled shape (AdaptiveJoin
            # vs a static join chain); adaptive_ratio changes when that
            # operator re-plans, which is runtime behaviour a cached plan
            # carries with it.
            self.adaptive_execution, self.adaptive_ratio,
            # shard_workers selects between the scatter/gather path and
            # plain serial execution; a plan-analysis decision cached under
            # one worker count must not be reused by another.
            self.shard_workers,
        )


class Executor:
    """Executes parsed queries against a catalog.

    ``plans`` (optional) is a shared plan map — ``id(Select) -> PhysicalPlan``
    — owned by a :class:`~.database.Database` plan-cache entry.  When absent,
    a throwaway map scoped to one ``execute()`` call is used, so repeated
    subquery bodies within a statement still plan once.
    """

    def __init__(self, catalog: Catalog, config: EngineConfig | None = None,
                 trace: list[str] | None = None,
                 plans: dict[int, PhysicalPlan] | None = None,
                 params: dict | None = None,
                 cancel_event=None, deadline: float | None = None,
                 stats=None):
        self.catalog = catalog
        self.config = config or EngineConfig()
        self.trace = trace
        self.plans = plans
        # Bound placeholder values for this execution ({index_or_name:
        # scalar}); reaches every Evaluator the operators construct.
        self.params = params
        # Cooperative cancellation: a threading.Event checked (with the
        # monotonic deadline) at operator boundaries via check_runtime().
        self.cancel_event = cancel_event
        self.deadline = deadline
        # Per-execution RuntimeStats sink (EXPLAIN ANALYZE / adaptive
        # execution); operators record actual cardinalities and timings
        # into it through Operator.run.  None = zero-overhead execution.
        self.stats = stats
        self._active_plans: dict[int, PhysicalPlan] = {}

    def _note(self, message: str) -> None:
        if self.trace is not None:
            self.trace.append(message)

    def check_runtime(self) -> None:
        """Raise when this execution was cancelled or ran past its deadline.

        Called by operators between pipeline stages (cooperative: a stage
        already running on the worker pools finishes before the check
        fires), so cancellation latency is one operator, not one query.
        """
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise QueryCancelledError("query cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError("query exceeded its timeout")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> Chunk:
        # A fresh local plan map per execution unless a Database-owned one
        # was supplied (caching by id() is only safe while the parsed AST
        # is kept alive, which the Database plan cache guarantees).
        self._active_plans = self.plans if self.plans is not None else {}
        env: dict[str, Chunk] = {}
        for cte in query.ctes:
            chunk = self._execute_body(cte.query, env)
            if cte.column_names is not None:
                if len(cte.column_names) != chunk.ncols:
                    raise SQLBindError(
                        f"CTE {cte.name!r} declares {len(cte.column_names)} columns "
                        f"but produces {chunk.ncols}"
                    )
                chunk = Chunk(list(cte.column_names), chunk.arrays)
            self._note(f"materialize CTE {cte.name} -> {chunk.nrows} rows x {chunk.ncols} cols")
            env[cte.name] = chunk
        return self._execute_select(query.body, env)

    def _execute_body(self, body, env: dict[str, Chunk]) -> Chunk:
        if isinstance(body, ValuesClause):
            return self._execute_values(body)
        return self._execute_select(body, env)

    def _execute_values(self, values: ValuesClause) -> Chunk:
        dummy = Chunk(["__one"], [np.zeros(1, dtype=np.int64)])
        evaluator = Evaluator(dummy, Scope(), params=self.params)
        ncols = len(values.rows[0])
        columns = [f"col{i}" for i in range(ncols)]
        raw_cols: list[list] = [[] for _ in range(ncols)]
        for row in values.rows:
            if len(row) != ncols:
                raise SQLBindError("VALUES rows have inconsistent arity")
            for i, expr in enumerate(row):
                raw_cols[i].append(evaluator.eval(expr))
        from ..dataframe._common import coerce_array

        return Chunk(columns, [coerce_array(np.array(c, dtype=object)) for c in raw_cols])

    # ------------------------------------------------------------------
    # Plan-driven SELECT execution
    # ------------------------------------------------------------------
    def plan_for(self, select, env: dict[str, Chunk],
                 cacheable: bool = True) -> PhysicalPlan:
        """Fetch (or build and remember) the physical plan for a body
        (a plain SELECT or a compound select)."""
        plan = self._active_plans.get(id(select))
        if plan is not None:
            plan.cache_hits += 1
            self._note("plan cache hit: reusing compiled plan")
            return plan
        env_schemas = {
            name: RelSchema(list(c.columns), float(c.nrows))
            for name, c in env.items()
        }
        plan = Planner(self.catalog, self.config).plan_body(select, env_schemas)
        if self.config.verify_plans:
            # Static invariant check before the plan is cached or executed;
            # env chunks carry materialized dtypes, so CTE columns verify
            # with full kind information.
            from ..analysis import verify_plan

            verify_plan(plan, self.catalog, self.config, env)
        if cacheable:
            self._active_plans[id(select)] = plan
            # Derived-table bodies were planned as part of this plan; register
            # their subplans so SubqueryScan execution reuses them.
            for body, subplan in plan.subquery_plans():
                self._active_plans.setdefault(id(body), subplan)
        return plan

    def _execute_select(self, select, env: dict[str, Chunk],
                        cacheable: bool = True) -> Chunk:
        """Execute a SELECT or compound-select body through its plan."""
        plan = self.plan_for(select, env, cacheable=cacheable)
        if self.stats is not None:
            self.stats.record_plan(plan)
        return plan.execute(ExecContext(self, env))

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"col{position}"

    def _expand_items(self, select: Select, chunk: Chunk, scope: Scope) -> list[SelectItem]:
        items: list[SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                for col in chunk.columns:
                    if col.startswith(("__mark_", "__scalar_")):
                        continue  # planner-introduced mark/scalar columns
                    if item.expr.table is not None:
                        slot = scope.qualified.get((item.expr.table, col))
                        if slot is None:
                            continue
                    items.append(SelectItem(expr=ColumnRef(name=col, table=item.expr.table), alias=col))
            else:
                items.append(item)
        return items

    def _project_plain(self, select: Select, chunk: Chunk, scope: Scope, subquery_cb, window_values):
        items = self._expand_items(select, chunk, scope)
        names = [self._output_name(it, i) for i, it in enumerate(items)]
        n = chunk.nrows
        threads = self.config.threads
        params = self.params
        morsel = self.config.morsel_size if self.config.mode == "vectorized" else None
        simple = not window_values and not any(has_subquery(it.expr) for it in items)

        if simple and n > 1:
            def make_arrays(start: int, stop: int) -> list[np.ndarray]:
                if morsel is None:
                    sub = chunk.slice(start, stop)
                    ev = Evaluator(sub, scope, subquery_executor=subquery_cb,
                                   params=params)
                    return [ev.eval_array(it.expr) for it in items]
                parts: list[list[np.ndarray]] = []
                pos = start
                while pos < stop:
                    end = min(pos + morsel, stop)
                    sub = chunk.slice(pos, end)
                    ev = Evaluator(sub, scope, subquery_executor=subquery_cb,
                                   params=params)
                    parts.append([ev.eval_array(it.expr) for it in items])
                    pos = end
                if not parts:
                    ev = Evaluator(chunk.slice(0, 0), scope,
                                   subquery_executor=subquery_cb, params=params)
                    return [ev.eval_array(it.expr) for it in items]
                if len(parts) == 1:
                    return parts[0]
                return [np.concatenate([p[i] for p in parts]) for i in range(len(items))]

            arrays = parallel_arrays(n, threads, make_arrays)
            evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                                  params=params)
        else:
            evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                                  params=params)
            evaluator.precomputed = window_values  # type: ignore[attr-defined]
            arrays = [self._eval_with_windows(evaluator, it.expr, window_values) for it in items]
        return Chunk(names, arrays), evaluator

    def _eval_with_windows(self, evaluator: Evaluator, expr: Expr, window_values) -> np.ndarray:
        if isinstance(expr, WindowCall):
            return window_values[id(expr)]
        if window_values and has_window(expr):
            # Rebuild expression bottom-up substituting window arrays.
            import copy

            def substitute(e):
                if isinstance(e, WindowCall):
                    marker = ColumnRef(name=f"__win_{id(e)}")
                    return marker
                e2 = copy.copy(e)
                for attr in ("left", "right", "operand", "low", "high"):
                    child = getattr(e2, attr, None)
                    if isinstance(child, Expr):
                        setattr(e2, attr, substitute(child))
                if getattr(e2, "args", None):
                    e2.args = [substitute(a) if isinstance(a, Expr) else a for a in e2.args]
                if getattr(e2, "branches", None):
                    e2.branches = [(substitute(c), substitute(v)) for c, v in e2.branches]
                    if e2.default is not None:
                        e2.default = substitute(e2.default)
                return e2

            new_expr = substitute(expr)
            chunk2 = Chunk(
                list(evaluator.chunk.columns) + [f"__win_{k}" for k in window_values],
                list(evaluator.chunk.arrays) + list(window_values.values()),
            )
            scope2 = Scope()
            scope2.qualified = dict(evaluator.scope.qualified)
            scope2.unqualified = dict(evaluator.scope.unqualified)
            scope2.ambiguous = set(evaluator.scope.ambiguous)
            base = evaluator.chunk.ncols
            for i, k in enumerate(window_values):
                scope2.add(None, f"__win_{k}", base + i)
            ev2 = Evaluator(chunk2, scope2,
                            subquery_executor=evaluator.subquery_executor,
                            params=evaluator.params)
            return ev2.eval_array(new_expr)
        return evaluator.eval_array(expr)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    _PARALLEL_AGG_FUNCS = {"SUM": "sum", "AVG": "mean", "MIN": "min",
                           "MAX": "max", "COUNT": "count"}

    def _parallel_aggregate(self, expr: Expr, evaluator: Evaluator,
                            gids: np.ndarray, ngroups: int) -> np.ndarray | None:
        """Morsel-parallel partial reduction for a bare aggregate item.

        Returns ``None`` when *expr* isn't a plain partial-mergeable
        aggregate; the caller falls back to the grouped evaluator.
        """
        if not isinstance(expr, AggCall) or expr.distinct:
            return None
        func = self._PARALLEL_AGG_FUNCS.get(expr.func)
        if func is None:
            return None
        if expr.arg is None:
            if expr.func != "COUNT":
                return None
            return parallel_group_reduce(None, gids, ngroups, "size",
                                         self.config.threads)
        if has_subquery(expr.arg) or has_window(expr.arg):
            return None
        saved = (evaluator.gids, evaluator.ngroups, evaluator.group_first)
        evaluator.gids = None
        try:
            arg = evaluator.eval_array(expr.arg)
        finally:
            evaluator.gids, evaluator.ngroups, evaluator.group_first = saved
        return parallel_group_reduce(arg, gids, ngroups, func,
                                     self.config.threads,
                                     sql_null_empty=(func == "sum"))

    def _project_grouped(self, select: Select, chunk: Chunk, scope: Scope, subquery_cb, window_values):
        items = self._expand_items(select, chunk, scope)
        names = [self._output_name(it, i) for i, it in enumerate(items)]

        evaluator = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                              params=self.params)
        if select.group_by:
            key_arrays = [evaluator.eval_array(g) for g in select.group_by]
            gids, key_uniques, ngroups = factorize_many(key_arrays)
        else:
            # A global aggregate always yields exactly one row (NULL/0 on
            # empty input), matching SQL semantics.
            gids = np.zeros(chunk.nrows, dtype=np.int64)
            ngroups = 1
            key_uniques = []
        group_first = np.zeros(ngroups, dtype=np.int64)
        if chunk.nrows:
            # First occurrence of each group id: assign positions in reverse
            # order so the smallest position is written last and wins.
            positions = np.arange(chunk.nrows - 1, -1, -1, dtype=np.int64)
            group_first = np.zeros(ngroups, dtype=np.int64)
            group_first[gids[positions]] = positions
        self._note(f"hash aggregate: {len(select.group_by)} key(s), "
                   f"{chunk.nrows} rows -> {ngroups} groups")
        evaluator.gids = gids
        evaluator.ngroups = ngroups
        evaluator.group_first = group_first
        for gexpr, uniq in zip(select.group_by, key_uniques):
            evaluator.group_key_values[expr_key(gexpr)] = uniq

        parallel = (self.config.parallel_agg and self.config.threads > 1
                    and chunk.nrows >= 4096)
        arrays: list[np.ndarray | None] = [None] * len(items)
        pending: list[tuple[int, SelectItem]] = []
        serial: list[tuple[int, SelectItem]] = []
        for i, it in enumerate(items):
            if parallel:
                arrays[i] = self._parallel_aggregate(it.expr, evaluator, gids, ngroups)
            if arrays[i] is None:
                # Items with subqueries must stay off the worker pool: the
                # nested query runs its own parallel operators on the same
                # pool, and a worker blocking on futures queued behind
                # itself deadlocks.
                (serial if has_subquery(it.expr) else pending).append((i, it))

        if parallel and len(pending) > 1:
            # Remaining expressions are independent: evaluate them across
            # the worker pool (NumPy reductions release the GIL).
            def eval_item(it):
                ev = Evaluator(chunk, scope, subquery_executor=subquery_cb,
                               params=self.params)
                ev.gids = gids
                ev.ngroups = ngroups
                ev.group_first = group_first
                ev.group_key_values = evaluator.group_key_values
                return ev.eval_array(it.expr)

            results = parallel_map(self.config.threads, eval_item,
                                   [it for _, it in pending])
            for (i, _), arr in zip(pending, results):
                arrays[i] = arr
        else:
            serial = pending + serial
        for i, it in serial:
            arrays[i] = evaluator.eval_array(it.expr)
        out = Chunk(names, arrays)

        if select.having is not None:
            mask = evaluator.eval_mask(select.having)
            out = out.mask(mask)
            evaluator._having_mask = mask  # type: ignore[attr-defined]
        return out, evaluator

    # ------------------------------------------------------------------
    # ORDER BY / LIMIT
    # ------------------------------------------------------------------
    def _order_arrays(self, order_by, out_chunk: Chunk,
                      order_eval: Evaluator | None):
        """Evaluate ORDER BY keys over the projected output, falling back
        to the pre-projection evaluator for non-projected expressions.
        Shared by the Sort and TopK operators; returns
        ``(arrays, ascendings)``."""
        arrays: list[np.ndarray] = []
        ascendings: list[bool] = []
        out_names = {c: i for i, c in enumerate(out_chunk.columns)}
        for item in order_by:
            expr = item.expr
            arr = None
            if isinstance(expr, ColumnRef) and expr.table is None and expr.name in out_names:
                arr = out_chunk.arrays[out_names[expr.name]]
            elif order_eval is not None:
                try:
                    arr = order_eval.eval_array(expr)
                    having_mask = getattr(order_eval, "_having_mask", None)
                    if having_mask is not None and len(arr) == len(having_mask):
                        arr = arr[having_mask]
                except SQLBindError:
                    arr = None
            if arr is None or len(arr) != out_chunk.nrows:
                raise SQLBindError(f"cannot evaluate ORDER BY expression {expr!r}")
            arrays.append(arr)
            ascendings.append(item.ascending)
        return arrays, ascendings

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------
    def _subquery(self, kind: str, select: Select, env, outer_eval: Evaluator, operand):
        if kind == "scalar":
            chunk = self._execute_select(select, env)
            if chunk.nrows > 1:
                raise SQLExecutionError(
                    f"scalar subquery returned {chunk.nrows} rows "
                    "(expected at most one)"
                )
            if chunk.nrows == 0:
                return None
            return chunk.arrays[0][0]
        if kind == "in":
            from ..dataframe._common import isna_array

            chunk = self._execute_select(select, env)
            build = chunk.arrays[0]
            matched = self._membership([operand], [build])
            return matched, bool(isna_array(build).any()), chunk.nrows == 0
        if kind == "exists":
            return self._execute_exists(select, env, outer_eval)
        raise SQLBindError(f"unknown subquery kind {kind!r}")

    def _execute_exists(self, select, env, outer_eval: Evaluator) -> np.ndarray:
        if isinstance(select, CompoundSelect):
            # Compound EXISTS bodies are never correlated-decomposed; the
            # whole compound executes once.
            chunk = self._execute_select(select, env)
            return np.full(outer_eval.nrows, chunk.nrows > 0)
        inner_cols: set[str] = set()
        inner_bindings: set[str] = set()
        for rel in select.relations:
            if isinstance(rel, TableRef):
                inner_bindings.add(rel.binding)
                if rel.name in env:
                    inner_cols.update(env[rel.name].columns)
                else:
                    inner_cols.update(self.catalog.schema(rel.name).columns)
            else:
                raise UnsupportedFeatureError("EXISTS over subquery relations is not supported")

        def is_inner(ref: ColumnRef) -> bool:
            if ref.table is not None:
                return ref.table in inner_bindings
            return ref.name in inner_cols

        correlated: list[tuple[Expr, Expr]] = []
        remaining: list[Expr] = []
        for conj in split_conjuncts(select.where):
            if isinstance(conj, BinaryOp) and conj.op == "=":
                l_refs = expr_columns(conj.left)
                r_refs = expr_columns(conj.right)
                l_inner = all(is_inner(r) for r in l_refs) and bool(l_refs)
                r_inner = all(is_inner(r) for r in r_refs) and bool(r_refs)
                l_outer = bool(l_refs) and all(not is_inner(r) for r in l_refs)
                r_outer = bool(r_refs) and all(not is_inner(r) for r in r_refs)
                if l_inner and r_outer:
                    correlated.append((conj.left, conj.right))
                    continue
                if r_inner and l_outer:
                    correlated.append((conj.right, conj.left))
                    continue
            remaining.append(conj)

        if not correlated:
            chunk = self._execute_select(select, env)
            return np.full(outer_eval.nrows, chunk.nrows > 0)

        inner_select = replace(
            select,
            items=[SelectItem(expr=e, alias=f"k{i}") for i, (e, _) in enumerate(correlated)],
            where=_conjoin(remaining),
            order_by=[],
            limit=None,
            distinct=False,
        )
        inner_chunk = self._execute_select(inner_select, env, cacheable=False)
        outer_keys = [outer_eval.eval_array(ref) for _, ref in correlated]
        return self._membership(outer_keys, list(inner_chunk.arrays))

    def _membership(self, probe_keys, build_keys):
        """Membership probe for interpreter-path subqueries.

        Under the default config the planner has already lifted every WHERE
        conjunct it can, so whatever reaches here (SELECT-list/HAVING
        predicates, non-decorrelatable shapes) still deserves the vectorized
        kernel.  With ``subquery_decorrelate=False`` the engine runs in
        reference mode — the audited per-row implementation end-to-end —
        which is also what the subquery benchmark measures against.
        """
        if self.config.subquery_decorrelate:
            from .joins import semi_join_flags

            return semi_join_flags(probe_keys, build_keys)
        return semi_join_mask(probe_keys, build_keys)
