"""SQL tokenizer for the in-memory engine."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "DISTINCT", "WITH",
    "JOIN", "LEFT", "RIGHT", "FULL", "INNER", "OUTER", "CROSS", "ON",
    "EXISTS", "VALUES", "UNION", "INTERSECT", "EXCEPT", "ALL", "ASC", "DESC",
    "OVER", "PARTITION", "ESCAPE",
    "DATE", "INTERVAL", "EXTRACT", "TRUE", "FALSE", "CREATE", "TABLE",
    "INSERT", "INTO", "PRIMARY", "KEY", "UNIQUE", "DROP", "LIMIT", "OFFSET",
}
# Window-frame words (ROWS, RANGE, UNBOUNDED, PRECEDING, FOLLOWING, CURRENT,
# ROW) are deliberately NOT reserved: they only carry meaning inside an
# OVER (...) clause, where the parser matches them contextually, so columns
# named `range`/`row`/... keep working (sqlite treats them the same way).

_TWO_CHAR = {"<=", ">=", "<>", "!=", "||"}
_ONE_CHAR = set("+-*/%(),.<>=;")


@dataclass
class Token:
    """A lexical token: kind is one of KEYWORD/IDENT/NUMBER/STRING/OP/PARAM/EOF.

    ``PARAM`` tokens carry the placeholder name for ``:name`` parameters and
    an empty value for positional ``?`` parameters.
    """

    kind: str
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word


def tokenize(sql: str) -> list[Token]:
    """Split *sql* into tokens; raises SQLSyntaxError on bad characters."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i)
            if end == -1:
                raise SQLSyntaxError(f"unterminated block comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            if j >= n:
                raise SQLSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("IDENT", sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                cj = sql[j]
                if cj.isdigit():
                    j += 1
                elif cj == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif cj in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        if ch == "?":
            tokens.append(Token("PARAM", "", i))
            i += 1
            continue
        if ch == ":":
            j = i + 1
            if j >= n or not (sql[j].isalpha() or sql[j] == "_"):
                raise SQLSyntaxError(f"expected parameter name after ':' at {i}")
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            tokens.append(Token("PARAM", sql[i + 1 : j], i))
            i = j
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("OP", two, i))
            i += 2
            continue
        if ch in _ONE_CHAR or ch in "{}":
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
