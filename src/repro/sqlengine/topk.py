"""Morsel-parallel Top-K selection: the kernel behind ``ORDER BY … LIMIT k``.

A full sort of *n* rows to keep *k* of them wastes ``O(n log n)`` work; this
module selects the top *k* with an ``O(n)`` partial-selection pass and sorts
only the surviving candidates:

1. the multi-key sort keys are derived once over the whole input (the same
   ``_sort_key`` transforms ORDER BY uses, so NULL ordering matches; keys
   are always numeric, never object);
2. each morsel runs ``np.partition`` on its slice of the *primary* key to
   find its local k-th value and keeps rows at or below it — every global
   top-*k* row has a primary key ≤ its morsel's k-th smallest, so the
   union of candidates is a superset of the answer;
3. the candidates (``≈ k × morsels`` plus boundary ties) are stable-sorted
   once over all keys with the original row position as the final
   tie-break, and the first *k* win.

Step 2 runs on the shared worker pool (``np.partition`` and boolean masks
release the GIL).  The position tie-break makes the result bit-identical to
a full stable sort followed by ``LIMIT k``, for every thread count and
morsel size.

Used by the :class:`~.plan.TopK` physical operator (the planner rewrites
``Sort`` + ``Limit`` pairs into it) and by the dataframe layer's
``nlargest``/``nsmallest``.
"""

from __future__ import annotations

import numpy as np

from .parallel import run_partitions
from .window import _sort_key

__all__ = ["topk_positions"]

# Below this row count a single stable sort beats the candidate machinery.
_MIN_SELECT_ROWS = 2048


def _merge_candidates(cand: np.ndarray, lex_keys: tuple, k: int) -> np.ndarray:
    """Stable-sort candidate positions by all keys, original position as the
    least-significant tie-break, and keep the first *k*."""
    final = np.lexsort((cand,) + tuple(key[cand] for key in lex_keys))
    return cand[final[:k]]


def topk_positions(arrays: list[np.ndarray], ascendings: list[bool],
                   k: int, threads: int = 1) -> np.ndarray:
    """Positions of the first *k* rows of a stable multi-key sort.

    Equivalent to ``sort_positions(arrays, ascendings)[:k]`` (ties keep
    input order), but only selection candidates are ever sorted.
    """
    n = len(arrays[0]) if arrays else 0
    k = max(0, min(k, n))
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    keys = [_sort_key(arr, asc) for arr, asc in zip(arrays, ascendings)]
    lex_keys = tuple(reversed(keys))  # np.lexsort: last key is primary

    if n < _MIN_SELECT_ROWS or k * 4 >= n:
        return np.lexsort(lex_keys)[:k]

    primary = keys[0]

    def candidates(start: int, stop: int) -> np.ndarray:
        local = primary[start:stop]
        # k-th smallest primary value in this morsel: rows above it cannot
        # reach the global top-k; rows tying it must stay (stability).
        kth = np.partition(local, k - 1)[k - 1] if k <= stop - start else local.max()
        return start + np.nonzero(local <= kth)[0]

    cand = np.concatenate(run_partitions(n, threads, candidates))
    return _merge_candidates(cand, lex_keys, k)
