"""Bind-parameter collection and run-time binding with type checking.

A parsed statement carries :class:`~.sqlast.Parameter` placeholders
(positional ``?`` or named ``:name``).  :func:`signature_of` derives the
statement's :class:`ParamSignature` once at prepare time by walking the
whole AST; :func:`bind_parameters` validates user-supplied values against
that signature on every execution (missing/extra parameters, mixed styles,
unsupported value types) *before* any operator runs, so binding errors never
surface as mid-query failures.
"""

from __future__ import annotations

import dataclasses
import datetime
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import SQLBindError
from .sqlast import Parameter

__all__ = ["ParamSignature", "signature_of", "bind_parameters",
           "iter_parameters"]


def _walk(node, out: list[Parameter]) -> None:
    """Collect Parameter nodes from an AST subtree (any dataclass graph)."""
    if isinstance(node, Parameter):
        out.append(node)
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for f in dataclasses.fields(node):
            _walk(getattr(node, f.name), out)
        return
    if isinstance(node, (list, tuple)):
        for item in node:
            _walk(item, out)


def iter_parameters(query) -> list[Parameter]:
    """Every Parameter node in the statement, in AST order (subqueries,
    CTEs, and compound-select operands included)."""
    out: list[Parameter] = []
    _walk(query, out)
    return out


@dataclass(frozen=True)
class ParamSignature:
    """The placeholder shape of one statement.

    Exactly one of the two styles may be used per statement: ``positional``
    counts ``?`` placeholders, ``names`` lists distinct ``:name``
    placeholders (first-occurrence order).
    """

    positional: int = 0
    names: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return self.positional == 0 and not self.names


def signature_of(query) -> ParamSignature:
    """Derive the statement's parameter signature; rejects statements that
    mix ``?`` and ``:name`` styles (the binding call could not be both a
    sequence and a mapping)."""
    positional = 0
    names: list[str] = []
    for param in iter_parameters(query):
        if param.name is not None:
            if param.name not in names:
                names.append(param.name)
        else:
            positional += 1
    if positional and names:
        raise SQLBindError(
            "cannot mix positional (?) and named (:name) parameters "
            "in one statement"
        )
    return ParamSignature(positional=positional, names=tuple(names))


# Scalar types accepted as bound parameter values.  Anything else (lists,
# arrays, arbitrary objects) is rejected at bind time: placeholders stand
# for SQL scalar literals, never for expression lists or relations.
_SCALAR_TYPES = (bool, int, float, str, np.bool_, np.integer, np.floating,
                 np.datetime64, np.str_)


def _check_value(key, value):
    """Validate/normalize one bound value; raises SQLBindError otherwise."""
    if value is None:
        return None
    if isinstance(value, datetime.datetime):
        raise SQLBindError(
            f"parameter {key!r}: datetime values are not supported "
            "(bind a datetime.date or numpy.datetime64)"
        )
    if isinstance(value, datetime.date):
        return np.datetime64(value, "D")
    if isinstance(value, _SCALAR_TYPES):
        return value
    raise SQLBindError(
        f"parameter {key!r}: unsupported value type "
        f"{type(value).__name__} (expected a SQL scalar: None, bool, int, "
        "float, str, date, or numpy scalar)"
    )


def bind_parameters(signature: ParamSignature, params) -> dict | None:
    """Validate *params* against *signature*, returning the binding map
    consumed by the evaluator (``{index_or_name: value}``), or ``None`` for
    a parameterless statement.

    Raises :class:`~repro.errors.SQLBindError` on missing or extra
    parameters, a sequence given for named placeholders (and vice versa),
    or non-scalar values.
    """
    if signature.empty:
        if params:
            raise SQLBindError(
                f"statement takes no parameters but {len(params)} were given"
            )
        return None

    if signature.names:
        if params is None or not isinstance(params, Mapping):
            raise SQLBindError(
                f"statement uses named parameters {list(signature.names)}; "
                "bind them with a mapping, got "
                f"{type(params).__name__ if params is not None else 'None'}"
            )
        missing = [n for n in signature.names if n not in params]
        if missing:
            raise SQLBindError(f"missing values for parameters {missing}")
        extra = [k for k in params if k not in signature.names]
        if extra:
            raise SQLBindError(f"unknown parameters {extra} "
                               f"(statement declares {list(signature.names)})")
        return {n: _check_value(n, params[n]) for n in signature.names}

    if params is None or isinstance(params, (str, Mapping)) or not isinstance(params, Sequence):
        raise SQLBindError(
            f"statement uses {signature.positional} positional parameter(s); "
            "bind them with a sequence, got "
            f"{type(params).__name__ if params is not None else 'None'}"
        )
    if len(params) != signature.positional:
        raise SQLBindError(
            f"statement takes {signature.positional} parameter(s) "
            f"but {len(params)} were given"
        )
    return {i: _check_value(i, v) for i, v in enumerate(params)}
